"""Bench: regenerate Fig. 16 (Online Boutique RPS + utilization)."""

from repro.experiments import run_fig16


def test_bench_fig16(once, jobs):
    result = once(run_fig16, client_counts=(20, 80), duration_us=120_000,
                  jobs=jobs)
    print()
    print(result)
    dne = result.find_row(chain="Home Query", config="palladium-dne", clients=80)
    nightcore = result.find_row(chain="Home Query", config="nightcore", clients=80)
    assert dne["rps"] > 5 * nightcore["rps"]
