"""Benchmark configuration: each bench runs its experiment once.

The benchmarks double as the reproduction harness: every figure/table
of the paper's evaluation has one bench that regenerates its data and
prints the result table (captured in bench_output.txt).
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the (expensive) simulation exactly once under timing."""
    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return _run
