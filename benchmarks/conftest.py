"""Benchmark configuration: each bench runs its experiment once.

The benchmarks double as the reproduction harness: every figure/table
of the paper's evaluation has one bench that regenerates its data and
prints the result table (captured in bench_output.txt).

Sweeps whose points are independent accept a ``jobs`` fixture:
``pytest benchmarks --jobs 4`` (or ``REPRO_JOBS=4``) fans the points
out over worker processes; results merge in deterministic submission
order, so the emitted tables are byte-identical to a serial run.
"""

import pytest

from repro.experiments.parallel import default_jobs


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None,
        help="worker processes for parallelizable experiment sweeps "
             "(default: REPRO_JOBS or 1 = serial; merge order is "
             "deterministic either way)",
    )


@pytest.fixture
def jobs(request):
    """Process count for parallelizable sweeps (1 = serial)."""
    value = request.config.getoption("--jobs")
    return default_jobs() if value is None else value


@pytest.fixture
def once(benchmark):
    """Run the (expensive) simulation exactly once under timing."""
    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)
    return _run
