"""Bench: regenerate Table 2 (mean chain latency per data plane)."""

from repro.experiments import run_table2


def test_bench_table2(once):
    result = once(run_table2, client_counts=(20, 60, 80),
                  chains=("Home Query",), duration_us=120_000)
    print()
    print(result)
    dne = result.find_row(config="palladium-dne")
    nightcore = result.find_row(config="nightcore")
    assert nightcore["Home Query@20"] > 3 * dne["Home Query@20"]
