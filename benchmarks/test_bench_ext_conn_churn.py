"""Extension bench: control-plane connection churn.

Regenerates the ext_conn_churn experiment points and merges a
``conn_churn`` section into ``BENCH_host_perf.json`` (read-modify-
write: other sections are preserved).  The headline numbers are the
TTFB a churning instance pays per provisioning policy (cold explicit
handshake vs pre-warmed shadow pool vs shared active QP) and the
spin-up throughput knee at the control-plane ops/sec ceiling.
"""

import json

from test_bench_host_perf import OUT_PATH, merge_report, timed

from repro.experiments import run_ceiling_point, run_churn_point


def test_bench_ext_conn_churn(once):
    def workload():
        section = {}
        for scenario in ("cold", "warm-fixed", "shared"):
            point, profile = timed(run_churn_point, scenario,
                                   day_us=600_000.0, max_instances=400)
            section[scenario.replace("-", "_")] = {
                "ttfb_p50_us": round(point["ttfb_p50_us"], 2),
                "ttfb_p95_us": round(point["ttfb_p95_us"], 2),
                "setups": int(point["setups"]),
                "instances": int(point["instances"]),
                **profile,
            }
        for mult in (0.5, 2.0):
            point, profile = timed(run_ceiling_point, mult,
                                   ops_per_sec=400.0)
            section[f"ceiling_{mult:g}x"] = {
                "offered_per_s": round(point["offered_per_s"], 1),
                "completed_per_s": round(point["completed_per_s"], 1),
                "ttfb_p50_us": round(point["ttfb_p50_us"], 1),
                "cp_wait_ms": round(point["cp_wait_ms"], 1),
                **profile,
            }
        return section

    section = once(workload)
    report = merge_report({"conn_churn": section})
    print()
    print(json.dumps(section, indent=1, sort_keys=True))
    # the policy ladder: cold explicit handshake > pre-warmed shadow
    # activation > shared active QP, strictly ordered
    assert (section["cold"]["ttfb_p50_us"]
            > section["warm_fixed"]["ttfb_p50_us"]
            > section["shared"]["ttfb_p50_us"])
    # every cold instance paid its own handshake; warm pools did not
    assert section["cold"]["setups"] == section["cold"]["instances"]
    assert section["warm_fixed"]["setups"] < section["warm_fixed"]["instances"]
    # the ceiling knee: below it completions track offered, past it
    # they saturate and queueing wait dominates the TTFB
    below, above = section["ceiling_0.5x"], section["ceiling_2x"]
    assert below["completed_per_s"] > 0.9 * below["offered_per_s"]
    assert above["completed_per_s"] < 0.6 * above["offered_per_s"]
    assert above["ttfb_p50_us"] > 5 * below["ttfb_p50_us"]
    assert OUT_PATH.exists()
