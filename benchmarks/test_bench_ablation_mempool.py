"""Ablation bench: pool-based buffer allocation vs malloc-per-message.

DESIGN.md calls out Palladium's rte_mempool-style pre-allocated buffer
pools (§3.4).  This bench compares end-to-end echo RPS with the pool
allocator against a variant paying glibc-malloc cost per message.
"""

from repro.config import cost_model_overrides
from repro.experiments.fig11_offpath import run_echo_point


def test_bench_ablation_mempool(once):
    def ablation():
        pool_rps, _ = run_echo_point("off-path", 1024, 16,
                                     duration_us=40_000)
        malloc_cost = cost_model_overrides()
        from dataclasses import replace
        malloc_cost = replace(malloc_cost,
                              mempool_op_us=malloc_cost.malloc_op_us)
        malloc_rps, _ = run_echo_point("off-path", 1024, 16,
                                       duration_us=40_000, cost=malloc_cost)
        return pool_rps, malloc_rps

    pool_rps, malloc_rps = once(ablation)
    print(f"\n== Ablation: mempool vs malloc ==")
    print(f"pool allocator: {pool_rps:,.0f} RPS")
    print(f"malloc per message: {malloc_rps:,.0f} RPS")
    assert pool_rps >= malloc_rps
