"""Extension bench: function autoscaling under a load burst.

A replicated service behind the backlog-driven autoscaler absorbs a
burst: replicas scale out (throughput rises, per-request latency falls)
and retire afterwards — the provisioning churn the paper's §1 motivates.
"""

from repro.platform import ElasticPlatform, FunctionAutoscaler, FunctionSpec, Tenant
from repro.sim import Environment


def _run(autoscale: bool):
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("t1", pool_buffers=2048))
    caller = plat.deploy(FunctionSpec("edge", "t1", work_us=0), "worker0")
    spec = FunctionSpec("svc", "t1", work_us=300, concurrency=1)
    plat.deploy_service(spec, "worker1", replicas=1)
    scaler = FunctionAutoscaler(plat, spec, nodes=["worker1", "worker0"],
                                max_replicas=6, high_watermark=2.0,
                                low_watermark=0.2, period_us=15_000)
    plat.start()
    if autoscale:
        scaler.start()
    latencies = []

    def client(i):
        yield env.timeout(40_000)
        for _ in range(10):
            t0 = env.now
            yield from caller.invoke("svc", "x", 512)
            latencies.append(env.now - t0)

    for i in range(16):
        env.process(client(i))
    env.run(until=1_500_000)
    peak = max((v for _t, v in scaler.replica_series), default=1)
    return (len(latencies), sum(latencies) / max(1, len(latencies)), peak,
            scaler.scale_outs, scaler.scale_ins)


def test_bench_ext_elasticity(once):
    def ablation():
        return _run(autoscale=False), _run(autoscale=True)

    static, elastic = once(ablation)
    print("\n== Extension: function autoscaling under burst ==")
    print(f"{'variant':<12} {'completed':>9} {'mean lat':>10} {'peak replicas':>14}")
    print(f"{'static':<12} {static[0]:>9} {static[1]:>8.0f}us {1:>14}")
    print(f"{'autoscaled':<12} {elastic[0]:>9} {elastic[1]:>8.0f}us {elastic[2]:>14.0f}")
    print(f"scale-outs={elastic[3]}, scale-ins={elastic[4]}")
    assert elastic[1] < static[1]  # scaling cut the burst latency
