"""Bench: regenerate Fig. 14 (ingress horizontal scaling time series)."""

from repro.experiments import run_fig14


def test_bench_fig14_palladium(once):
    result = once(run_fig14, "palladium", steps=10)
    print()
    print(result)
    # the autoscaler actually scaled
    assert any("scale events" in n for n in result.notes)


def test_bench_fig14_k_ingress(once):
    result = once(run_fig14, "k-ingress", steps=10, kernel_cores=8)
    print()
    print(result)


def test_bench_fig14_f_ingress(once):
    result = once(run_fig14, "f-ingress", steps=10)
    print()
    print(result)
