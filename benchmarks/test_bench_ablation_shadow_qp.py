"""Ablation bench: shadow-QP connection pooling vs per-transfer setup.

DESIGN.md calls out Palladium's RC connection pooling with shadow
activation (§3.3): established connections are reused and activated in
~1 us, instead of paying the tens-of-milliseconds RC handshake on the
data path.  This bench quantifies that choice.
"""

from repro.config import CostModel
from repro.hw import build_cluster
from repro.rdma import ConnectionManager, RdmaFabric
from repro.sim import Environment


def _time_connection(warmed: bool) -> float:
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    fabric.install_rnic("worker0")
    fabric.install_rnic("worker1")
    cm = ConnectionManager(env, fabric, "worker0", cost)
    elapsed = {}

    def run():
        if warmed:
            yield from cm.warm_up("worker1", "t", 2)
        t0 = env.now
        yield from cm.get_connection("worker1", "t")
        elapsed["t"] = env.now - t0

    env.process(run())
    env.run()
    return elapsed["t"]


def test_bench_ablation_shadow_qp(once):
    def ablation():
        return _time_connection(warmed=True), _time_connection(warmed=False)

    warm, cold = once(ablation)
    print(f"\n== Ablation: shadow-QP pooling ==")
    print(f"warmed pool (shadow activate): {warm:.1f} us")
    print(f"cold RC handshake on data path: {cold:.1f} us")
    print(f"speedup: {cold / warm:,.0f}x")
    assert cold > 1000 * warm
