"""Bench: host-side simulator performance (wall-clock + events/sec).

Times the hottest reproduction workloads — one Fig. 16 boutique
point, the Fig. 12 primitive sweep, and one ext_overload saturation
point (the QoS machinery exercised end-to-end) — and emits
``BENCH_host_perf.json`` so PRs touching the dataplane or the event
loop can report their wall-clock delta.
"""

import json
import time
from pathlib import Path

from repro.experiments import run_boutique_point, run_fig12, run_overload_point
from repro.sim import Environment

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_perf.json"


def _timed(fn, *args, **kwargs):
    """Run ``fn`` counting simulator events; return (result, profile)."""
    counted = {"events": 0}
    original_step = Environment.step

    def counting_step(self):
        counted["events"] += 1
        original_step(self)

    Environment.step = counting_step
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        wall = time.perf_counter() - t0
        Environment.step = original_step
    return result, {
        "wall_clock_s": round(wall, 4),
        "sim_events": counted["events"],
        "events_per_sec": round(counted["events"] / wall) if wall else 0,
    }


def test_bench_host_perf(once):
    def workload():
        profiles = {}
        _, profiles["fig16_palladium_dne"] = _timed(
            run_boutique_point, "palladium-dne", "Home Query",
            clients=8, duration_us=120_000.0,
        )
        _, profiles["fig12_primitives"] = _timed(
            run_fig12, sizes=(256, 4096), concurrency=4,
            duration_us=20_000.0,
        )
        _, profiles["ext_overload_palladium_2x"] = _timed(
            run_overload_point, "palladium-dne", 2.0,
            duration_us=60_000.0,
        )
        return profiles

    profiles = once(workload)
    total_wall = sum(p["wall_clock_s"] for p in profiles.values())
    total_events = sum(p["sim_events"] for p in profiles.values())
    report = {
        "workloads": profiles,
        "total_wall_clock_s": round(total_wall, 4),
        "total_sim_events": total_events,
        "total_events_per_sec": (
            round(total_events / total_wall) if total_wall else 0
        ),
    }
    OUT_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print()
    print(json.dumps(report, indent=1, sort_keys=True))
    assert total_events > 100_000  # the workloads really ran
    assert OUT_PATH.exists()
