"""Bench: host-side simulator performance (wall-clock + events/sec).

Times the hottest reproduction workloads — one Fig. 16 boutique
point, the Fig. 12 primitive sweep, and one ext_overload saturation
point (the QoS machinery exercised end-to-end) — and emits
``BENCH_host_perf.json`` so PRs touching the dataplane or the event
loop can report their wall-clock delta.

Methodology: events come from the kernel's native
``Environment.events_processed`` counter (no step() monkeypatching,
which itself distorts the hot loop); every workload runs
``REPRO_BENCH_REPEATS`` times (default 3) and reports the fastest
pass, which filters scheduler noise on loaded hosts.  The report is
merged read-modify-write into ``BENCH_host_perf.json`` so the
``kernel`` section written by test_bench_sim_kernel.py survives.

Aggregation rule: fluid sections (the gateway-scale flow-aggregate
model) process *zero* kernel events, so they are excluded from
``total_sim_events`` / ``total_events_per_sec`` — otherwise their
wall-clock dilutes the ratio into nonsense — and report
``model_epochs_per_sec`` instead.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments import (
    run_boutique_point,
    run_fig12,
    run_gateway_scale_point,
    run_overload_point,
)
from repro.sim import Environment

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_host_perf.json"

REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "3")))


def merge_report(sections: dict) -> dict:
    """Read-modify-write ``BENCH_host_perf.json``: update only the
    given top-level sections, preserving the rest (the kernel
    microbench and the workload bench each own their own keys)."""
    report = {}
    if OUT_PATH.exists():
        try:
            report = json.loads(OUT_PATH.read_text())
        except ValueError:
            report = {}
    report.update(sections)
    OUT_PATH.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    return report


def timed(fn, *args, repeats=REPEATS, **kwargs):
    """Best-of-``repeats`` timing of ``fn``; returns (result, profile).

    Events are summed over every Environment the workload creates
    (experiments build one env per point), via the kernel's native
    counter.
    """
    envs = []
    original_init = Environment.__init__

    def tracking_init(self, *a, **k):
        original_init(self, *a, **k)
        envs.append(self)

    Environment.__init__ = tracking_init
    best = None
    try:
        for _ in range(repeats):
            envs.clear()
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            wall = time.perf_counter() - t0
            events = sum(env.events_processed for env in envs)
            if best is None or wall < best[1]:
                best = (result, wall, events)
    finally:
        Environment.__init__ = original_init
    result, wall, events = best
    return result, {
        "wall_clock_s": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall) if wall else 0,
    }


def test_bench_host_perf(once):
    def workload():
        profiles = {}
        _, profiles["fig16_palladium_dne"] = timed(
            run_boutique_point, "palladium-dne", "Home Query",
            clients=8, duration_us=120_000.0,
        )
        _, profiles["fig12_primitives"] = timed(
            run_fig12, sizes=(256, 4096), concurrency=4,
            duration_us=20_000.0,
        )
        _, profiles["ext_overload_palladium_2x"] = timed(
            run_overload_point, "palladium-dne", 2.0,
            duration_us=60_000.0,
        )
        # Fluid section: flow-aggregate gateway tier, zero kernel
        # events — throughput is model epochs, not events.
        point, profile = timed(
            run_gateway_scale_point, 4, scale=0.02,
            duration_us=100_000.0,
        )
        wall = profile["wall_clock_s"]
        profile["model_epochs_per_sec"] = (
            round(point["epochs"] / wall) if wall else 0)
        profiles["gateway_scale_fluid_gw4"] = profile
        return profiles

    profiles = once(workload)
    # Zero-event (fluid) sections are excluded from the event totals:
    # they contribute wall-clock but no kernel events, which would
    # dilute total_events_per_sec without measuring anything.
    counted = {name: p for name, p in profiles.items()
               if p["sim_events"] > 0}
    total_wall = sum(p["wall_clock_s"] for p in counted.values())
    total_events = sum(p["sim_events"] for p in counted.values())
    report = merge_report({
        "workloads": profiles,
        "total_wall_clock_s": round(total_wall, 4),
        "total_sim_events": total_events,
        "total_events_per_sec": (
            round(total_events / total_wall) if total_wall else 0
        ),
    })
    print()
    print(json.dumps(report, indent=1, sort_keys=True))
    assert total_events > 100_000  # the workloads really ran
    assert OUT_PATH.exists()
