"""Bench: regenerate Fig. 13 (cluster ingress designs)."""

from repro.experiments import run_fig13


def test_bench_fig13(once):
    result = once(run_fig13, client_counts=(1, 4, 16, 32, 64),
                  duration_us=150_000)
    print()
    print(result)
    palladium = result.find_row(ingress="palladium", clients=64)
    k = result.find_row(ingress="k-ingress", clients=64)
    assert palladium["rps"] > 8 * k["rps"]
