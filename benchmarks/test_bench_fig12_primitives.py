"""Bench: regenerate Fig. 12 (RDMA primitive selection)."""

from repro.experiments import run_fig12


def test_bench_fig12(once, jobs):
    result = once(run_fig12, sizes=(64, 256, 1024, 4096),
                  duration_us=40_000, jobs=jobs)
    print()
    print(result)
    two = result.find_row(variant="two-sided", size_bytes=4096)
    owdl = result.find_row(variant="owdl", size_bytes=4096)
    assert owdl["mean_rtt_us"] > 1.8 * two["mean_rtt_us"]
