"""Ablation bench: service-mesh sidecar variants (§3.1)."""

from repro.experiments import run_sidecar_ablation


def test_bench_ablation_sidecar(once):
    result = once(run_sidecar_ablation, clients=40, duration_us=100_000)
    print()
    print(result)
    container = result.find_row(sidecar="container-sidecar")
    ebpf = result.find_row(sidecar="ebpf-sidecar")
    assert ebpf["rps"] > container["rps"]
