"""Bench: regenerate Fig. 11 (off-path vs on-path DNE)."""

from repro.experiments import run_fig11


def test_bench_fig11(once):
    result = once(run_fig11,
                  payload_sizes=(64, 512, 1024, 4096, 16384),
                  concurrencies=(1, 4, 8, 16, 32, 64),
                  duration_us=60_000)
    print()
    print(result)
    off = result.find_row(panel="concurrency", mode="off-path", x=64)
    on = result.find_row(panel="concurrency", mode="on-path", x=64)
    assert off["rps"] > on["rps"]
