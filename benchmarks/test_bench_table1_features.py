"""Bench: regenerate Table 1 (qualitative feature matrix)."""

from repro.experiments import run_table1


def test_bench_table1(once):
    result = once(run_table1)
    print()
    print(result)
    assert result.find_row(system="PALLADIUM")["multi-tenancy"] == "yes"
