"""Extension bench: multi-instance ingress load balancing (§4.1.3)."""

from repro.experiments import run_multi_ingress


def test_bench_ext_multi_ingress(once):
    result = once(run_multi_ingress, duration_us=250_000)
    print()
    print(result)
    single = result.find_row(instances=1)
    balanced = result.find_row(instances=2)
    assert balanced["worst_gap_ms"] < single["worst_gap_ms"]
