"""Ablation bench: placement sensitivity of RDMA vs kernel data planes (§2)."""

from repro.experiments import run_placement_ablation


def test_bench_ablation_placement(once):
    result = once(run_placement_ablation, clients=40, duration_us=100_000)
    print()
    print(result)
    # Palladium degrades less than SPRIGHT when placement splits
    note = next(n for n in result.notes if "latency hit" in n)
    print(note)
    pd = result.find_row(data_plane="palladium", placement="split")
    sp = result.find_row(data_plane="spright", placement="split")
    assert pd["latency_ms"] < sp["latency_ms"]
