"""Extension bench: goodput through a worker-node crash + restart.

Regenerates the ext_fault_recovery experiment: the Online Boutique
with two-replica leaf services loses worker1 mid-run.  With recovery
(route withdrawal + replica failover + QP eviction + reconnect) the
surviving replicas restore >= 90% of pre-fault goodput during the
outage; the no-recovery baseline keeps routing into the dead node.
"""

from repro.experiments import run_ext_fault_recovery


def test_bench_ext_fault_recovery(once, jobs):
    result = once(run_ext_fault_recovery, clients=10,
                  down_us=80_000.0, post_us=60_000.0, jobs=jobs)
    print()
    print(result)
    rows = {row[0]: row for row in result.rows}
    restored = {config: row[4] for config, row in rows.items()}
    # Recovery restores the pre-fault goodput during the outage ...
    assert restored["palladium-dne"] >= 90.0
    assert restored["palladium-cne"] >= 90.0
    # ... while the no-recovery baseline collapses.
    assert restored["palladium-dne-no-recovery"] < 50.0
    # Clients survive the outage via redial in every configuration.
    assert all(row[6] > 0 for row in rows.values() if "no-recovery" in row[0])
