"""Bench: DES-kernel micro-benchmarks (events/sec on the hot paths).

Exercises the scheduler's four hottest shapes in isolation, with no
model code in the loop, so kernel regressions are visible before they
wash out in the end-to-end workload bench:

* ``event_churn``      — sync resume of already-completed events
                         (the pooled ``completed_event`` fast path)
* ``timeout_storm``    — many concurrent timers through the heap
                         (Timeout free-list + flattened run loop)
* ``process_ping_pong``— two processes alternating over Stores
                         (``_GetEvent`` pooling + store fast paths)
* ``condition_fanin``  — AllOf/AnyOf fan-in over timeout batches
* ``cqe_storm``        — bursty CQE production against a batched
                         ``poll_batch`` consumer (one wakeup per
                         burst, sync re-poll drains the rest)
* ``timer_cancel_churn``— arm-then-cancel guard timers through the
                         coalescing :class:`TimerWheel` (tombstone
                         cancellation, one tick per bucket)

Each runs ``REPRO_BENCH_REPEATS`` times (default 3), keeps the
fastest pass, and merges a ``kernel`` section into
``BENCH_host_perf.json`` next to the workload numbers.

CI perf-smoke gate: with ``REPRO_PERF_GATE=1`` the bench fails when
any microbench drops below 0.7x the committed baseline's events/sec.
"""

import json
import os
import time

from repro.sim import AllOf, AnyOf, Environment, FilterStore, Store, TimerWheel

from test_bench_host_perf import OUT_PATH, REPEATS, merge_report

GATE_FLOOR = 0.7


def _churn(env: Environment, n: int):
    for _ in range(n):
        yield env.completed_event(1)


def _timer(env: Environment, n: int, step: float):
    for _ in range(n):
        yield env.timeout(step)


def _ping(env: Environment, req: Store, rsp: Store, n: int):
    for _ in range(n):
        req.put_nowait(1)
        yield rsp.get()


def _pong(env: Environment, req: Store, rsp: Store):
    while True:
        yield req.get()
        rsp.put_nowait(1)


def _fanin(env: Environment, rounds: int, width: int):
    for i in range(rounds):
        yield AllOf(env, [env.timeout(d + 1.0) for d in range(width)])
        yield AnyOf(env, [env.timeout(d + 1.0) for d in range(width)])


def bench_event_churn():
    # Sync resumes never reach the heap (that is the fast path under
    # test), so the loop count is the event count here.
    env = Environment()
    env.process(_churn(env, 150_000), name="churn")
    env.run()
    return env.events_processed + 150_000


def bench_timeout_storm():
    env = Environment()
    for i in range(200):
        env.process(_timer(env, 1_000, 1.0 + i * 0.01), name=f"t{i}")
    env.run()
    return env.events_processed


def bench_process_ping_pong():
    env = Environment()
    req, rsp = Store(env, name="req"), Store(env, name="rsp")
    done = env.process(_ping(env, req, rsp, 60_000), name="ping")
    env.process(_pong(env, req, rsp), name="pong")
    env.run(until=done)
    return env.events_processed


def bench_condition_fanin():
    env = Environment()
    env.process(_fanin(env, 4_000, 8), name="fanin")
    env.run()
    return env.events_processed


def _cqe_burster(env: Environment, cq: FilterStore, bursts: int, width: int):
    for burst in range(bursts):
        for i in range(width):
            cq.put_nowait((burst, i))
        yield env.timeout(1.0)


def _cqe_drainer(env: Environment, cq: FilterStore, drained: list):
    while True:
        batch = yield cq.poll_batch()
        drained[0] += len(batch)


def bench_cqe_storm():
    # A polling engine under completion bursts: the consumer blocks
    # once per burst and drains the backlog with sync re-polls — the
    # batched path the RNIC CQ consumers use.  Drained CQEs are model
    # events serviced without individual kernel wakeups, so they count
    # alongside the heap events.
    env = Environment()
    cq = FilterStore(env, name="cq")
    drained = [0]
    done = env.process(_cqe_burster(env, cq, 2_000, 64), name="burst")
    env.process(_cqe_drainer(env, cq, drained), name="drain")
    env.run(until=done)
    return env.events_processed + drained[0]


def _noop():
    pass


def _cancel_churn(env: Environment, wheel: TimerWheel,
                  rounds: int, width: int):
    for _ in range(rounds):
        handles = [wheel.schedule(50.0 + (i % 7), _noop)
                   for i in range(width)]
        # The dominant real pattern: the guarded operation wins the
        # race, so almost every timer is cancelled before firing.
        for handle in handles[:-1]:
            wheel.cancel(handle)
        yield wheel.sleep(60.0)


def bench_timer_cancel_churn():
    # Retransmit-guard churn: arm a burst of deadlines, cancel all but
    # one.  Tombstoned timers never touch the heap (the fast path
    # under test), so armed timers count as serviced model events.
    env = Environment()
    wheel = TimerWheel(env, granularity_us=8.0)
    env.process(_cancel_churn(env, wheel, 2_500, 32), name="churn")
    env.run()
    return env.events_processed + wheel.scheduled


MICROBENCHES = {
    "event_churn": bench_event_churn,
    "timeout_storm": bench_timeout_storm,
    "process_ping_pong": bench_process_ping_pong,
    "condition_fanin": bench_condition_fanin,
    "cqe_storm": bench_cqe_storm,
    "timer_cancel_churn": bench_timer_cancel_churn,
}


def _best_of(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        if best is None or wall < best[0]:
            best = (wall, events)
    wall, events = best
    return {
        "wall_clock_s": round(wall, 4),
        "sim_events": events,
        "events_per_sec": round(events / wall) if wall else 0,
    }


def test_bench_sim_kernel(once):
    baseline = {}
    if OUT_PATH.exists():
        try:
            baseline = json.loads(OUT_PATH.read_text()).get("kernel", {})
        except ValueError:
            pass

    def workload():
        return {name: _best_of(fn) for name, fn in MICROBENCHES.items()}

    kernel = once(workload)
    report = merge_report({"kernel": kernel})
    print()
    print(json.dumps({"kernel": report["kernel"]}, indent=1, sort_keys=True))

    for name, profile in kernel.items():
        assert profile["sim_events"] > 10_000, name  # it really ran

    if os.environ.get("REPRO_PERF_GATE"):
        assert baseline, "REPRO_PERF_GATE set but no committed baseline"
        for name, profile in kernel.items():
            committed = baseline.get(name)
            if committed is None:
                # A mix added after the committed baseline gates from
                # its next regeneration onward.
                continue
            floor = GATE_FLOOR * committed["events_per_sec"]
            assert profile["events_per_sec"] >= floor, (
                f"{name}: {profile['events_per_sec']} ev/s is below "
                f"{GATE_FLOOR}x the committed baseline "
                f"({committed['events_per_sec']} ev/s)"
            )
