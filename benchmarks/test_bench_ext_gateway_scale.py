"""Extension bench: gateway-tier scale-out at O(10^6) modeled clients.

Regenerates the ext_gateway_scale experiment points and merges a
``gateway_scale`` section into ``BENCH_host_perf.json`` (read-modify-
write: other sections are preserved).  The headline numbers are the
aggregate goodput at each spray width, the hot-path coverage the flow
tables reach, and the mid-sweep crash recovery at the 16-gateway
point — all at a million modeled clients per point, which is the
whole reason the workload frontend is flow-aggregate rather than
per-client objects.
"""

import json

from test_bench_host_perf import OUT_PATH, merge_report, timed

from repro.experiments import run_gateway_scale_point


def test_bench_ext_gateway_scale(once):
    def workload():
        section = {}
        for gateways in (1, 4, 16):
            point, profile = timed(
                run_gateway_scale_point, gateways,
                duration_us=400_000.0, crash=(gateways == 16))
            entry = {
                "clients": int(point["clients"]),
                "offered_rps": round(point["offered_rps"]),
                "goodput_rps": round(point["goodput_rps"]),
                "p99_us": round(point["p99_us"], 1),
                "hot_pct": round(100.0 * point["hot_ratio"], 1),
                "rejected": int(point["rejected"]),
                "lost": int(point["lost"]),
                **profile,
                # fluid model: zero kernel events; throughput is epochs
                "model_epochs_per_sec": (
                    round(point["epochs"] / profile["wall_clock_s"])
                    if profile["wall_clock_s"] else 0),
            }
            if point["crashed"]:
                entry["post_crash_rps"] = round(point["post_rps"])
                entry["blip_p99_us"] = round(point["blip_p99_us"], 1)
                entry["flows_synced"] = int(point["flows_synced"])
            section[f"gw{gateways}"] = entry
        return section

    section = once(workload)
    report = merge_report({"gateway_scale": section})
    print()
    print(json.dumps(section, indent=1, sort_keys=True))
    # every point models a full million clients
    assert all(entry["clients"] >= 1_000_000 for entry in section.values())
    # goodput scales with the spray width
    assert (section["gw1"]["goodput_rps"]
            < section["gw4"]["goodput_rps"]
            < section["gw16"]["goodput_rps"])
    # the flow tables approach full hot-path coverage at the top
    assert section["gw16"]["hot_pct"] > 90.0
    assert section["gw16"]["hot_pct"] > section["gw1"]["hot_pct"]
    # the exact ledger: no lost requests anywhere, crash included
    assert all(entry["lost"] == 0 for entry in section.values())
    # the crash point recovered: surviving gateways carry the load and
    # the dead gateway's table entries were shipped to successors
    crash = section["gw16"]
    assert crash["flows_synced"] > 0
    assert crash["post_crash_rps"] > 0.7 * crash["goodput_rps"]
    assert OUT_PATH.exists()
