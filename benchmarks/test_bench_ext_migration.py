"""Extension bench: live migration vs kill-and-cold-start.

Regenerates the ext_migration experiment points and merges a
``migration`` section into ``BENCH_host_perf.json`` (read-modify-write:
other sections are preserved).  The headline numbers are the
freeze-to-thaw downtime per checkpoint state size and the cold-start
TTFB it must stay strictly below.
"""

import json

from test_bench_host_perf import OUT_PATH, merge_report, timed

from repro.experiments import run_drain_point, run_migration_point


def test_bench_ext_migration(once):
    def workload():
        section = {}
        for kb in (64, 4096):
            m, profile = timed(run_migration_point, kb, "migrate",
                               clients=8)
            section[f"migrate_{kb}kb"] = {
                "downtime_us": round(m["downtime_us"], 1),
                "blip_p99_us": round(m["blip_p99_us"], 1),
                "redirected": int(m["redirected"]),
                "client_errors": int(m["client_errors"]),
                **profile,
            }
        cold, profile = timed(run_migration_point, 64, "cold", clients=8)
        section["cold_start"] = {
            "downtime_us": round(cold["downtime_us"], 1),
            "client_errors": int(cold["client_errors"]),
            **profile,
        }
        drain, profile = timed(run_drain_point, clients=8)
        section["node_drain"] = {
            "drain_ms": round(drain["drain_ms"], 3),
            "migrated": int(drain["migrated"]),
            "client_errors": int(drain["client_errors"]),
            **profile,
        }
        return section

    section = once(workload)
    report = merge_report({"migration": section})
    print()
    print(json.dumps(section, indent=1, sort_keys=True))
    # live migration stays strictly below the cold-start TTFB at every
    # state size, loses nothing, and the drain empties worker1
    cold_ttfb = section["cold_start"]["downtime_us"]
    for key, row in section.items():
        if key.startswith("migrate_"):
            assert 0 < row["downtime_us"] < cold_ttfb
            assert row["client_errors"] == 0
    assert section["cold_start"]["client_errors"] > 0
    assert section["node_drain"]["migrated"] == 2
    assert OUT_PATH.exists()
