"""Extension bench: Fig. 4/5-style CPU cycle breakdown.

Regenerates the ext_cycle_breakdown experiment: the Online Boutique
runs instrumented with the telemetry profiler and every component
charges its core time to a cycle category.  SPRIGHT's non-application
cycles are dominated by copies + kernel protocol processing while the
DNE's host-side overhead is almost entirely descriptor handling — the
paper's motivation for a DPU-resident zero-copy data plane.
"""

from repro.experiments import run_ext_cycle_breakdown
from repro.telemetry import CYCLE_CATEGORIES


def test_bench_ext_cycle_breakdown(once):
    result = once(run_ext_cycle_breakdown, clients=12,
                  duration_us=100_000.0)
    print()
    print(result)
    rows = {d["config"]: d for d in
            (result.row_dict(i) for i in range(len(result.rows)))}
    spright = rows["spright"]
    dne = rows["palladium-dne"]
    # SPRIGHT: copy + protocol dominate the non-application cycles.
    spright_waste = spright["copy_pct"] + spright["protocol_pct"]
    spright_nonapp = 100.0 - spright["app_pct"]
    assert spright_waste > 0.5 * spright_nonapp
    # The DNE eliminates copies; descriptor work dominates its overhead.
    assert dne["copy_pct"] == 0.0
    dne_nonapp = 100.0 - dne["app_pct"]
    assert dne["descriptor_pct"] > 0.5 * dne_nonapp
    # The DNE wastes far fewer cycles overall than SPRIGHT.
    assert dne["overhead_pct"] < 0.5 * spright["overhead_pct"]
    # The instrumented run attached a metrics registry snapshot.
    assert result.metrics, "instrumented run should attach metrics"
    assert "engine_tx_total" in result.metrics
    assert "ingress_latency_us" in result.metrics
    assert len(CYCLE_CATEGORIES) == 5
