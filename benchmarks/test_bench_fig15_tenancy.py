"""Bench: regenerate Fig. 15 (tenant bandwidth sharing, DWRR vs FCFS)."""

from repro.experiments import run_fig15


def test_bench_fig15(once):
    results = once(run_fig15, time_scale=1 / 120.0)
    print()
    for result in results.values():
        print(result)
        print()
    dwrr = results["dwrr"]
    mid = [r for r in dwrr.rows if 40 <= r[0] <= 80]
    t1 = sum(r[1] for r in mid) / len(mid)
    t2 = sum(r[2] for r in mid) / len(mid)
    assert 4.0 < t1 / t2 < 8.0  # ~6:1 weighted split
