"""Bench: regenerate Fig. 9 (DPU/host descriptor channels)."""

from repro.experiments import run_fig09


def test_bench_fig09(once):
    result = once(run_fig09, function_counts=(1, 2, 4, 6, 8, 10),
                  duration_us=40_000)
    print()
    print(result)
    # Comch-E is the practical choice: stable and far better than TCP
    e6 = result.find_row(channel="comch-e", functions=6)
    tcp6 = result.find_row(channel="tcp", functions=6)
    assert e6["mean_rtt_us"] < tcp6["mean_rtt_us"]
