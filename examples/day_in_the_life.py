#!/usr/bin/env python3
"""A day in the life: diurnal load against a fully elastic Palladium cloud.

Combines the repository's moving parts end to end:

* an open-loop source follows a compressed diurnal curve (morning peak,
  lunch dip, afternoon peak);
* Palladium's ingress autoscaler grows and shrinks gateway workers with
  the curve (§3.6);
* a backlog-driven function autoscaler does the same for the service's
  replicas, with the coordinator republishing routes on every change.

Run:  python examples/day_in_the_life.py
"""

from dataclasses import replace

from repro import CostModel, Environment, FunctionSpec, Tenant
from repro.config import SEC
from repro.ingress import PalladiumIngress
from repro.platform import ElasticPlatform, FunctionAutoscaler
from repro.workloads import OpenLoopSource, ScheduledSource, diurnal_schedule

DAY_US = 2 * SEC  # a two-simulated-second "day"


def main():
    env = Environment()
    # compress the autoscaler's cadence to the compressed day
    cost = replace(CostModel(),
                   ingress_autoscale_period_us=0.05 * SEC,
                   ingress_scale_event_pause_us=5_000.0)
    plat = ElasticPlatform(env, cost=cost)
    plat.add_tenant(Tenant("app", pool_buffers=4096))
    spec = FunctionSpec("api", "app", work_us=120, concurrency=4)
    plat.deploy_service(spec, "worker1", replicas=1)
    fn_scaler = FunctionAutoscaler(plat, spec, nodes=["worker1", "worker0"],
                                   max_replicas=8, high_watermark=3.0,
                                   low_watermark=0.3, period_us=20_000)

    ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                               lambda path: ("app", "api"),
                               min_workers=1, max_workers=6, autoscale=True,
                               service_resolver=plat.resolve_service)
    ingress.add_tenant("app", buffers=2048)
    plat.coordinator.subscribe(ingress.routes)
    plat.register_external(ingress.AGENT, "ingress")
    ingress.start()
    plat.start()
    fn_scaler.start()

    source = OpenLoopSource(env, plat.cluster, ingress, rate_rps=1.0,
                            path="/api", body_bytes=512)
    schedule = diurnal_schedule(DAY_US, base_rps=4_000, peak_rps=60_000)
    driver = ScheduledSource(env, source, schedule)

    def kickoff():
        yield env.timeout(60_000)  # warm RC connections
        yield from driver.run()

    env.process(kickoff())

    def reporter():
        while True:
            yield env.timeout(0.2 * SEC)
            day_pct = 100 * (env.now - 60_000) / DAY_US
            print(f"[day {max(0, day_pct):5.1f}%] offered "
                  f"{schedule.rate_at(env.now - 60_000):>7,.0f} rps | "
                  f"gateway workers {len(ingress.workers)} | "
                  f"api replicas {plat.replica_count('api')} | "
                  f"served {source.completed:,}")

    env.process(reporter())
    env.run(until=60_000 + DAY_US)

    print(f"\nday over: {source.completed:,}/{source.offered:,} requests "
          f"served")
    print(f"gateway scale events: {ingress.autoscaler.scale_events}; "
          f"function scale-outs/ins: {fn_scaler.scale_outs}/"
          f"{fn_scaler.scale_ins}")


if __name__ == "__main__":
    main()
