#!/usr/bin/env python3
"""Quickstart: deploy two functions on Palladium and make an RPC.

Builds the paper's testbed (two DPU-equipped workers), deploys a
client/server function pair across nodes under one tenant, and performs
cross-node invocations over the full Palladium data plane: descriptor
to the DNE over Comch-E, payload over two-sided RDMA into the remote
tenant pool, descriptor to the destination function — zero software
copies end to end.

Run:  python examples/quickstart.py
"""

from repro import Environment, FunctionSpec, ServerlessPlatform, Tenant


def greeter(ctx, msg):
    """A user handler: compute, then respond (the paper's I/O library
    hides whether the caller is local or remote)."""
    yield from ctx.compute(25)  # 25 us of application logic
    yield from ctx.respond({"greeting": f"hello, {msg.payload}!"}, 256)


def main():
    env = Environment()

    # The Palladium data plane is the default: DNE on each worker's DPU,
    # Comch-E descriptor channels, DWRR tenant scheduling.
    platform = ServerlessPlatform(env)
    platform.add_tenant(Tenant("demo", weight=1.0))

    client = platform.deploy(FunctionSpec("client", "demo", work_us=0), "worker0")
    platform.deploy(FunctionSpec("greeter", "demo", greeter), "worker1")
    platform.start()

    latencies = []

    def driver():
        # Let the DNE core threads warm the RC connection pools first.
        yield env.timeout(30_000)
        for name in ("alice", "bob", "carol"):
            t0 = env.now
            reply = yield from client.invoke("greeter", name, 64)
            latencies.append(env.now - t0)
            print(f"[{env.now / 1000:.3f} ms] reply: {reply.payload}")

    env.process(driver())
    env.run(until=200_000)

    dne0 = platform.engines["worker0"]
    print(f"\ncross-node RPC mean latency: "
          f"{sum(latencies) / len(latencies):.1f} us")
    print(f"DNE worker0 forwarded {dne0.stats.tx_messages} requests, "
          f"received {dne0.stats.rx_messages} responses, "
          f"recycled {dne0.stats.recycled} buffers")
    pool = platform.pool_for("demo", "worker0")
    print(f"tenant pool on worker0: {pool.free_count}/{pool.buffer_count} "
          f"buffers free (the rest are posted to the shared RQ)")


if __name__ == "__main__":
    main()
