#!/usr/bin/env python3
"""Elastic function scaling on the Palladium data plane.

Serverless platforms scale replicas with load — exactly the churn the
paper says demands flexible provisioning of network resources (§1).
This example runs a bursty workload against a replicated service under
a backlog-driven autoscaler: replicas appear as the burst builds
(routes published by the coordinator, Comch endpoints attached, SRQ
credits posted) and retire when it fades, while every in-flight request
completes.

Run:  python examples/elastic_scaling.py
"""

from repro import Environment, FunctionSpec, Tenant
from repro.config import SEC
from repro.platform import ElasticPlatform, FunctionAutoscaler


def main():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("shop", pool_buffers=2048))
    caller = plat.deploy(FunctionSpec("edge", "shop", work_us=0), "worker0")
    spec = FunctionSpec("resizer", "shop", work_us=350, concurrency=1)
    plat.deploy_service(spec, "worker1", replicas=1)
    scaler = FunctionAutoscaler(
        plat, spec, nodes=["worker1", "worker0"],
        min_replicas=1, max_replicas=6,
        high_watermark=2.0, low_watermark=0.2, period_us=15_000,
    )
    plat.start()
    scaler.start()

    completed = []

    def client(i):
        yield env.timeout(40_000)
        for _ in range(12):
            yield from caller.invoke("resizer", f"img-{i}", 1024)
            completed.append(env.now)

    for i in range(16):  # the burst
        env.process(client(i))

    def reporter():
        while True:
            yield env.timeout(100_000)
            print(f"[{env.now / SEC:5.2f} s] replicas="
                  f"{plat.replica_count('resizer')} "
                  f"backlog={scaler.mean_backlog():5.1f} "
                  f"done={len(completed)}")

    env.process(reporter())
    env.run(until=1.2 * SEC)

    peak = max(v for _t, v in scaler.replica_series)
    print(f"\ncompleted {len(completed)}/192 requests")
    print(f"replicas peaked at {peak:.0f}, settled back to "
          f"{plat.replica_count('resizer')} "
          f"({scaler.scale_outs} scale-outs, {scaler.scale_ins} scale-ins)")


if __name__ == "__main__":
    main()
