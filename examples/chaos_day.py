#!/usr/bin/env python3
"""A chaos day on the Palladium data plane.

One declarative :class:`FaultPlan` strings together a bad afternoon:
the inter-node link degrades 4x, worker1 fail-stops and later
restarts, and a QP error tears the warm connections mid-run.  The
recovery machinery — route withdrawal, replica failover, shadow-pool
eviction, background reconnect with capped backoff — keeps a
two-replica service answering throughout, and the injector's timeline
doubles as the incident log.

Run:  python examples/chaos_day.py
"""

from repro import Environment, FunctionSpec, Tenant
from repro.config import SEC
from repro.faults import FaultInjector, FaultPlan
from repro.platform import ElasticPlatform


def main():
    env = Environment()
    plat = ElasticPlatform(env)
    plat.add_tenant(Tenant("shop", pool_buffers=2048))
    caller = plat.deploy(FunctionSpec("edge", "shop", work_us=0), "worker0")
    spec = FunctionSpec("catalog", "shop", work_us=40)
    plat.deploy_service(spec, "worker1")   # catalog#0 — the victim
    plat.scale_out(spec, "worker0")        # catalog#1 — the survivor
    plat.start()

    # The day's incidents, scheduled up front and replayed exactly.
    plan = (
        FaultPlan()
        .link_degrade(0.10 * SEC, "worker0", "worker1", factor=4.0,
                      duration_us=0.10 * SEC)
        .node_crash(0.30 * SEC, "worker1", down_us=0.25 * SEC)
        .qp_error(0.70 * SEC, "worker0", remote="worker1")
    )
    injector = FaultInjector(env, plat, plan)
    injector.start()

    stats = {"ok": 0, "err": 0}

    def client(i):
        yield env.timeout(30_000 + 500 * i)
        while True:
            try:
                yield from caller.invoke("catalog", f"q{i}", 256)
                stats["ok"] += 1
            except Exception:
                stats["err"] += 1
            yield env.timeout(2_000)

    for i in range(6):
        env.process(client(i))

    def reporter():
        while True:
            yield env.timeout(0.2 * SEC)
            engine = plat.engines["worker0"]
            print(f"[{env.now / SEC:4.2f} s] ok={stats['ok']:4d} "
                  f"err={stats['err']:2d} "
                  f"replicas={plat.services['catalog'].replicas} "
                  f"reconnects={engine.conn_mgr.reconnects_succeeded}")

    env.process(reporter())
    env.run(until=1.0 * SEC)

    print("\nincident log (injector timeline):")
    for t, kind, target, _detail in injector.timeline:
        print(f"  {t / SEC:5.2f} s  {kind:14s} {target}")
    total = stats["ok"] + stats["err"]
    print(f"\n{stats['ok']}/{total} requests answered "
          f"({100.0 * stats['ok'] / total:.1f}% availability) "
          f"through a degraded link, a node crash and a QP teardown")


if __name__ == "__main__":
    main()
