#!/usr/bin/env python3
"""Multi-tenant RDMA fairness at the DNE (§4.2, Fig. 15).

Three tenants with weights 6:1:2 contend for a throttled DNE.  The DWRR
scheduler hands out precise weighted shares; the FCFS baseline lets the
bursty tenants starve Tenant-1.  Prints both time series side by side
(the paper's 4-minute trace, compressed 240x).

Run:  python examples/multi_tenant_fairness.py
"""

from repro.experiments.fig15_tenancy import run_tenancy


def main():
    runs = {
        "FCFS DNE (no tenancy support)": run_tenancy("fcfs", time_scale=1 / 240),
        "Palladium DNE (DWRR, weights 6:1:2)": run_tenancy("dwrr", time_scale=1 / 240),
    }
    for title, result in runs.items():
        print(f"\n=== {title} ===")
        print(f"{'t(s)':>6} {'tenant-1':>10} {'tenant-2':>10} {'tenant-3':>10}")
        for row in result.rows:
            if row[0] < 0:
                continue
            print(f"{row[0]:>6.0f} {row[1]:>10,} {row[2]:>10,} {row[3]:>10,}")
    print("\nUnder DWRR the shares track the 6:1:2 weights exactly whenever "
          "tenants are\nbacklogged; under FCFS the bursty tenants crowd out "
          "Tenant-1 (Fig. 15).")


if __name__ == "__main__":
    main()
