#!/usr/bin/env python3
"""Online Boutique on Palladium vs a baseline data plane (§4.3).

Deploys the ten-function Online Boutique with the paper's placement,
fronts it with each design's cluster ingress, and drives the Home Query
chain with wrk-style closed-loop clients — a miniature of Fig. 16.

Run:  python examples/online_boutique.py [clients]
"""

import sys

from repro.experiments.fig16_boutique import run_boutique_point


def main():
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    print(f"Online Boutique, Home Query chain, {clients} closed-loop clients")
    print(f"{'data plane':<16} {'RPS':>9} {'latency':>10} "
          f"{'engine CPU':>11} {'DPU':>6}")
    print("-" * 58)
    for config in ("palladium-dne", "palladium-cne", "fuyao-f", "spright",
                   "nightcore"):
        m = run_boutique_point(config, "Home Query", clients,
                               duration_us=150_000)
        print(f"{config:<16} {m['rps']:>9,.0f} {m['latency_ms']:>8.2f}ms "
              f"{m['engine_cpu_pct']:>10.0f}% {m['dpu_pct']:>5.0f}%")
    print("\nPalladium's DNE frees the host cores the baselines burn on "
          "protocol processing,\nwhile its two wimpy DPU cores outrun every "
          "CPU-based engine (Fig. 16).")


if __name__ == "__main__":
    main()
