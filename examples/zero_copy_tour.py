#!/usr/bin/env python3
"""A tour of Palladium's zero-copy machinery, one layer at a time.

Walks the exact control flow of §3.4-§3.5 using the library's low-level
APIs directly (no platform assembly):

1. a tenant's shared-memory agent creates the unified pool under a
   DPDK file prefix;
2. the pool is exported cross-processor (DOCA-mmap style) and the DNE
   registers it with the RNIC;
3. a buffer's ownership token is passed function -> engine -> RNIC ->
   remote engine -> remote function, with every stale access rejected;
4. the same transfer is attempted with one-sided RDMA against an
   in-use buffer, demonstrating the data race the paper designs around.

Run:  python examples/zero_copy_tour.py
"""

from repro.config import CostModel
from repro.hw import build_cluster
from repro.memory import (
    CrossProcessorExporter,
    OwnershipError,
    TenantMemoryRegistry,
    create_from_export,
)
from repro.rdma import ConnectionManager, Opcode, RdmaFabric, WorkRequest
from repro.sim import Environment


def main():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    rnic0 = fabric.install_rnic("worker0")
    rnic1 = fabric.install_rnic("worker1")

    # -- 1. per-tenant pools under distinct file prefixes (§3.4.1) -----
    registry0 = TenantMemoryRegistry(env)
    registry1 = TenantMemoryRegistry(env)
    agent0 = registry0.create_tenant_pool("tenant-a", 32, 4096)
    agent1 = registry1.create_tenant_pool("tenant-a", 32, 4096,
                                          file_prefix="palladium_a_w1")
    print(f"pool on worker0: {agent0.pool.name}, "
          f"{agent0.pool.hugepages} hugepage(s)")

    # another tenant cannot attach to this prefix:
    try:
        registry0.attach(agent0.file_prefix, "tenant-b")
    except PermissionError as exc:
        print(f"isolation: {exc}")

    # -- 2. cross-processor export + RNIC registration (§3.4.2) --------
    for agent, rnic in ((agent0, rnic0), (agent1, rnic1)):
        exporter = CrossProcessorExporter(agent.pool).export_pci().export_rdma()
        remote_map = create_from_export(exporter.descriptor())
        rnic.register_pool(agent.pool, remote_map)
    print("pools exported to the DPUs and registered with both RNICs")

    # -- 3. token-passing zero-copy transfer (§3.5.1) -------------------
    cm = ConnectionManager(env, fabric, "worker0", cost)

    def transfer():
        yield from cm.warm_up("worker1", "tenant-a", 1)
        qp = yield from cm.get_connection("worker1", "tenant-a")

        # receiver posts a buffer (ownership: engine -> RNIC)
        recv_buf = agent1.pool.get("dne:worker1")
        rnic1.post_recv("tenant-a", recv_buf, "dne:worker1")

        # sender function fills a buffer, hands the token to its DNE
        buf = agent0.pool.get("fn:producer")
        buf.write("fn:producer", "the-payload", 11)
        buf.transfer("fn:producer", "dne:worker0")
        try:
            buf.write("fn:producer", "tamper!", 7)
        except OwnershipError as exc:
            print(f"token passing: {exc}")

        # two-sided send: RNIC DMAs into the posted remote buffer
        wr = WorkRequest(opcode=Opcode.SEND, buffer=buf, length=11,
                         meta={"dst": "fn:consumer"}, signaled=False)
        t0 = env.now
        yield from rnic0.execute(qp, wr)
        completion = rnic1.cq.try_get()
        payload = completion.buffer.read(f"rnic:worker1")
        print(f"two-sided SEND delivered {payload!r} in {env.now - t0:.1f} us "
              f"(no software copy)")

        # -- 4. the one-sided hazard (§2.1) ------------------------------
        victim = agent1.pool.get("fn:busy-function")
        victim.write("fn:busy-function", "in-use data", 11)
        wr2 = WorkRequest(opcode=Opcode.WRITE, buffer=buf, length=11,
                          remote_buffer=victim, signaled=False)
        buf.transfer("dne:worker0", "dne:worker0")  # still engine-owned
        yield from rnic0.execute(qp, wr2)
        print(f"one-sided WRITE overwrote an in-use buffer "
              f"(victim now holds {victim.payload!r}); "
              f"races detected by the fabric: {rnic1.potential_races}")

    env.process(transfer())
    env.run()


if __name__ == "__main__":
    main()
