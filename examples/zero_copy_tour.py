#!/usr/bin/env python3
"""A tour of Palladium's zero-copy machinery, one layer at a time.

Walks the exact control flow of §3.4-§3.5 using the library's low-level
APIs directly (no platform assembly):

1. a tenant's shared-memory agent creates the unified pool under a
   DPDK file prefix;
2. the pool is exported cross-processor (DOCA-mmap style) and the DNE
   registers it with the RNIC;
3. a buffer's ownership token is passed function -> engine -> RNIC ->
   remote engine -> remote function, with every stale access rejected —
   and the typed dataplane Message header moves under the same
   single-owner protocol (use-after-transfer raises at sim time);
4. the same transfer is attempted with one-sided RDMA against an
   in-use buffer, demonstrating the data race the paper designs around.

Run:  python examples/zero_copy_tour.py
"""

from repro.config import CostModel
from repro.dataplane import DescriptorChain, Message, OwnershipViolation
from repro.hw import build_cluster
from repro.memory import (
    BufferDescriptor,
    CrossProcessorExporter,
    OwnershipError,
    TenantMemoryRegistry,
    create_from_export,
)
from repro.rdma import ConnectionManager, Opcode, RdmaFabric, WorkRequest
from repro.sim import Environment


def main():
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost)
    fabric = RdmaFabric(env, cluster, cost)
    rnic0 = fabric.install_rnic("worker0")
    rnic1 = fabric.install_rnic("worker1")

    # -- 1. per-tenant pools under distinct file prefixes (§3.4.1) -----
    registry0 = TenantMemoryRegistry(env)
    registry1 = TenantMemoryRegistry(env)
    agent0 = registry0.create_tenant_pool("tenant-a", 32, 4096)
    agent1 = registry1.create_tenant_pool("tenant-a", 32, 4096,
                                          file_prefix="palladium_a_w1")
    print(f"pool on worker0: {agent0.pool.name}, "
          f"{agent0.pool.hugepages} hugepage(s)")

    # another tenant cannot attach to this prefix:
    try:
        registry0.attach(agent0.file_prefix, "tenant-b")
    except PermissionError as exc:
        print(f"isolation: {exc}")

    # -- 2. cross-processor export + RNIC registration (§3.4.2) --------
    for agent, rnic in ((agent0, rnic0), (agent1, rnic1)):
        exporter = CrossProcessorExporter(agent.pool).export_pci().export_rdma()
        remote_map = create_from_export(exporter.descriptor())
        rnic.register_pool(agent.pool, remote_map)
    print("pools exported to the DPUs and registered with both RNICs")

    # -- 3. token-passing zero-copy transfer (§3.5.1) -------------------
    cm = ConnectionManager(env, fabric, "worker0", cost)

    def transfer():
        yield from cm.warm_up("worker1", "tenant-a", 1)
        qp = yield from cm.get_connection("worker1", "tenant-a")

        # receiver posts a buffer (ownership: engine -> RNIC)
        recv_buf = agent1.pool.get("dne:worker1")
        rnic1.post_recv("tenant-a", recv_buf, "dne:worker1")

        # sender function fills a buffer, hands the token to its DNE
        buf = agent0.pool.get("fn:producer")
        buf.write("fn:producer", "the-payload", 11)
        buf.transfer("fn:producer", "dne:worker0")
        try:
            buf.write("fn:producer", "tamper!", 7)
        except OwnershipError as exc:
            print(f"token passing: {exc}")

        # the message header obeys the same single-owner protocol as
        # the buffer it describes
        message = Message(dst="fn:consumer", src="fn:producer",
                          tenant="tenant-a", owner="fn:producer")
        message.transfer("fn:producer", "dne:worker0")
        try:
            message.transfer("fn:producer", "somewhere-else")
        except OwnershipViolation as exc:
            print(f"header protocol: {exc}")

        # a DescriptorChain moves header + every fragment in one step
        frag0 = agent0.pool.get("fn:producer")
        frag1 = agent0.pool.get("fn:producer")
        frag0.write("fn:producer", "part-one", 8)
        frag1.write("fn:producer", "part-two", 8)
        chain = DescriptorChain(message=message.clone(owner="fn:producer"))
        chain.append(BufferDescriptor(buffer=frag0, length=8))
        chain.append(BufferDescriptor(buffer=frag1, length=8))
        chain.transfer("fn:producer", "dne:worker0")
        print(f"descriptor chain: {len(chain)} fragment(s), "
              f"{chain.total_length} B payload, "
              f"{chain.wire_bytes} B on the wire")
        chain.retire("dne:worker0")  # header retired, fragments pooled

        # two-sided send: RNIC DMAs into the posted remote buffer.
        # The engine hands the header to its RNIC before posting, just
        # like the runtime data path does.
        message.transfer("dne:worker0", "rnic:worker0")
        wr = WorkRequest(opcode=Opcode.SEND, buffer=buf, length=11,
                         message=message, signaled=False)
        t0 = env.now
        yield from rnic0.execute(qp, wr)
        completion = rnic1.cq.try_get()
        payload = completion.buffer.read(f"rnic:worker1")
        print(f"two-sided SEND delivered {payload!r} for "
              f"{completion.message.dst!r} in {env.now - t0:.1f} us "
              f"(no software copy)")
        completion.message.transfer("rnic:worker1", "dne:worker1")
        completion.message.retire("dne:worker1")

        # -- 4. the one-sided hazard (§2.1) ------------------------------
        victim = agent1.pool.get("fn:busy-function")
        victim.write("fn:busy-function", "in-use data", 11)
        wr2 = WorkRequest(opcode=Opcode.WRITE, buffer=buf, length=11,
                          remote_buffer=victim, signaled=False)
        buf.transfer("dne:worker0", "dne:worker0")  # still engine-owned
        yield from rnic0.execute(qp, wr2)
        print(f"one-sided WRITE overwrote an in-use buffer "
              f"(victim now holds {victim.payload!r}); "
              f"races detected by the fabric: {rnic1.potential_races}")

    env.process(transfer())
    env.run()


if __name__ == "__main__":
    main()
