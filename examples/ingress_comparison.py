#!/usr/bin/env python3
"""Early vs deferred transport conversion at the cluster ingress (§4.1.3).

An HTTP echo function served through three one-core ingress designs:
the kernel-stack NGINX proxy (K-Ingress), the DPDK F-stack proxy
(F-Ingress), and Palladium's HTTP/TCP-to-RDMA converting gateway —
a miniature of Fig. 13.

Run:  python examples/ingress_comparison.py
"""

from repro.experiments.fig13_ingress import run_ingress_point


def main():
    print(f"{'ingress':<12} {'clients':>8} {'RPS':>9} {'latency':>11}")
    print("-" * 44)
    for kind in ("k-ingress", "f-ingress", "palladium"):
        for clients in (1, 16, 64):
            rps, latency, _errors = run_ingress_point(
                kind, clients, duration_us=120_000
            )
            print(f"{kind:<12} {clients:>8} {rps:>9,.0f} {latency:>9.0f}us")
    print("\nTerminating TCP once at the edge and converting to RDMA removes "
          "the worker-side\nprotocol stack entirely; the proxies pay TCP "
          "processing twice (Fig. 4).")


if __name__ == "__main__":
    main()
