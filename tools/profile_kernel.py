#!/usr/bin/env python3
"""cProfile harness for the simulator's hot paths.

Profiles one of the reference workloads (or a custom ``-m module:fn``)
and prints two views:

* the classic pstats top-N table (by ``tottime``), and
* a per-subsystem rollup — cumulative self-time bucketed by the
  package that owns each frame (``sim`` kernel, ``rdma`` device
  models, ``platform`` runtime, ``ingress`` tier, ``hw`` substrate,
  ``experiments`` drivers, stdlib/builtins) — which answers the
  question the flat table can't: *where does the per-event budget go?*

The optimization loop this supports (see docs/PERFORMANCE.md): profile
a mix, attack the top subsystem, re-run the byte-identity gates, then
re-profile.  Profiling inflates wall-clock roughly 3-4x, so compare
profiled runs only with profiled runs.

Usage::

    PYTHONPATH=src python tools/profile_kernel.py fig12
    PYTHONPATH=src python tools/profile_kernel.py fig16 --top 40
    PYTHONPATH=src python tools/profile_kernel.py ovl --sort cumtime
    PYTHONPATH=src python tools/profile_kernel.py \
        -m repro.experiments:run_fig12
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import pstats
import sys
from collections import defaultdict

#: the reference mixes (mirrors benchmarks/test_bench_host_perf.py)
WORKLOADS = {
    "fig16": ("repro.experiments", "run_boutique_point",
              ("palladium-dne", "Home Query"),
              {"clients": 8, "duration_us": 120_000.0}),
    "fig12": ("repro.experiments", "run_fig12", (),
              {"sizes": (256, 4096), "concurrency": 4,
               "duration_us": 20_000.0}),
    "ovl": ("repro.experiments", "run_overload_point",
            ("palladium-dne", 2.0), {"duration_us": 60_000.0}),
}

#: repo packages rolled up as subsystems (first match wins)
SUBSYSTEMS = ("sim", "rdma", "platform", "ingress", "dne", "hw",
              "memory", "net", "dataplane", "workloads", "experiments",
              "telemetry")


def _subsystem(filename: str) -> str:
    """Bucket a frame's filename into an owning subsystem."""
    if "/repro/" in filename:
        tail = filename.split("/repro/", 1)[1]
        head = tail.split("/", 1)[0]
        if head.endswith(".py"):
            return "repro (top-level)"
        if head in SUBSYSTEMS:
            return head
        return head
    if filename.startswith("<") or filename.startswith("~"):
        return "builtins"
    return "stdlib/other"


def rollup(stats: pstats.Stats) -> dict:
    """Sum self-time (tottime) per subsystem; returns name -> seconds."""
    buckets: dict = defaultdict(float)
    for (filename, _line, _name), (_cc, _nc, tottime, _ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        buckets[_subsystem(filename)] += tottime
    return dict(buckets)


def resolve(spec: str):
    """``module:function`` -> callable."""
    module_name, _, fn_name = spec.partition(":")
    if not fn_name:
        raise SystemExit(f"-m expects module:function, got {spec!r}")
    module = importlib.import_module(module_name)
    return getattr(module, fn_name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("workload", nargs="?", default="fig12",
                        choices=sorted(WORKLOADS),
                        help="reference mix to profile (default: fig12)")
    parser.add_argument("-m", "--module", metavar="MOD:FN",
                        help="profile a custom module:function instead "
                             "(called with no arguments)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows in the flat pstats table (default 25)")
    parser.add_argument("--sort", default="tottime",
                        choices=("tottime", "cumtime", "ncalls"),
                        help="flat-table sort key (default tottime)")
    args = parser.parse_args(argv)

    if args.module:
        fn, fn_args, fn_kwargs = resolve(args.module), (), {}
        label = args.module
    else:
        module_name, fn_name, fn_args, fn_kwargs = WORKLOADS[args.workload]
        fn = getattr(importlib.import_module(module_name), fn_name)
        label = args.workload

    profile = cProfile.Profile()
    profile.enable()
    fn(*fn_args, **fn_kwargs)
    profile.disable()

    stats = pstats.Stats(profile)
    total = sum(row[2] for row in stats.stats.values())  # type: ignore

    print(f"== {label}: top {args.top} by {args.sort} ==")
    stats.sort_stats(args.sort).print_stats(args.top)

    print(f"== {label}: per-subsystem self-time rollup ==")
    buckets = rollup(stats)
    width = max(len(name) for name in buckets)
    for name, seconds in sorted(buckets.items(), key=lambda kv: -kv[1]):
        share = 100.0 * seconds / total if total else 0.0
        print(f"  {name:<{width}}  {seconds:8.3f}s  {share:5.1f}%")
    print(f"  {'total':<{width}}  {total:8.3f}s  100.0%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
