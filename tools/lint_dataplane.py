#!/usr/bin/env python3
"""AST lint: no untyped ``meta`` plumbing outside ``repro.dataplane``.

PR 3 replaced the per-hop ``meta`` dicts with the typed
:class:`repro.dataplane.Message`.  This checker keeps the old idiom
from creeping back in.  Outside ``src/repro/dataplane/`` it rejects:

* attribute access ``<expr>.meta`` (the old descriptor field);
* ``meta=...`` keyword arguments (old WR/descriptor constructors);
* ``dict(meta)`` / ``dict(<expr>.meta)`` per-hop header copies;
* subscripts, ``.get(...)``, ``.pop(...)``, or ``.setdefault(...)``
  with a legacy underscore meta-key string literal (``"_ack"``,
  ``"_via"``, ``"_trace"``, ``"_crossed_domain"``, ``"_retries"``).

PR 8 moved all RDMA control-plane charging behind
:class:`repro.rdma.controlplane.RdmaControlPlane`.  Outside
``src/repro/rdma/`` the checker additionally rejects the ad-hoc cost
idiom that layer replaced:

* attribute access ``<expr>.rc_setup_us`` (QP setup must go through
  ``RdmaControlPlane.connect`` / ``ConnectionManager``);
* attribute access ``<expr>.mr_register_time`` (MR registration must
  go through ``RdmaControlPlane.register_region``).

(The bare dataclass/method *definitions* in ``repro/config.py`` are
not attribute accesses and stay legal.)

PR 9 added the hierarchical ingress tier: every gateway-selection
decision (L1 spray) belongs to ``repro.ingress`` — callers hold a
connection, never a gateway.  Outside ``src/repro/ingress/`` (and
``src/repro/hw/``, which owns the RSS primitive itself) the checker
rejects direct spray calls:

* calls to ``rss_queue(...)`` / ``rss_pick(...)`` (gateway/queue
  selection must go through ``IngressLoadBalancer`` or
  ``TieredIngress``).

The batched-execution PR moved every CQ consumer to coalesced
draining (``cq.poll_batch()`` — one kernel wakeup per completion
burst).  Outside ``src/repro/rdma/`` (the device layer that owns the
CQ) the checker rejects the per-CQE idiom it replaced:

* calls ``cq.get(...)`` / ``<expr>.cq.get(...)`` (drain with
  ``poll_batch()`` so a burst costs one wakeup, not one per CQE).

Usage::

    python tools/lint_dataplane.py [root ...]

Exits non-zero and prints one ``path:line:col message`` per violation.
With no arguments it checks ``src/repro`` relative to the repo root.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: underscore keys the old dict-based header used
LEGACY_META_KEYS = frozenset(
    {"_ack", "_via", "_trace", "_crossed_domain", "_retries"}
)

#: dict methods whose first string argument is a key lookup
_KEY_METHODS = frozenset({"get", "pop", "setdefault"})

#: path fragment that is allowed to talk about the wire format
EXEMPT_PART = "dataplane"

#: path fragment that is allowed to charge control-plane costs
CONTROLPLANE_EXEMPT_PART = "rdma"

#: CostModel members only the control-plane layer may touch
CONTROLPLANE_COSTS = frozenset({"rc_setup_us", "mr_register_time"})

#: path fragments allowed to make gateway/queue spray decisions
SPRAY_EXEMPT_PARTS = frozenset({"ingress", "hw"})

#: the spray/selection primitives reserved to the ingress tier
SPRAY_FUNCS = frozenset({"rss_queue", "rss_pick"})

#: path fragment allowed to pull single CQEs (the device layer)
CQ_EXEMPT_PART = "rdma"

Violation = Tuple[str, int, int, str]


class _MetaVisitor(ast.NodeVisitor):
    def __init__(self, path: str, check_meta: bool = True,
                 check_controlplane: bool = True,
                 check_spray: bool = True,
                 check_cq: bool = True):
        self.path = path
        self.check_meta = check_meta
        self.check_controlplane = check_controlplane
        self.check_spray = check_spray
        self.check_cq = check_cq
        self.violations: List[Violation] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            (self.path, node.lineno, node.col_offset, message)
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.check_meta and node.attr == "meta":
            self._flag(node, "attribute access '.meta' (use the typed "
                             "repro.dataplane.Message instead)")
        if self.check_controlplane and node.attr in CONTROLPLANE_COSTS:
            self._flag(node, f"control-plane cost '.{node.attr}' charged "
                             f"directly (go through repro.rdma."
                             f"controlplane.RdmaControlPlane)")
        self.generic_visit(node)

    def visit_keyword(self, node: ast.keyword) -> None:
        if not self.check_meta:
            self.generic_visit(node)
            return
        if node.arg == "meta":
            self._flag(node.value, "keyword argument 'meta=' (pass "
                                   "'message=' with a dataplane Message)")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if self.check_spray:
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee in SPRAY_FUNCS:
                self._flag(node, f"direct gateway spray '{callee}()' "
                                 f"outside repro.ingress (route through "
                                 f"IngressLoadBalancer or TieredIngress)")
        # cq.get(...) / <expr>.cq.get(...): per-CQE polling
        if self.check_cq and isinstance(func, ast.Attribute) \
                and func.attr == "get":
            base = func.value
            base_name = None
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name == "cq":
                self._flag(node, "single-CQE 'cq.get()' polling outside "
                                 "repro.rdma (drain bursts with "
                                 "cq.poll_batch())")
        if not self.check_meta:
            self.generic_visit(node)
            return
        # dict(meta) / dict(x.meta): the per-hop header copy
        if (isinstance(func, ast.Name) and func.id == "dict"
                and len(node.args) == 1):
            arg = node.args[0]
            if (isinstance(arg, ast.Name) and arg.id == "meta") or (
                    isinstance(arg, ast.Attribute) and arg.attr == "meta"):
                self._flag(node, "per-hop 'dict(meta)' copy (ownership "
                                 "transfer replaces header copies)")
        # x.get("_trace") and friends
        if (isinstance(func, ast.Attribute) and func.attr in _KEY_METHODS
                and node.args):
            first = node.args[0]
            if (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value in LEGACY_META_KEYS):
                self._flag(node, f"legacy meta key {first.value!r} via "
                                 f".{func.attr}() (use the typed Message "
                                 f"field)")
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if not self.check_meta:
            self.generic_visit(node)
            return
        key = node.slice
        if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                and key.value in LEGACY_META_KEYS):
            self._flag(node, f"legacy meta key {key.value!r} subscript "
                             f"(use the typed Message field)")
        self.generic_visit(node)


def _is_exempt(path: Path) -> bool:
    return EXEMPT_PART in path.parts


def _is_controlplane_exempt(path: Path) -> bool:
    return CONTROLPLANE_EXEMPT_PART in path.parts


def _is_spray_exempt(path: Path) -> bool:
    return bool(SPRAY_EXEMPT_PARTS.intersection(path.parts))


def _is_cq_exempt(path: Path) -> bool:
    return CQ_EXEMPT_PART in path.parts


def check_file(path: Path) -> List[Violation]:
    """Return the violations in one Python source file."""
    check_meta = not _is_exempt(path)
    check_controlplane = not _is_controlplane_exempt(path)
    check_spray = not _is_spray_exempt(path)
    check_cq = not _is_cq_exempt(path)
    if not (check_meta or check_controlplane or check_spray or check_cq):
        return []
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - repo should parse
        return [(str(path), exc.lineno or 0, exc.offset or 0,
                 f"syntax error: {exc.msg}")]
    visitor = _MetaVisitor(str(path), check_meta=check_meta,
                           check_controlplane=check_controlplane,
                           check_spray=check_spray,
                           check_cq=check_cq)
    visitor.visit(tree)
    return visitor.violations


def check_tree(roots: Iterable[Path]) -> List[Violation]:
    """Walk ``roots`` and collect violations from every .py file."""
    violations: List[Violation] = []
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    roots = [Path(a) for a in argv] or [repo_root / "src" / "repro"]
    violations = check_tree(roots)
    for path, line, col, message in violations:
        print(f"{path}:{line}:{col}: {message}")
    if violations:
        print(f"{len(violations)} dataplane lint violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
