#!/usr/bin/env python3
"""Append one trend line per bench run to ``BENCH_history.jsonl``.

``BENCH_host_perf.json`` is a read-modify-write snapshot — every
regeneration overwrites the previous numbers, so the repo keeps no
memory of how throughput moved across commits.  This tool closes that
gap: it reads the current snapshot and appends a single JSON line
(commit, commit date, workload totals, per-kernel-mix events/sec) to
an append-only ``BENCH_history.jsonl``.  CI's perf-smoke job runs it
after the kernel microbench and uploads the file as an artifact;
committing the appended line is optional but keeps the trend in-repo.

Usage::

    python tools/bench_history.py            # append to BENCH_history.jsonl
    python tools/bench_history.py --dry-run  # print the line, append nothing
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "BENCH_host_perf.json"
HISTORY = REPO / "BENCH_history.jsonl"


def _git(*args: str) -> str:
    try:
        return subprocess.run(
            ["git", *args], cwd=REPO, check=True, text=True,
            capture_output=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def trend_line(snapshot: dict) -> dict:
    """The one-line summary appended per run."""
    line = {
        "commit": _git("rev-parse", "--short", "HEAD"),
        "commit_date": _git("show", "-s", "--format=%cI", "HEAD"),
        "total_events_per_sec": snapshot.get("total_events_per_sec"),
        "total_sim_events": snapshot.get("total_sim_events"),
        "total_wall_clock_s": snapshot.get("total_wall_clock_s"),
    }
    kernel = snapshot.get("kernel", {})
    line["kernel_events_per_sec"] = {
        name: profile.get("events_per_sec")
        for name, profile in sorted(kernel.items())
    }
    return line


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--dry-run", action="store_true",
                        help="print the trend line without appending")
    parser.add_argument("--history", default=str(HISTORY),
                        help="trend file to append to")
    args = parser.parse_args(argv)

    if not SNAPSHOT.exists():
        print(f"no {SNAPSHOT.name}; run the benches first", file=sys.stderr)
        return 1
    snapshot = json.loads(SNAPSHOT.read_text())
    line = trend_line(snapshot)
    encoded = json.dumps(line, sort_keys=True)
    if args.dry_run:
        print(encoded)
        return 0
    with open(args.history, "a") as fh:
        fh.write(encoded + "\n")
    print(f"appended to {args.history}: {encoded}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
