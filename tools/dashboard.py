#!/usr/bin/env python3
"""Self-contained SLO dashboard: monitor series + alerts + critpath.

Renders the bundle produced by
:func:`repro.experiments.build_dashboard_bundle` as

* a single static HTML page (inline SVG sparklines, alert timeline,
  SLO states, critical-path attribution) — stdlib only, no JS, no
  external assets, honors ``prefers-color-scheme``;
* a terminal summary (``--text``);

and ships a structural self-check (``--check``) the CI smoke job runs
against the rendered page.

Usage::

    python tools/dashboard.py --out dashboard.html          # build+render
    python tools/dashboard.py --bundle b.json --out d.html  # render only
    python tools/dashboard.py --text                        # terminal view
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401  (installed layout)
except ImportError:  # running from a source checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

__all__ = ["check_html", "render_html", "render_text"]

#: which recording rules get a sparkline, in display order
SPARK_RULES = ("offered_rps", "delivered_rps", "ingress_p99_us",
               "shed_ratio")

#: severity -> (icon, css color token); status colors are reserved for
#: status and always ship icon + label, never color alone
SEVERITY_BADGES = {
    "page": ("▲", "critical"),     # ▲
    "ticket": ("●", "warning"),    # ●
    "info": ("✓", "good"),         # ✓
}

_CSS = """
:root {
  --surface: #fcfcfb; --ink: #1a1a19; --ink-2: #6f6e6a;
  --line: #e5e4e0; --series-1: #2a78d6;
  --good: #0ca30c; --warning: #fab219; --serious: #ec835a;
  --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #f1f0ee; --ink-2: #a3a29d;
    --line: #3a3936; --series-1: #3987e5;
  }
}
html { background: var(--surface); color: var(--ink);
       font: 14px/1.45 system-ui, sans-serif; }
body { max-width: 960px; margin: 2rem auto; padding: 0 1rem; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; color: var(--ink-2); margin-bottom: 0.3rem; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { text-align: right; padding: 0.2rem 0.7rem;
         border-bottom: 1px solid var(--line); }
th { color: var(--ink-2); font-weight: 600; }
td.l, th.l { text-align: left; }
.spark-grid { display: flex; flex-wrap: wrap; gap: 1rem 2rem; }
.spark { min-width: 260px; }
.spark .value { color: var(--ink-2); font-size: 0.85rem; }
.badge { font-weight: 600; }
.badge.critical { color: var(--critical); }
.badge.warning { color: var(--warning); }
.badge.serious { color: var(--serious); }
.badge.good { color: var(--good); }
.muted { color: var(--ink-2); }
svg text { fill: var(--ink-2); font-size: 9px; }
"""


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e9:
        return f"{int(value):,}"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    return f"{value:.2f}"


def _sparkline(points: Sequence[Sequence[float]],
               spans: Sequence[Dict[str, Any]] = (),
               width: int = 260, height: int = 48) -> str:
    """One single-series inline-SVG sparkline.

    ``spans`` (alert firing intervals) overlay as translucent status
    bands — they mark *state*, the series color stays the series'.
    """
    if not points:
        return '<svg width="%d" height="%d"></svg>' % (width, height)
    t0, t1 = points[0][0], points[-1][0]
    values = [p[1] for p in points]
    lo, hi = min(values), max(values)
    t_span = (t1 - t0) or 1.0
    v_span = (hi - lo) or 1.0
    pad = 4

    def x(t: float) -> float:
        return pad + (width - 2 * pad) * (t - t0) / t_span

    def y(v: float) -> float:
        return height - pad - (height - 2 * pad) * (v - lo) / v_span

    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img">']
    for span in spans:
        fired = max(span["fired_ts"], t0)
        resolved = span["resolved_ts"] if span["resolved_ts"] is not None else t1
        if resolved <= t0 or fired >= t1:
            continue
        _, color = SEVERITY_BADGES.get(span["severity"],
                                       SEVERITY_BADGES["info"])
        parts.append(
            f'<rect x="{x(fired):.1f}" y="0" '
            f'width="{max(x(min(resolved, t1)) - x(fired), 1.0):.1f}" '
            f'height="{height}" fill="var(--{color})" opacity="0.18"/>')
    parts.append(f'<line x1="{pad}" y1="{height - pad}" '
                 f'x2="{width - pad}" y2="{height - pad}" '
                 'stroke="var(--line)" stroke-width="1"/>')
    coords = " ".join(f"{x(t):.1f},{y(v):.1f}" for t, v in points)
    parts.append(f'<polyline points="{coords}" fill="none" '
                 'stroke="var(--series-1)" stroke-width="2" '
                 'stroke-linejoin="round"/>')
    parts.append("</svg>")
    return "".join(parts)


def _badge(severity: str) -> str:
    icon, color = SEVERITY_BADGES.get(severity, SEVERITY_BADGES["info"])
    return (f'<span class="badge {color}">{icon} '
            f'{html.escape(severity)}</span>')


def _overload_section(run: Dict[str, Any]) -> List[str]:
    snap = run["snapshot"]
    spans = run["alert_spans"]
    out = [f"<h2>Overload — {html.escape(run['config'])} @ "
           f"{run['multiplier']}x</h2>",
           f'<p class="muted">goodput {_fmt(run["goodput_rps"])} rps, '
           f'offered {_fmt(run["offered_rps"])} rps, '
           f'{_fmt(run["rejected"])} rejected at the edge, '
           f'{snap["evaluations"]} monitor evaluations</p>',
           '<div class="spark-grid">']
    for rule in SPARK_RULES:
        points = snap["rules"].get(rule, [])
        last = points[-1][1] if points else 0.0
        out.append('<div class="spark">'
                   f"<h3>{html.escape(rule)}</h3>"
                   f"{_sparkline(points, spans)}"
                   f'<div class="value">last {_fmt(last)}</div></div>')
    out.append("</div>")

    out.append("<h3>Alerts</h3>")
    if spans:
        out.append('<table><tr><th class="l">alert</th>'
                   '<th class="l">severity</th><th>fired (ms)</th>'
                   '<th>resolved (ms)</th><th>burn</th></tr>')
        for span in spans:
            resolved = (f"{span['resolved_ts'] / 1000.0:.1f}"
                        if span["resolved_ts"] is not None else "still firing")
            out.append(
                f'<tr><td class="l">{html.escape(span["alert"])}</td>'
                f'<td class="l">{_badge(span["severity"])}</td>'
                f"<td>{span['fired_ts'] / 1000.0:.1f}</td>"
                f"<td>{resolved}</td><td>{span['burn']}</td></tr>")
        out.append("</table>")
    else:
        out.append('<p><span class="badge good">✓ quiet</span> '
                   "no SLO alerts fired</p>")

    out.append('<h3>SLOs</h3><table><tr><th class="l">slo</th>'
               "<th>objective</th><th class=\"l\">state</th></tr>")
    for slo in snap["slos"]:
        state = (_badge("page") if slo["firing"]
                 else '<span class="badge good">✓ ok</span>')
        out.append(f'<tr><td class="l">{html.escape(slo["name"])}</td>'
                   f"<td>{slo['objective']:.2f}</td>"
                   f'<td class="l">{state}</td></tr>')
    out.append("</table>")
    return out


def _critpath_section(critpath: Dict[str, Any]) -> List[str]:
    out = ["<h2>Critical path — where did the p99 go</h2>"]
    for point in critpath["points"]:
        out.append(f"<h3>{html.escape(point['label'])} — "
                   f"p99 {point['p99_total_us'] / 1000.0:.2f} ms, "
                   f"{point['requests']} requests</h3>")
        out.append('<table><tr><th class="l">stage</th><th>p50 µs</th>'
                   "<th>p50 share</th><th>p99 µs</th><th>p99 share</th>"
                   "<th>mean share</th></tr>")
        for row in point["table"]:
            out.append(
                f'<tr><td class="l">{html.escape(row["stage"])}</td>'
                f"<td>{row['p50_us']:.1f}</td>"
                f"<td>{row['p50_share']:.1%}</td>"
                f"<td>{row['p99_us']:.1f}</td>"
                f"<td>{row['p99_share']:.1%}</td>"
                f"<td>{row['mean_share']:.1%}</td></tr>")
        out.append("</table>")
    shifts = " → ".join(
        f"{r['point']}: {r['dominant_stage']} ({r['share']:.0%})"
        for r in critpath["shift"])
    out.append(f'<p class="muted">dominant p99 stage: '
               f"{html.escape(shifts)}</p>")
    return out


def render_html(bundle: Dict[str, Any]) -> str:
    """The whole dashboard as one self-contained HTML page."""
    parts = ["<!DOCTYPE html>", '<html lang="en"><head>',
             '<meta charset="utf-8"/>',
             f"<title>{html.escape(bundle['title'])}</title>",
             f"<style>{_CSS}</style>", "</head><body>",
             f"<h1>{html.escape(bundle['title'])}</h1>"]
    for run in bundle.get("overload", []):
        parts.extend(_overload_section(run))
    if bundle.get("critpath"):
        parts.extend(_critpath_section(bundle["critpath"]))
    parts.append("</body></html>")
    return "\n".join(parts)


def render_text(bundle: Dict[str, Any]) -> str:
    """Compact terminal summary of the same bundle."""
    lines = [bundle["title"], "=" * len(bundle["title"])]
    for run in bundle.get("overload", []):
        lines.append(f"\n[{run['config']} @ {run['multiplier']}x]  "
                     f"goodput {_fmt(run['goodput_rps'])} rps / offered "
                     f"{_fmt(run['offered_rps'])} rps")
        spans = run["alert_spans"]
        if not spans:
            lines.append("  alerts: none (quiet)")
        for span in spans:
            resolved = (f"{span['resolved_ts'] / 1000.0:.1f}ms"
                        if span["resolved_ts"] is not None else "firing")
            lines.append(f"  {span['severity']:>6s}  {span['alert']}  "
                         f"{span['fired_ts'] / 1000.0:.1f}ms -> {resolved}"
                         f"  burn={span['burn']}")
    critpath = bundle.get("critpath")
    if critpath:
        lines.append("\n[critical path]")
        for r in critpath["shift"]:
            mark = " *shift*" if r["shifted"] else ""
            lines.append(f"  {r['point']}: {r['dominant_stage']} "
                         f"({r['share']:.0%} of "
                         f"p99={r['p99_total_us'] / 1000.0:.2f}ms){mark}")
    return "\n".join(lines)


def check_html(page: str, bundle: Dict[str, Any]) -> List[str]:
    """Structural self-check; returns a list of problems (empty = ok)."""
    problems: List[str] = []
    if not page.startswith("<!DOCTYPE html>"):
        problems.append("missing doctype")
    for tag in ("html", "head", "body", "style", "title"):
        if page.count(f"<{tag}") != page.count(f"</{tag}>"):
            problems.append(f"unbalanced <{tag}> tags")
    expected_sparks = sum(
        1 for run in bundle.get("overload", []) for rule in SPARK_RULES
        if run["snapshot"]["rules"].get(rule))
    if page.count("<polyline") < expected_sparks:
        problems.append(
            f"expected >= {expected_sparks} sparklines, found "
            f"{page.count('<polyline')}")
    for run in bundle.get("overload", []):
        for span in run["alert_spans"]:
            if span["alert"] not in page:
                problems.append(f"alert {span['alert']} not rendered")
    critpath = bundle.get("critpath")
    if critpath:
        for point in critpath["points"]:
            for row in point["table"]:
                if f">{row['stage']}<" not in page:
                    problems.append(f"stage {row['stage']} not rendered")
                    break
    if "--surface" not in page or "--series-1" not in page:
        problems.append("missing theme tokens")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render the SLO dashboard from monitored runs.")
    parser.add_argument("--bundle", metavar="JSON", default=None,
                        help="render an existing bundle instead of "
                             "running the simulations")
    parser.add_argument("--out", metavar="HTML", default=None,
                        help="write the HTML page here")
    parser.add_argument("--save-bundle", metavar="JSON", default=None,
                        help="also write the bundle as JSON")
    parser.add_argument("--text", action="store_true",
                        help="print the terminal summary")
    parser.add_argument("--check", action="store_true",
                        help="run the structural self-check on the page")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the monitored runs")
    args = parser.parse_args(argv)

    if args.bundle:
        bundle = json.loads(Path(args.bundle).read_text())
    else:
        from repro.experiments import build_dashboard_bundle
        bundle = build_dashboard_bundle(jobs=args.jobs)

    if args.save_bundle:
        Path(args.save_bundle).write_text(json.dumps(bundle, indent=1))
    page = render_html(bundle)
    if args.out:
        Path(args.out).write_text(page)
        print(f"wrote {args.out} ({len(page):,} bytes)")
    if args.text or not args.out:
        print(render_text(bundle))
    if args.check:
        problems = check_html(page, bundle)
        for problem in problems:
            print(f"CHECK FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
        print("dashboard structural check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
