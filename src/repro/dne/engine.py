"""The DPU Network Engine (DNE) and its CPU-hosted variant (CNE).

The DNE (§3.2) is a node-wide reverse proxy that owns the node's RDMA
resources on behalf of untrusted tenant functions:

* A **core thread** (control plane) imports the cross-processor memory
  maps, registers tenant pools with the RNIC, pre-establishes RC
  connections, replenishes shared receive queues in proportion to
  consumed completions (red arrows of Fig. 7), and demotes idle QPs to
  shadow state.
* One **worker thread** executes a non-blocking run-to-completion loop
  pinned to a (wimpy) DPU core.  Each iteration fully processes one
  event — either a TX descriptor from a local function (routing lookup,
  least-congested RC connection, WR post) or an RX completion (RBR
  lookup, descriptor hand-off to the destination function's Comch
  endpoint).  Tenant TX order is arbitrated by a pluggable scheduler
  (DWRR for Palladium, FCFS for the baseline of Fig. 15).

The engine runs in **off-path** mode by default: payloads move directly
between host memory and the RNIC ("RNIC DMA at line rate"), the engine
only touching 16-byte descriptors.  In **on-path** mode (the Fig. 11
baseline) every payload is staged through DPU-local memory via the slow
SoC DMA engine, which the run-to-completion loop must wait on — the
source of the on-path collapse under concurrency.

:class:`CpuNetworkEngine` (Palladium-CNE, §4.3) is the identical engine
pinned to a *host* core, speaking SK_MSG to co-located functions
instead of Comch; it pays interrupt-driven IPC costs that grow with
concurrency.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..config import CostModel
from ..hw import Node, PinnedCore
from ..memory import Buffer, BufferDescriptor, MemoryPool, PoolExhausted, RemoteMap
from ..rdma import (
    Completion,
    ConnectionManager,
    Opcode,
    RdmaFabric,
    WorkRequest,
)
from ..qos import CreditController, QueueBounds
from ..sim import Environment, Event, RateMeter

from .comch import DescriptorChannel
from .routing import InterNodeRoutes, RouteError
from .scheduler import DwrrScheduler, FcfsScheduler, TenantScheduler

__all__ = ["NetworkEngine", "DpuNetworkEngine", "CpuNetworkEngine", "EngineStats"]


class EngineStats:
    """Counters and meters the experiments read off an engine."""

    def __init__(self, bucket_us: float = 1_000_000.0):
        self.tx_messages = 0
        self.rx_messages = 0
        self.recycled = 0
        #: messages dropped (no route / destination vanished)
        self.dropped = 0
        #: SEND completions that came back failed (flushed QPs)
        self.tx_errors = 0
        self.tx_bytes = 0
        self.rx_bytes = 0
        #: per-tenant transmit completions (Fig. 15 time series)
        self.tenant_tx: Dict[str, RateMeter] = {}
        self.bucket_us = bucket_us

    def tenant_meter(self, tenant: str) -> RateMeter:
        if tenant not in self.tenant_tx:
            self.tenant_tx[tenant] = RateMeter(tenant, bucket=self.bucket_us)
        return self.tenant_tx[tenant]


class _TenantState:
    """Engine-side per-tenant bookkeeping."""

    def __init__(self, pool: MemoryPool, remote_map: Optional[RemoteMap], weight: float,
                 recv_buffers: int):
        self.pool = pool
        self.remote_map = remote_map
        self.weight = weight
        self.recv_buffers = recv_buffers


class NetworkEngine:
    """Run-to-completion network engine (base for DNE and CNE)."""

    MODE_OFF_PATH = "off-path"
    MODE_ON_PATH = "on-path"

    def __init__(
        self,
        env: Environment,
        node: Node,
        fabric: RdmaFabric,
        cost: CostModel,
        channel: DescriptorChannel,
        scheduler: Optional[TenantScheduler] = None,
        mode: str = MODE_OFF_PATH,
        name: str = "",
        replenish_period_us: float = 50.0,
        stats_bucket_us: float = 1_000_000.0,
    ):
        if mode not in (self.MODE_OFF_PATH, self.MODE_ON_PATH):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.env = env
        self.node = node
        self.fabric = fabric
        self.cost = cost
        self.channel = channel
        self.scheduler = scheduler if scheduler is not None else FcfsScheduler()
        self.mode = mode
        self.name = name or f"engine:{node.name}"
        self.agent = self.name
        self.replenish_period_us = replenish_period_us

        self.rnic = fabric.install_rnic(node.name)
        self.conn_mgr = ConnectionManager(env, fabric, node.name, cost)
        self.routes = InterNodeRoutes(node.name)
        self.stats = EngineStats(bucket_us=stats_bucket_us)

        self._tenants: Dict[str, _TenantState] = {}
        #: receive buffers owed to each tenant's shared RQ when the
        #: pool was empty at replenish time; recycled buffers repay this
        #: debt *before* returning to the pool, so RQ credits can never
        #: be starved by waiting senders (credit-deadlock avoidance).
        self._recv_deficit: Dict[str, int] = {}
        #: sibling engines by node name (used by baseline engines whose
        #: transport is not RDMA two-sided; populated by the platform)
        self.peers: Dict[str, "NetworkEngine"] = {}
        #: worker-loop event queue; a plain deque — only the worker
        #: loop consumes it and it never blocks on a get, so the Store
        #: machinery (getter queues, events) would be pure overhead
        self._rx_inbox: Deque[tuple] = deque()
        self._wakeup: Optional[Event] = None
        self._running = False
        #: False while the engine is down (crash); the iolib falls back
        #: to the kernel-TCP path when a runtime has one configured.
        self.available = True
        #: generation counter: loops from before a crash observe a
        #: stale epoch and exit instead of double-running after restart.
        self._epoch = 0
        self._warm_peers: List[Tuple[str, str]] = []
        self.crashes = 0
        self.restarts = 0
        self.core: Optional[PinnedCore] = None
        #: host-core-equivalent us of engine work executed (CPU
        #: accounting for Fig. 16 (4)-(6))
        self.busy_us = 0.0
        #: credit-based backpressure window (None until ``enable_qos``
        #: is called with credits — the default data path never pays
        #: for flow control it did not ask for)
        self.qos_credits: Optional[CreditController] = None
        #: message sources whose engine-RX processing repays a credit
        #: the *sender* acquired (e.g. the ingress gateway's agent id)
        self._qos_credit_sources: frozenset = frozenset()

    # -- subclass hooks -----------------------------------------------------
    def _allocate_core(self) -> PinnedCore:
        raise NotImplementedError

    def _control_pool(self):
        """Core pool the (lightweight) core thread is scheduled on."""
        raise NotImplementedError

    def _ingest_cost_us(self) -> float:
        """Host-core-equivalent cost to ingest one TX descriptor."""
        return self.channel.ingest_cost_us()

    def _egress_cost_us(self) -> float:
        """Host-core-equivalent cost to push one RX descriptor out."""
        return self.channel.ingest_cost_us()

    # -- cycle attribution (telemetry only, see repro.telemetry.profiler) ----
    def _tx_cycle_charges(self) -> Tuple[Tuple[str, float], ...]:
        """(category, host_us) attribution of one TX iteration's work.

        Used only when telemetry is installed; the engine's actual
        ``_run`` charge is computed independently so attribution can
        never perturb timing.
        """
        return (
            ("descriptor", self._ingest_cost_us() + self.cost.dne_tx_proc_us),
            ("scheduling", self.cost.dwrr_decision_us),
        )

    def _rx_cycle_charges(self) -> Tuple[Tuple[str, float], ...]:
        """(category, host_us) attribution of one RX iteration's work."""
        return (
            ("descriptor", self.cost.dne_rx_proc_us + self._egress_cost_us()),
        )

    def _charge_cycles(self, tel, charges) -> None:
        factor = self.core.factor if self.core is not None else 1.0
        for category, host_us in charges:
            tel.cycles.charge(category, host_us * factor, where=self.name)

    # -- configuration --------------------------------------------------------
    def setup_tenant(
        self,
        tenant: str,
        pool: MemoryPool,
        remote_map: Optional[RemoteMap] = None,
        weight: float = 1.0,
        recv_buffers: int = 64,
    ) -> None:
        """Register a tenant: its pool, RNIC MR, weight, RQ depth."""
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} already configured on {self.name}")
        self.rnic.register_pool(pool, remote_map)
        self._tenants[tenant] = _TenantState(pool, remote_map, weight, recv_buffers)
        if isinstance(self.scheduler, DwrrScheduler):
            self.scheduler.set_weight(tenant, weight)

    def add_route(self, fn_id: str, node: str) -> None:
        """Install an inter-node route (driven by the coordinator)."""
        self.routes.set_route(fn_id, node)

    # -- QoS / overload protection (repro.qos) --------------------------------
    def qos_backlog(self) -> int:
        """Live engine backlog: queued RX events + scheduled TX items.

        The admission gate's delay estimator and the credit windows
        both read this; it is exactly the backlog the CNE's interrupt
        penalty already models.
        """
        return len(self._rx_inbox) + self.scheduler.pending()

    def enable_qos(
        self,
        bounds: Optional[QueueBounds] = None,
        credits: bool = False,
        credit_base: int = 64,
        credit_min: int = 4,
        credit_low_water: Optional[int] = None,
        credit_high_water: Optional[int] = None,
        credit_sources: Tuple[str, ...] = (),
    ) -> None:
        """Opt this engine into overload protection.

        ``bounds`` caps the tenant scheduler's queues (shed messages
        are retired/recycled/nacked exactly like a no-route drop).
        With ``credits`` the engine grants per-tenant credit windows to
        its senders, shrinking them as that tenant's DWRR backlog grows
        (hop-by-hop backpressure).  ``credit_sources`` lists message
        sources (agent ids) whose credits are repaid when the *RX* side
        of this engine processes their message — e.g. the ingress
        gateway, which acquires against the destination engine before
        posting the RDMA send.
        """
        if bounds is not None:
            self.scheduler.configure_bounds(
                bounds, on_drop=self._on_scheduler_drop,
                clock=lambda: self.env.now,
            )
        if credits:
            self.qos_credits = CreditController(
                self.env,
                base_credits=credit_base,
                min_credits=credit_min,
                low_water=credit_low_water,
                high_water=credit_high_water,
                backlog_fn=self.scheduler.backlog,
            )
        self._qos_credit_sources = frozenset(credit_sources)

    def _on_scheduler_drop(self, tenant: str, item, nbytes: int,
                           reason: str) -> None:
        """A bounded queue shed one of our TX descriptors: clean up.

        The descriptor was enqueued by the channel poller, so the
        buffer and header are engine-owned here.  Mirror the no-route
        drop path: count it, nack any reliability-tracked sender,
        retire the header exactly once, recycle the buffer — and repay
        the sender's credit, since this message will never reach
        ``_handle_tx``.
        """
        _fn_id, descriptor = item
        message = descriptor.message
        self.stats.dropped += 1
        message.settle(False)
        message.retire(self.agent)
        self._recycle(descriptor.buffer, tenant)
        if self.qos_credits is not None:
            self.qos_credits.release(tenant)
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "engine_dropped_total", "Messages dropped by an engine.",
                labels=("engine", "stage")).labels(self.name, reason).inc()
            tel.metrics.counter(
                "qos_sched_dropped_total",
                "Messages shed by bounded tenant queues.",
                labels=("engine", "tenant", "policy")).labels(
                    self.name, tenant, reason).inc()

    # -- lifecycle ----------------------------------------------------------------
    def start(self, warm_peers: Optional[List[Tuple[str, str]]] = None) -> None:
        """Bring the engine up: pin the worker core, start all threads.

        ``warm_peers`` is a list of ``(remote_node, tenant)`` pairs
        whose RC connection pools are pre-established by the core
        thread before traffic flows (§3.3).
        """
        if self._running:
            raise RuntimeError(f"{self.name} already started")
        self._warm_peers = list(warm_peers or [])
        self.core = self._allocate_core()
        self._spawn()

    def _spawn(self) -> None:
        """Launch the engine's four threads for the current epoch."""
        self._running = True
        epoch = self._epoch
        self.env.process(self._core_thread(epoch), name=f"{self.name}-core")
        self.env.process(self._cq_poller(epoch), name=f"{self.name}-cq")
        self.env.process(self._channel_poller(epoch), name=f"{self.name}-chan")
        self.env.process(self._worker_loop(epoch), name=f"{self.name}-loop")

    def stop(self) -> None:
        self._running = False
        self._epoch += 1
        self._notify()

    def crash(self) -> None:
        """Fault injection: the engine process dies abruptly.

        All engine-held RDMA state (the pooled RC connections) dies
        with it — both QP ends flush to the ERROR state, so peers
        observe failed CQEs.  In-queue descriptors stay queued and are
        processed after :meth:`restart` (the channel outlives the
        engine process, like a unix socket outlives a daemon).
        """
        if not self._running:
            return
        self._running = False
        self.available = False
        self._epoch += 1
        self.crashes += 1
        self._notify()
        self.conn_mgr.fail_all(cause=f"{self.name} crashed")

    def restart(self, warm_peers: Optional[List[Tuple[str, str]]] = None) -> None:
        """Bring a crashed (or stopped) engine back up.

        The core thread re-runs connection warm-up, replacing the QPs
        torn down by the crash (errored QPs were evicted from the
        pools).
        """
        if self._running:
            raise RuntimeError(f"{self.name} already running")
        if warm_peers is not None:
            self._warm_peers = list(warm_peers)
        self.available = True
        self.restarts += 1
        self._spawn()

    def _run(self, host_us: float):
        """Generator: engine work on its core, with busy accounting."""
        self.busy_us += host_us * self.core.factor
        yield from self.core.run(host_us)

    def engine_cpu_pct(self, since: float = 0.0,
                       baseline_busy_us: float = 0.0) -> float:
        """Engine core usage, % of one core.

        Pinned (busy-polling) engines occupy their core fully — the
        100 % the paper reports for the DNE and FUYAO; event-driven
        engines report actual busy time over the window (pass the
        ``busy_us`` snapshot taken at ``since``).
        """
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        if isinstance(self.core, PinnedCore):
            return 100.0
        return 100.0 * (self.busy_us - baseline_busy_us) / elapsed

    # -- wakeup plumbing -------------------------------------------------------------
    def _notify(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    # -- background pollers ------------------------------------------------------------
    def _cq_poller(self, epoch: int):
        """Moves CQEs into the worker loop's event queue.

        Batched: one kernel wakeup drains every ready completion on the
        CQ (``poll_batch``) instead of paying a generator round-trip
        per CQE.  The per-completion handling — inbox append + worker
        notify — is unchanged, so the event sequence is identical to
        the historical one-``get``-per-CQE loop.
        """
        inbox = self._rx_inbox
        cq = self.rnic.cq
        while self._running and self._epoch == epoch:
            completions = yield cq.poll_batch()
            if self._epoch != epoch:
                # Stale poller from before a crash: requeue for the
                # restarted engine's poller and exit.
                for completion in completions:
                    cq.put_nowait(completion)
                return
            for completion in completions:
                inbox.append(("cqe", completion))
                self._notify()

    def _channel_poller(self, epoch: int):
        """Moves function TX descriptors into the tenant scheduler."""
        while self._running and self._epoch == epoch:
            fn_id, descriptor = yield self.channel.server_inbox.get()
            if self._epoch != epoch:
                self.channel.server_inbox.put_nowait((fn_id, descriptor))
                return
            tenant = descriptor.message.tenant or "default"
            self.scheduler.enqueue(
                tenant, (fn_id, descriptor), nbytes=max(1, descriptor.length)
            )
            self._notify()

    def _core_thread(self, epoch: int):
        """Control plane: warm connections, replenish RQs, demote QPs."""
        # Receive buffers first: arrivals must never find an empty RQ.
        for tenant, state in self._tenants.items():
            self._post_recv_buffers(tenant, state.recv_buffers)
        # RC connection warm-up (off the critical path, in parallel).
        for remote_node, tenant in self._warm_peers:
            yield from self.conn_mgr.warm_up(remote_node, tenant)
        while self._running and self._epoch == epoch:
            yield self.env.timeout(self.replenish_period_us)
            if self._epoch != epoch:
                return
            for tenant, state in self._tenants.items():
                srq = self.rnic.srq(tenant)
                consumed = srq.consumed_since_replenish
                if consumed:
                    srq.consumed_since_replenish = 0
                    self._post_recv_buffers(tenant, consumed)
            self.conn_mgr.deactivate_idle()
            # Shadow-pool pre-warming (off the critical path): inert
            # under the default "none" policy — the guard keeps the
            # event sequence identical to the pre-policy engine.
            if self.conn_mgr.prewarm.active:
                yield from self.conn_mgr.maintain_pools()

    def _post_recv_buffers(self, tenant: str, count: int) -> None:
        state = self._tenants[tenant]
        posted = 0
        for _ in range(count):
            try:
                buf = state.pool.get(self.agent)
            except PoolExhausted:
                break
            self.rnic.post_recv(tenant, buf, self.agent)
            posted += 1
        if posted < count:
            # The pool is drained by in-flight traffic: remember the
            # shortfall and repay it straight from recycled buffers.
            self._recv_deficit[tenant] = (
                self._recv_deficit.get(tenant, 0) + count - posted
            )

    def _recycle(self, buffer, tenant: Optional[str]) -> None:
        """Return a buffer: owed receive credits first, then the pool."""
        if tenant is not None and self._recv_deficit.get(tenant, 0) > 0 \
                and buffer.pool is self._tenants[tenant].pool:
            self._recv_deficit[tenant] -= 1
            self.rnic.post_recv(tenant, buffer, buffer.owner)
        elif buffer.pool is not None:
            buffer.pool.put(buffer, buffer.owner)

    # -- the run-to-completion worker loop ------------------------------------------------
    def _worker_loop(self, epoch: int):
        """One event fully processed per iteration; RX before TX."""
        inbox = self._rx_inbox
        while self._running and self._epoch == epoch:
            if inbox:
                event = inbox.popleft()
                yield from self._handle_event(event)
                continue
            picked = self.scheduler.dequeue()
            if picked is not None:
                tenant, (fn_id, descriptor) = picked
                yield from self._handle_tx(tenant, fn_id, descriptor)
                continue
            wakeup = self.env.event()
            self._wakeup = wakeup
            yield wakeup
            if self._wakeup is wakeup:  # a stale loop must not clobber
                self._wakeup = None     # the restarted loop's event


    # -- TX stage (Fig. 7) --------------------------------------------------------
    def _handle_tx(self, tenant: str, src_fn: str, descriptor: BufferDescriptor):
        cost = self.cost
        if self.qos_credits is not None:
            # The descriptor left the scheduler: the local sender's
            # credit is repaid the moment the engine takes over.
            self.qos_credits.release(tenant)
        buffer = descriptor.buffer
        buffer.check_owner(self.agent)
        message = descriptor.message
        if message.owner is not None:
            # Driver-built messages enter unowned and are adopted at
            # their first transfer; protocol traffic must be ours.
            message.check_owner(self.agent)
        dst_fn = message.dst
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start_span(
                "engine.tx", parent=message.trace,
                category="engine", node=self.node.name, actor=self.name,
                tenant=tenant, src=src_fn, dst=dst_fn,
                bytes=descriptor.length)
            message.trace = span.context
            self._charge_cycles(tel, self._tx_cycle_charges())
        # Ingest + routing + WR build, all on the engine's core.
        yield from self._run(
            self._ingest_cost_us() + cost.dne_tx_proc_us + cost.dwrr_decision_us
        )
        try:
            dst_node = self.routes.node_for(dst_fn)
        except RouteError:
            # Scale-down race / failover: the destination was withdrawn
            # after the function posted.  Drop, recycle, nack any
            # reliability-tracked sender — never crash the loop.
            self.stats.dropped += 1
            message.settle(False)
            message.retire(self.agent)
            self._recycle(buffer, tenant)
            if tel is not None:
                tel.metrics.counter(
                    "engine_dropped_total", "Messages dropped by an engine.",
                    labels=("engine", "stage")).labels(self.name, "tx").inc()
                span.event("drop", self.env.now, reason="no-route")
                tel.tracer.end_span(span, status="drop")
            return
        qp = yield from self.conn_mgr.get_connection(dst_node, tenant)
        wr = WorkRequest(
            opcode=Opcode.SEND,
            buffer=buffer,
            length=descriptor.length,
            message=message,
        )
        # Header handoff into the NIC domain; it rides the WR from here.
        message.transfer(self.agent, f"rnic:{self.node.name}")
        if self.mode == self.MODE_ON_PATH:
            # Stage the payload host -> DPU-local memory first.  The
            # transfer queues on the (weak) SoC DMA engine; the engine
            # loop moves on, but this message cannot hit the wire until
            # its copy lands — the Fig. 11 on-path penalty.
            def _staged_send():
                yield from self.node.soc_dma.transfer(wr.length)
                self.rnic.post_send(qp, wr)
            self.env.process(_staged_send(), name=f"{self.name}-onpath-tx")
        else:
            self.rnic.post_send(qp, wr)
        self.stats.tx_messages += 1
        self.stats.tx_bytes += descriptor.length
        self.stats.tenant_meter(tenant).record(self.env.now)
        if tel is not None:
            tel.metrics.counter(
                "engine_tx_total", "TX descriptors processed by an engine.",
                labels=("engine", "tenant")).labels(self.name, tenant).inc()
            tel.tracer.end_span(span)

    # -- RX stage (Fig. 7) -----------------------------------------------------------
    def _handle_event(self, event):
        """Dispatch one RX-side event; subclasses add event kinds."""
        kind, payload = event
        if kind == "cqe":
            yield from self._handle_cqe(payload)
        else:
            raise ValueError(f"{self.name}: unknown engine event kind {kind!r}")

    def inject_event(self, kind: str, payload) -> None:
        """Queue an event for the worker loop (used by peer engines)."""
        self._rx_inbox.append((kind, payload))
        self._notify()

    def _handle_cqe(self, completion: Completion):
        cost = self.cost
        if completion.is_recv:
            yield from self._handle_recv(completion)
        elif completion.opcode == Opcode.SEND:
            # Send completed: tiny poll cost, recycle the source buffer.
            tel = self.env.telemetry
            if tel is not None:
                self._charge_cycles(tel, (("descriptor", cost.mempool_op_us),))
            yield from self._run(cost.mempool_op_us)
            if not completion.ok:
                self.stats.tx_errors += 1
                if tel is not None:
                    tel.metrics.counter(
                        "engine_tx_errors_total",
                        "SEND completions that came back failed.",
                        labels=("engine",)).labels(self.name).inc()
            # Reliability hook: senders running with a retry budget ride
            # an ack event on the message; settle it with the completion
            # status (False for flushed CQEs).
            message = completion.message
            if message is not None:
                message.settle(completion.ok)
                if completion.flushed:
                    # A flushed SEND never left this NIC: reclaim the
                    # header so it is retired exactly once.
                    message.transfer(f"rnic:{self.node.name}", self.agent)
                    message.retire(self.agent)
            buffer = completion.buffer
            if buffer is not None:
                self._recycle(buffer, completion.tenant)
                self.stats.recycled += 1
        # other opcodes (one-sided) are not used by the Palladium engine

    def _handle_recv(self, completion: Completion):
        cost = self.cost
        message = completion.message
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start_span(
                "engine.rx",
                parent=message.trace if message is not None else None,
                category="engine", node=self.node.name, actor=self.name,
                tenant=completion.tenant or "", bytes=completion.length)
            self._charge_cycles(tel, self._rx_cycle_charges())
        yield from self._run(cost.dne_rx_proc_us + self._egress_cost_us())
        if (self.qos_credits is not None and message is not None
                and message.src in self._qos_credit_sources):
            # A credit-holding sender (the ingress) posted this toward
            # us: its credit is repaid now that the RX event has been
            # consumed, whatever happens to the message next.
            self.qos_credits.release(message.tenant or "default")
        buffer = completion.buffer
        if not completion.ok:
            # Length error: reclaim the buffer (and header) and drop.
            self.stats.dropped += 1
            if message is not None:
                message.transfer(f"rnic:{self.node.name}", self.agent)
                message.retire(self.agent)
            self._recycle(buffer, completion.tenant)
            if tel is not None:
                tel.tracer.end_span(span, status="drop")
            return
        dst_fn = message.dst or None
        # RBR gave us the buffer; pass ownership along the token chain:
        # RNIC -> engine -> destination function.  The header moves with
        # its buffer — one object rides the request, never copied.
        buffer.transfer(f"rnic:{self.node.name}", self.agent)
        message.transfer(f"rnic:{self.node.name}", self.agent)
        descriptor = BufferDescriptor(
            buffer=buffer, length=completion.length, message=message
        )
        self.stats.rx_messages += 1
        self.stats.rx_bytes += completion.length
        if tel is not None:
            message.trace = span.context
            tel.metrics.counter(
                "engine_rx_total", "RX completions delivered by an engine.",
                labels=("engine", "tenant")).labels(
                    self.name, completion.tenant or "").inc()
        if dst_fn is None or dst_fn not in self.channel.endpoints:
            # Destination vanished (scale-down race): recycle and drop.
            self.stats.dropped += 1
            message.retire(self.agent)
            self._recycle(buffer, completion.tenant)
            if tel is not None:
                tel.metrics.counter(
                    "engine_dropped_total", "Messages dropped by an engine.",
                    labels=("engine", "stage")).labels(self.name, "rx").inc()
                tel.tracer.end_span(span, status="drop")
            return
        buffer.transfer(self.agent, f"fn:{dst_fn}")
        message.transfer(self.agent, f"fn:{dst_fn}")
        if self.mode == self.MODE_ON_PATH:
            # Data landed in DPU-local memory: it must cross the SoC DMA
            # to the host pool before the function can see it.
            def _staged_deliver():
                yield from self.node.soc_dma.transfer(descriptor.length)
                self.channel.dne_send(dst_fn, descriptor)
            self.env.process(_staged_deliver(), name=f"{self.name}-onpath-rx")
        else:
            self.channel.dne_send(dst_fn, descriptor)
        if tel is not None:
            tel.tracer.end_span(span)


class DpuNetworkEngine(NetworkEngine):
    """Palladium's DNE: the engine pinned to a wimpy DPU core."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self.node.dpu is None:
            raise ValueError(f"node {self.node.name} has no DPU for a DNE")

    def _allocate_core(self) -> PinnedCore:
        return self.node.dpu.allocate_pinned(f"{self.name}-worker")

    def _control_pool(self):
        return self.node.dpu


class CpuNetworkEngine(NetworkEngine):
    """Palladium-CNE: same engine on a host core, SK_MSG IPC (§4.3).

    The interrupt-driven SK_MSG path adds per-message cost that grows
    with backlog — the receive-livelock effect that lets the DNE pull
    ahead beyond ~20 clients despite its slower core.
    """

    def _allocate_core(self) -> PinnedCore:
        return self.node.cpu.allocate_pinned(f"{self.name}-worker")

    def _control_pool(self):
        return self.node.cpu

    def _interrupt_penalty_us(self) -> float:
        backlog = self.qos_backlog()
        return min(
            2.0, self.cost.cne_concurrency_penalty_us * backlog
        )

    def _ingest_cost_us(self) -> float:
        return (
            self.cost.sk_msg_interrupt_us
            + self.channel.ingest_cost_us()
            + self._interrupt_penalty_us()
        )

    def _egress_cost_us(self) -> float:
        return (
            self.cost.sk_msg_us
            + self._interrupt_penalty_us()
        )

    # CNE attribution: the SK_MSG interrupt machinery and the livelock
    # penalty are protocol overhead, not descriptor work.
    def _tx_cycle_charges(self) -> Tuple[Tuple[str, float], ...]:
        return (
            ("protocol",
             self.cost.sk_msg_interrupt_us + self._interrupt_penalty_us()),
            ("descriptor",
             self.channel.ingest_cost_us() + self.cost.dne_tx_proc_us),
            ("scheduling", self.cost.dwrr_decision_us),
        )

    def _rx_cycle_charges(self) -> Tuple[Tuple[str, float], ...]:
        return (
            ("descriptor", self.cost.dne_rx_proc_us),
            ("protocol", self.cost.sk_msg_us + self._interrupt_penalty_us()),
        )
