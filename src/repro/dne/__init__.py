"""The DPU Network Engine: Comch channels, routing, scheduling, the engine."""

from .comch import (
    ComchE,
    ComchEndpoint,
    ComchP,
    DescriptorChannel,
    SkMsgChannel,
    TcpChannel,
)
from .engine import CpuNetworkEngine, DpuNetworkEngine, EngineStats, NetworkEngine
from .routing import InterNodeRoutes, IntraNodeRoutes, RouteError
from .scheduler import DwrrScheduler, FcfsScheduler, TenantScheduler

__all__ = [
    "ComchE",
    "ComchEndpoint",
    "ComchP",
    "CpuNetworkEngine",
    "DescriptorChannel",
    "DpuNetworkEngine",
    "DwrrScheduler",
    "EngineStats",
    "FcfsScheduler",
    "InterNodeRoutes",
    "IntraNodeRoutes",
    "NetworkEngine",
    "RouteError",
    "SkMsgChannel",
    "TcpChannel",
    "TenantScheduler",
]
