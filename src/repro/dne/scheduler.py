"""Tenant traffic schedulers for the network engine (§3.3, Fig. 15).

The DNE arbitrates the RNIC among co-located tenants.  Palladium uses a
Deficit Weighted Round Robin (DWRR) scheduler (Shreedhar & Varghese)
with per-tenant weights; the evaluation's baseline is plain FCFS, which
lets bursty tenants starve steady ones.

Both implement the same interface: ``enqueue(tenant, item, nbytes)``
and ``dequeue() -> (tenant, item) | None``.  The engine's
run-to-completion loop calls ``dequeue`` once per TX opportunity.

Queues are unbounded by default.  The QoS subsystem can install
:class:`~repro.qos.QueueBounds` via ``configure_bounds`` to give every
tenant queue a capacity and a shed policy (tail-drop, head-drop-
stalest, or CoDel); shed items are reported through the ``on_drop``
callback so the engine can retire headers, recycle buffers, and repay
credits — a bounded queue never silently loses an owned message.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

from ..qos.bounded import BoundedQueueMixin, DROP_CODEL, DROP_HEAD, DROP_TAIL

__all__ = ["FcfsScheduler", "DwrrScheduler", "TenantScheduler"]


class TenantScheduler(BoundedQueueMixin):
    """Interface: per-tenant TX queueing discipline inside the engine.

    All implementations keep cheap observability counters —
    ``enqueued``, ``dequeued``, ``dropped``, ``peak_backlog``, and the
    per-tenant byte ledgers — that the platform exports into the
    metrics registry when telemetry is enabled.
    """

    #: lifetime items accepted / handed to the engine, and the deepest
    #: instantaneous backlog seen (plain ints; no telemetry required)
    enqueued: int = 0
    dequeued: int = 0
    peak_backlog: int = 0

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        raise NotImplementedError

    def dequeue(self) -> Optional[Tuple[str, object]]:
        raise NotImplementedError

    def pending(self) -> int:
        raise NotImplementedError

    def backlog(self, tenant: str) -> int:
        raise NotImplementedError

    def weight(self, tenant: str) -> float:
        """Share weight (1.0 unless the discipline is weighted)."""
        return 1.0

    def _init_counters(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.peak_backlog = 0
        #: per-tenant byte ledgers: offered vs actually transmitted —
        #: the measured ground truth for Fig. 15-style share checks
        self.tenant_bytes_enqueued: Dict[str, int] = {}
        self.tenant_bytes_dequeued: Dict[str, int] = {}
        self.tenant_dropped: Dict[str, int] = {}

    def _note_enqueue(self, tenant: str, nbytes: int) -> None:
        self.enqueued += 1
        self.tenant_bytes_enqueued[tenant] = (
            self.tenant_bytes_enqueued.get(tenant, 0) + nbytes
        )
        depth = self.pending()
        if depth > self.peak_backlog:
            self.peak_backlog = depth

    def _note_dequeue(self, tenant: str, nbytes: int) -> None:
        self.dequeued += 1
        self.tenant_bytes_dequeued[tenant] = (
            self.tenant_bytes_dequeued.get(tenant, 0) + nbytes
        )

    # -- measured fairness ---------------------------------------------------
    def fairness_shares(self) -> Dict[str, float]:
        """Weight-normalised bytes served per tenant that offered load."""
        return {
            tenant: self.tenant_bytes_dequeued.get(tenant, 0) / self.weight(tenant)
            for tenant in self.tenant_bytes_enqueued
        }

    def fairness_ratio(self) -> float:
        """min/max of normalised shares: 1.0 is perfectly weighted-fair,
        0.0 means some tenant that offered load was fully starved."""
        shares = list(self.fairness_shares().values())
        if len(shares) < 2:
            return 1.0
        top = max(shares)
        if top <= 0:
            return 1.0
        return min(shares) / top


class FcfsScheduler(TenantScheduler):
    """First-come-first-served: one global FIFO, no tenant awareness.

    This is the "FCFS DNE" of Fig. 15 (1): arrival order wins, so a
    bursty tenant that fills the queue starves everyone else.  Under
    bounds the capacity applies per tenant (each tenant may hold at
    most ``capacity`` slots of the shared FIFO).
    """

    def __init__(self):
        self._queue: Deque[Tuple[str, object, int, float]] = deque()
        self._per_tenant: Dict[str, int] = {}
        self._init_counters()

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        nbytes = max(1, nbytes)
        bounds = self._bounds
        if bounds is not None and self._per_tenant.get(tenant, 0) >= bounds.capacity:
            if bounds.policy == DROP_HEAD:
                # Evict the tenant's stalest entry, accept the new one.
                for index, entry in enumerate(self._queue):
                    if entry[0] == tenant:
                        del self._queue[index]
                        self._per_tenant[tenant] -= 1
                        self._shed(tenant, entry[1], entry[2], DROP_HEAD)
                        break
            else:
                # tail-drop (also CoDel's capacity backstop).
                self._shed(tenant, item, nbytes, DROP_TAIL)
                return
        self._queue.append((tenant, item, nbytes, self._now()))
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        self._note_enqueue(tenant, nbytes)

    def dequeue(self) -> Optional[Tuple[str, object]]:
        codel = self._bounds is not None and self._bounds.policy == DROP_CODEL
        while self._queue:
            tenant, item, nbytes, ts = self._queue[0]
            if codel:
                now = self._now()
                if self._codel_state(tenant).should_drop(now - ts, now):
                    self._queue.popleft()
                    self._per_tenant[tenant] -= 1
                    self._shed(tenant, item, nbytes, DROP_CODEL)
                    continue
            self._queue.popleft()
            self._per_tenant[tenant] -= 1
            self._note_dequeue(tenant, nbytes)
            return tenant, item
        return None

    def pending(self) -> int:
        return len(self._queue)

    def backlog(self, tenant: str) -> int:
        return self._per_tenant.get(tenant, 0)


class DwrrScheduler(TenantScheduler):
    """Deficit Weighted Round Robin over per-tenant queues.

    Each backlogged tenant accumulates ``weight * quantum`` deficit per
    round and may transmit while its deficit covers the head-of-line
    message size, yielding byte-level weighted fairness among
    backlogged tenants — exactly the controlled shares of Fig. 15 (2).

    With bounds configured each per-tenant queue is capped at
    ``capacity``; CoDel drops happen at dequeue time off the head-of-
    line sojourn and consume no deficit, so shedding never distorts the
    weighted shares of the traffic that *is* served.
    """

    def __init__(self, quantum_bytes: int = 1024):
        if quantum_bytes < 1:
            raise ValueError("quantum must be positive")
        self.quantum_bytes = quantum_bytes
        self._weights: Dict[str, float] = {}
        self._queues: "OrderedDict[str, Deque[Tuple[object, int, float]]]" = OrderedDict()
        self._deficit: Dict[str, float] = {}
        self._active: Deque[str] = deque()
        self._pending = 0
        self._init_counters()

    def set_weight(self, tenant: str, weight: float) -> None:
        """Assign a tenant's share weight (must be positive)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._weights[tenant] = weight

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        nbytes = max(1, nbytes)
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        bounds = self._bounds
        if bounds is not None and len(queue) >= bounds.capacity:
            if bounds.policy == DROP_HEAD:
                # Shed the stalest queued message, keep the fresh one.
                old_item, old_bytes, _ts = queue.popleft()
                self._pending -= 1
                self._shed(tenant, old_item, old_bytes, DROP_HEAD)
            else:
                # tail-drop (also CoDel's capacity backstop).
                self._shed(tenant, item, nbytes, DROP_TAIL)
                return
        if not queue:
            # Tenant becomes backlogged: joins the active round list
            # with an empty deficit (standard DWRR).
            if tenant not in self._active:
                self._active.append(tenant)
                self._deficit.setdefault(tenant, 0.0)
        queue.append((item, nbytes, self._now()))
        self._pending += 1
        self._note_enqueue(tenant, nbytes)

    def dequeue(self) -> Optional[Tuple[str, object]]:
        if self._pending == 0:
            return None
        codel = self._bounds is not None and self._bounds.policy == DROP_CODEL
        # Visit active tenants round-robin, topping up deficit on each
        # visit, until someone's head-of-line message fits.  Every full
        # rotation raises each backlogged tenant's deficit by at least
        # one quantum, so this terminates; the cap is purely defensive.
        for _ in range(1_000_000):
            if not self._active:
                return None
            tenant = self._active[0]
            queue = self._queues[tenant]
            if not queue:
                self._active.popleft()
                self._deficit[tenant] = 0.0
                continue
            head_item, head_bytes, head_ts = queue[0]
            if codel:
                now = self._now()
                if self._codel_state(tenant).should_drop(now - head_ts, now):
                    # Sojourn-time shed: no deficit consumed, so CoDel
                    # never distorts the weighted shares.
                    queue.popleft()
                    self._pending -= 1
                    self._shed(tenant, head_item, head_bytes, DROP_CODEL)
                    if not queue:
                        self._active.popleft()
                        self._deficit[tenant] = 0.0
                    if self._pending == 0:
                        return None
                    continue
            if self._deficit[tenant] >= head_bytes:
                queue.popleft()
                self._deficit[tenant] -= head_bytes
                self._pending -= 1
                self._note_dequeue(tenant, head_bytes)
                if not queue:
                    self._active.popleft()
                    self._deficit[tenant] = 0.0
                return tenant, head_item
            # End of this tenant's turn: rotate and top up.
            self._active.rotate(-1)
            self._deficit[tenant] += self.weight(tenant) * self.quantum_bytes
        return None  # pragma: no cover - defensive; unreachable with pending>0

    def pending(self) -> int:
        return self._pending

    def backlog(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0
