"""Tenant traffic schedulers for the network engine (§3.3, Fig. 15).

The DNE arbitrates the RNIC among co-located tenants.  Palladium uses a
Deficit Weighted Round Robin (DWRR) scheduler (Shreedhar & Varghese)
with per-tenant weights; the evaluation's baseline is plain FCFS, which
lets bursty tenants starve steady ones.

Both implement the same interface: ``enqueue(tenant, item, nbytes)``
and ``dequeue() -> (tenant, item) | None``.  The engine's
run-to-completion loop calls ``dequeue`` once per TX opportunity.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["FcfsScheduler", "DwrrScheduler", "TenantScheduler"]


class TenantScheduler:
    """Interface: per-tenant TX queueing discipline inside the engine.

    All implementations keep three cheap observability counters —
    ``enqueued``, ``dequeued``, ``peak_backlog`` — that the platform
    exports into the metrics registry when telemetry is enabled.
    """

    #: lifetime items accepted / handed to the engine, and the deepest
    #: instantaneous backlog seen (plain ints; no telemetry required)
    enqueued: int = 0
    dequeued: int = 0
    peak_backlog: int = 0

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        raise NotImplementedError

    def dequeue(self) -> Optional[Tuple[str, object]]:
        raise NotImplementedError

    def pending(self) -> int:
        raise NotImplementedError

    def backlog(self, tenant: str) -> int:
        raise NotImplementedError

    def _note_enqueue(self) -> None:
        self.enqueued += 1
        depth = self.pending()
        if depth > self.peak_backlog:
            self.peak_backlog = depth


class FcfsScheduler(TenantScheduler):
    """First-come-first-served: one global FIFO, no tenant awareness.

    This is the "FCFS DNE" of Fig. 15 (1): arrival order wins, so a
    bursty tenant that fills the queue starves everyone else.
    """

    def __init__(self):
        self._queue: Deque[Tuple[str, object]] = deque()
        self._per_tenant: Dict[str, int] = {}
        self.enqueued = 0
        self.dequeued = 0
        self.peak_backlog = 0

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        self._queue.append((tenant, item))
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
        self._note_enqueue()

    def dequeue(self) -> Optional[Tuple[str, object]]:
        if not self._queue:
            return None
        tenant, item = self._queue.popleft()
        self._per_tenant[tenant] -= 1
        self.dequeued += 1
        return tenant, item

    def pending(self) -> int:
        return len(self._queue)

    def backlog(self, tenant: str) -> int:
        return self._per_tenant.get(tenant, 0)


class DwrrScheduler(TenantScheduler):
    """Deficit Weighted Round Robin over per-tenant queues.

    Each backlogged tenant accumulates ``weight * quantum`` deficit per
    round and may transmit while its deficit covers the head-of-line
    message size, yielding byte-level weighted fairness among
    backlogged tenants — exactly the controlled shares of Fig. 15 (2).
    """

    def __init__(self, quantum_bytes: int = 1024):
        if quantum_bytes < 1:
            raise ValueError("quantum must be positive")
        self.quantum_bytes = quantum_bytes
        self._weights: Dict[str, float] = {}
        self._queues: "OrderedDict[str, Deque[Tuple[object, int]]]" = OrderedDict()
        self._deficit: Dict[str, float] = {}
        self._active: Deque[str] = deque()
        self._pending = 0
        self.enqueued = 0
        self.dequeued = 0
        self.peak_backlog = 0

    def set_weight(self, tenant: str, weight: float) -> None:
        """Assign a tenant's share weight (must be positive)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._weights[tenant] = weight

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def enqueue(self, tenant: str, item: object, nbytes: int = 1) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = deque()
            self._queues[tenant] = queue
        if not queue:
            # Tenant becomes backlogged: joins the active round list
            # with an empty deficit (standard DWRR).
            if tenant not in self._active:
                self._active.append(tenant)
                self._deficit.setdefault(tenant, 0.0)
        queue.append((item, max(1, nbytes)))
        self._pending += 1
        self._note_enqueue()

    def dequeue(self) -> Optional[Tuple[str, object]]:
        if self._pending == 0:
            return None
        # Visit active tenants round-robin, topping up deficit on each
        # visit, until someone's head-of-line message fits.  Every full
        # rotation raises each backlogged tenant's deficit by at least
        # one quantum, so this terminates; the cap is purely defensive.
        for _ in range(1_000_000):
            if not self._active:
                return None
            tenant = self._active[0]
            queue = self._queues[tenant]
            if not queue:
                self._active.popleft()
                self._deficit[tenant] = 0.0
                continue
            head_item, head_bytes = queue[0]
            if self._deficit[tenant] >= head_bytes:
                queue.popleft()
                self._deficit[tenant] -= head_bytes
                self._pending -= 1
                self.dequeued += 1
                if not queue:
                    self._active.popleft()
                    self._deficit[tenant] = 0.0
                return tenant, head_item
            # End of this tenant's turn: rotate and top up.
            self._active.rotate(-1)
            self._deficit[tenant] += self.weight(tenant) * self.quantum_bytes
        return None  # pragma: no cover - defensive; unreachable with pending>0

    def pending(self) -> int:
        return self._pending

    def backlog(self, tenant: str) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0
