"""Routing state: intra-node and inter-node tables (§3.5.5).

* The **intra-node routing table** lives in the unified memory pool on
  the host and is read-only for functions: it answers "is this
  destination function local, and which socket do I redirect to?".
* The **inter-node routing table** lives on the DPU and maps remote
  function ids to their hosting node, letting the DNE pick the right
  RC connection.

A control-plane coordinator (CNI-like) watches deployment events and
pushes updates to both tables; versioning lets tests assert that stale
routes are replaced, not accumulated.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["IntraNodeRoutes", "InterNodeRoutes", "RouteError"]


class RouteError(LookupError):
    """No route exists for the requested function."""


class IntraNodeRoutes:
    """Host-side: function id -> present-on-this-node marker."""

    def __init__(self, node: str):
        self.node = node
        self._local: Dict[str, str] = {}  # fn id -> socket key
        self.version = 0

    def add_function(self, fn_id: str, socket_key: Optional[str] = None) -> None:
        self._local[fn_id] = socket_key or fn_id
        self.version += 1

    def remove_function(self, fn_id: str) -> None:
        if self._local.pop(fn_id, None) is not None:
            self.version += 1

    def is_local(self, fn_id: str) -> bool:
        return fn_id in self._local

    def socket_for(self, fn_id: str) -> str:
        try:
            return self._local[fn_id]
        except KeyError:
            raise RouteError(f"{fn_id!r} is not local to {self.node}") from None

    @property
    def functions(self) -> List[str]:
        return list(self._local)


class InterNodeRoutes:
    """DPU-side: function id -> hosting node name."""

    def __init__(self, node: str):
        self.node = node
        self._routes: Dict[str, str] = {}
        self.version = 0

    def set_route(self, fn_id: str, node: str) -> None:
        self._routes[fn_id] = node
        self.version += 1

    def remove_route(self, fn_id: str) -> None:
        if self._routes.pop(fn_id, None) is not None:
            self.version += 1

    def node_for(self, fn_id: str) -> str:
        try:
            return self._routes[fn_id]
        except KeyError:
            raise RouteError(f"no inter-node route for {fn_id!r} on {self.node}") from None

    def has_route(self, fn_id: str) -> bool:
        return fn_id in self._routes

    @property
    def routes(self) -> Dict[str, str]:
        return dict(self._routes)
