"""Cross-processor (host CPU <-> DPU) descriptor channels (§3.5.4, Fig. 9).

The DNE runs as a single Comch *server*; each host function is a Comch
*client* exchanging 16-byte buffer descriptors with it.  Three channel
implementations are compared in Fig. 9 and reproduced here:

* :class:`ComchE` — DOCA Comch event-driven send/receive over blocking
  epoll.  Moderate latency, no dedicated cores, scales with function
  density.  **This is what Palladium uses.**
* :class:`ComchP` — DOCA Comch producer/consumer ring with busy
  polling.  Lowest latency, but each function endpoint ties up a DPU
  core for its ring; past the core budget the "busy" polling (which
  DOCA implements with non-blocking ``epoll_wait``) thrashes and the
  channel overloads — the collapse beyond 6 functions in Fig. 9.
* :class:`TcpChannel` — descriptors over kernel TCP between host and
  DPU: the baseline, paying full kernel protocol cost.

All variants share one interface:

* Function side: ``function_send`` (descriptor to the DNE) and an
  endpoint ``inbox`` the function blocks on.
* DNE side: descriptors arrive in ``server_inbox``; ``dne_send``
  pushes a descriptor back to a function; ``ingest_cost_us`` /
  ``egress_cost_us`` are the per-message CPU charges the engine loop
  pays (in host-core units — the engine scales them for its core).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..config import CostModel
from ..hw import CorePool, PinnedCore
from ..memory import BufferDescriptor
from ..sim import Environment, Store

__all__ = [
    "ComchE",
    "ComchEndpoint",
    "ComchP",
    "DescriptorChannel",
    "SkMsgChannel",
    "TcpChannel",
]


class ComchEndpoint:
    """Function-side endpoint: where the DNE's descriptors arrive.

    ``inbox`` may be supplied by the function runtime so Comch and
    SK_MSG deliveries land in the same unified receive queue.
    """

    def __init__(self, env: Environment, fn_id: str, channel: "DescriptorChannel",
                 inbox: Optional[Store] = None):
        self.env = env
        self.fn_id = fn_id
        self.channel = channel
        self.inbox: Store = inbox if inbox is not None else Store(env, name=f"comch:{fn_id}")

    def recv(self):
        """Event yielding the next descriptor from the DNE (epoll wait)."""
        return self.inbox.get()


class DescriptorChannel:
    """Common machinery for the three channel variants."""

    #: subclasses set these (host-core microseconds / one-way latency)
    oneway_us: float = 0.0
    dne_cpu_us: float = 0.0
    fn_cpu_us: float = 0.0
    kind: str = "base"

    def __init__(self, env: Environment, cost: CostModel, name: str = ""):
        self.env = env
        self.cost = cost
        self.name = name or self.kind
        #: descriptors from functions waiting for the DNE loop; items
        #: are ``(fn_id, descriptor)``
        self.server_inbox: Store = Store(env, name=f"{self.name}-server")
        self.endpoints: Dict[str, ComchEndpoint] = {}
        self.to_dne_count = 0
        self.to_fn_count = 0

    # -- connection management ------------------------------------------------
    def attach(self, fn_id: str, inbox: Optional[Store] = None) -> ComchEndpoint:
        """Register a function as a client of the DNE's Comch server."""
        if fn_id not in self.endpoints:
            self.endpoints[fn_id] = ComchEndpoint(self.env, fn_id, self, inbox)
        return self.endpoints[fn_id]

    def detach(self, fn_id: str) -> None:
        """Disconnect a (possibly misbehaving) tenant function (§3.5.4)."""
        self.endpoints.pop(fn_id, None)

    # -- latency model ------------------------------------------------------------
    def _delivery_delay(self) -> float:
        """One-way host<->DPU delivery latency for one descriptor."""
        return self.oneway_us

    def _deliver_later(self, store: Store, item: object, delay: float) -> None:
        self.env.defer(delay, lambda: store.put_nowait(item))

    # -- function side ---------------------------------------------------------------
    def function_send(
        self,
        compute: Union[PinnedCore, CorePool],
        fn_id: str,
        descriptor: BufferDescriptor,
    ):
        """Generator: a host function hands a descriptor to the DNE."""
        if fn_id not in self.endpoints:
            raise KeyError(f"function {fn_id!r} is not attached to {self.name!r}")
        yield from compute.run(self.fn_cpu_us)
        self.post_from_function(fn_id, descriptor)

    def post_from_function(self, fn_id: str, descriptor: BufferDescriptor) -> None:
        """Deliver a descriptor to the DNE without charging CPU here
        (the caller batches the host-side charge)."""
        self._deliver_later(self.server_inbox, (fn_id, descriptor), self._delivery_delay())
        self.to_dne_count += 1

    def function_recv_cost_us(self) -> float:
        """Host-core cost the function pays per received descriptor."""
        return self.fn_cpu_us

    # -- DNE side ---------------------------------------------------------------------
    def ingest_cost_us(self) -> float:
        """Host-core-equivalent cost the DNE loop pays per arriving descriptor."""
        return self.dne_cpu_us

    def dne_send(self, fn_id: str, descriptor: BufferDescriptor) -> None:
        """DNE pushes a descriptor to a function (CPU cost paid by caller)."""
        endpoint = self.endpoints.get(fn_id)
        if endpoint is None:
            raise KeyError(f"function {fn_id!r} is not attached to {self.name!r}")
        self._deliver_later(endpoint.inbox, descriptor, self._delivery_delay())
        self.to_fn_count += 1


class ComchE(DescriptorChannel):
    """Event-driven DOCA Comch (epoll-based) — Palladium's choice."""

    kind = "comch-e"

    def __init__(self, env: Environment, cost: CostModel, name: str = ""):
        super().__init__(env, cost, name)
        self.oneway_us = cost.comch_e_oneway_us
        self.dne_cpu_us = cost.comch_e_cpu_us
        self.fn_cpu_us = cost.comch_e_fn_cpu_us


class ComchP(DescriptorChannel):
    """Producer/consumer-ring DOCA Comch with per-function busy polling.

    Each attached function requires a dedicated DPU core for its ring.
    We model the Fig. 9 collapse: when attached endpoints exceed the
    DPU's spare-core budget, the rings time-share cores through DOCA's
    epoll-based progress engine and per-descriptor latency balloons.
    """

    kind = "comch-p"

    #: extra one-way delay per endpoint beyond the core budget
    #: (time-slicing of "busy" polling rings across too few cores).
    oversubscription_penalty_us = 55.0

    def __init__(self, env: Environment, cost: CostModel, name: str = ""):
        super().__init__(env, cost, name)
        self.oneway_us = cost.comch_p_oneway_us
        self.dne_cpu_us = cost.comch_p_cpu_us
        self.fn_cpu_us = cost.comch_p_cpu_us

    @property
    def dedicated_cores(self) -> int:
        """DPU cores consumed by the attached producer rings."""
        return min(len(self.endpoints), self.cost.comch_p_core_budget)

    def _delivery_delay(self) -> float:
        excess = len(self.endpoints) - self.cost.comch_p_core_budget
        if excess <= 0:
            return self.oneway_us
        return self.oneway_us + excess * self.oversubscription_penalty_us


class TcpChannel(DescriptorChannel):
    """Kernel-TCP descriptor exchange between host and DPU (baseline)."""

    kind = "comch-tcp"

    def __init__(self, env: Environment, cost: CostModel, name: str = ""):
        super().__init__(env, cost, name)
        self.oneway_us = cost.comch_tcp_rtt_us / 2.0
        self.dne_cpu_us = cost.comch_tcp_cpu_us
        self.fn_cpu_us = cost.comch_tcp_cpu_us


class SkMsgChannel(DescriptorChannel):
    """SK_MSG descriptor IPC for the *CPU-hosted* engine (CNE, §4.3).

    Not a cross-processor channel at all: the engine and the functions
    share the host, so delivery latency is just the sockmap redirect.
    The CNE's interrupt-driven receive costs are charged by the engine
    itself (see :class:`~repro.dne.engine.CpuNetworkEngine`), not here.
    """

    kind = "sk-msg"

    def __init__(self, env: Environment, cost: CostModel, name: str = ""):
        super().__init__(env, cost, name)
        self.oneway_us = 0.4  # socket wakeup on the same host
        self.dne_cpu_us = 0.0  # charged via the CNE's interrupt model
        self.fn_cpu_us = cost.sk_msg_us
