"""Platform assembly: cluster + fabric + engines + tenants + functions.

:class:`ServerlessPlatform` wires together the whole testbed for one
data-plane configuration.  The configuration is expressed as an
``engine_builder`` — a callable producing each worker node's network
engine (Palladium's DNE, the CNE, or one of the baseline engines from
:mod:`repro.baselines`) — plus per-design sidecar and intra-node IPC
cost overrides.

Typical use::

    plat = ServerlessPlatform(env, engine_builder=build_dne)
    plat.add_tenant(Tenant("chain-a", weight=6))
    plat.deploy(FunctionSpec("frontend", "chain-a", handler), "worker0")
    plat.start()
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import CostModel
from ..dne import ComchE, DpuNetworkEngine, DwrrScheduler, NetworkEngine
from ..hw import Cluster, Node, build_cluster
from ..memory import (
    CrossProcessorExporter,
    MemoryPool,
    RemoteMap,
    TenantMemoryRegistry,
    create_from_export,
)
from ..rdma import RdmaFabric
from ..sim import Environment, Store

from .coordinator import Coordinator
from .function import FunctionInstance, FunctionSpec
from .iolib import IoLibrary, KernelTcpFallback, NodeRuntime
from .tenant import Tenant

__all__ = ["ServerlessPlatform", "build_palladium_dne"]

EngineBuilder = Callable[
    [Environment, Node, RdmaFabric, CostModel], Optional[NetworkEngine]
]


def build_palladium_dne(
    env: Environment, node: Node, fabric: RdmaFabric, cost: CostModel
) -> NetworkEngine:
    """Default engine builder: Palladium's DNE with Comch-E and DWRR."""
    channel = ComchE(env, cost, name=f"comch:{node.name}")
    return DpuNetworkEngine(
        env, node, fabric, cost, channel,
        scheduler=DwrrScheduler(),
        name=f"dne:{node.name}",
    )


class ServerlessPlatform:
    """The assembled multi-node serverless cloud for one data plane."""

    def __init__(
        self,
        env: Environment,
        cost: Optional[CostModel] = None,
        workers: int = 2,
        engine_builder: EngineBuilder = build_palladium_dne,
        sidecar_us: Optional[float] = None,
        intra_ipc_us: Optional[float] = None,
        recv_buffers: int = 128,
        cp_config=None,
    ):
        self.env = env
        self.cost = cost or CostModel()
        self.cluster: Cluster = build_cluster(env, self.cost, workers=workers)
        self.fabric = RdmaFabric(env, self.cluster, self.cost)
        self.coordinator = Coordinator()
        self.recv_buffers = recv_buffers
        # Pre-register the control-plane config for every endpoint
        # before any engine builds its connection manager (first
        # caller wins in the fabric registry).  None keeps the flat
        # compatibility default — byte-identical to the historical
        # one-timeout cost model.
        if cp_config is not None:
            for node_name in self.cluster.nodes:
                self.fabric.control_plane(node_name, cp_config)

        self.runtimes: Dict[str, NodeRuntime] = {}
        self.engines: Dict[str, NetworkEngine] = {}
        for worker in self.cluster.workers:
            engine = engine_builder(env, worker, self.fabric, self.cost)
            runtime = NodeRuntime(
                env, worker, self.cost,
                engine=engine,
                sidecar_us=sidecar_us,
                intra_ipc_us=intra_ipc_us,
            )
            self.runtimes[worker.name] = runtime
            if engine is not None:
                self.engines[worker.name] = engine
                self.coordinator.subscribe(engine.routes)
        for name, engine in self.engines.items():
            engine.peers = dict(self.engines)
        #: kernel-TCP escape hatch shared by all worker runtimes, used
        #: while a node's engine is down (graceful degradation)
        self.tcp_fallback = KernelTcpFallback(
            env, self.cost, self.cluster, self.runtimes
        )
        for runtime in self.runtimes.values():
            runtime.fallback = self.tcp_fallback
            if runtime.engine is not None:
                runtime.engine.conn_mgr.peer_alive = self._peer_alive

        self._registries: Dict[str, TenantMemoryRegistry] = {
            node: TenantMemoryRegistry(env) for node in self.runtimes
        }
        self.tenants: Dict[str, Tenant] = {}
        self.functions: Dict[str, FunctionInstance] = {}
        self._started = False

        #: nodes currently being gracefully drained / already withdrawn
        self.draining_nodes: set = set()
        self.withdrawn_nodes: set = set()
        self._migrator = None

    # -- tenants -------------------------------------------------------------
    def add_tenant(self, tenant: Tenant) -> None:
        """Create the tenant's per-node pools and register with engines."""
        if tenant.name in self.tenants:
            raise ValueError(f"tenant {tenant.name!r} already exists")
        self.tenants[tenant.name] = tenant
        for node_name, runtime in self.runtimes.items():
            registry = self._registries[node_name]
            agent = registry.create_tenant_pool(
                tenant.name,
                tenant.pool_buffers,
                tenant.buffer_bytes,
                file_prefix=f"palladium_{tenant.name}_{node_name}",
            )
            runtime.add_pool(tenant.name, agent.pool)
            engine = runtime.engine
            if engine is not None:
                remote_map = self._export_pool(agent.pool, engine)
                engine.setup_tenant(
                    tenant.name, agent.pool, remote_map,
                    weight=tenant.weight, recv_buffers=self.recv_buffers,
                )

    def _export_pool(
        self, pool: MemoryPool, engine: NetworkEngine
    ) -> Optional[RemoteMap]:
        """Cross-processor export for DPU engines (§3.4.2); None otherwise."""
        if isinstance(engine, DpuNetworkEngine):
            exporter = CrossProcessorExporter(pool).export_pci().export_rdma()
            return create_from_export(exporter.descriptor())
        return None

    def pool_for(self, tenant: str, node: str) -> MemoryPool:
        return self.runtimes[node].pool_for(tenant)

    # -- QoS / overload protection (repro.qos) --------------------------------
    def enable_qos(self, bounds=None, credits: bool = False,
                   credit_base: int = 64, credit_min: int = 4,
                   credit_low_water: Optional[int] = None,
                   credit_high_water: Optional[int] = None,
                   credit_sources: Tuple[str, ...] = ()) -> None:
        """Opt every worker engine into overload protection.

        Thin fan-out over :meth:`NetworkEngine.enable_qos`; see
        :mod:`repro.qos`.  Never called → the platform is byte-for-byte
        the pre-QoS platform.
        """
        for engine in self.engines.values():
            engine.enable_qos(
                bounds=bounds, credits=credits,
                credit_base=credit_base, credit_min=credit_min,
                credit_low_water=credit_low_water,
                credit_high_water=credit_high_water,
                credit_sources=credit_sources,
            )

    # -- deployment -----------------------------------------------------------
    def deploy(self, spec: FunctionSpec, node_name: str,
               publish_routes: bool = True) -> FunctionInstance:
        """Deploy a function instance onto a worker node.

        ``publish_routes=False`` is the two-phase variant the paid
        provisioning path uses: placement is declared but no route
        table learns the function until the caller drives
        ``coordinator.function_published`` (after QP+MR setup).
        """
        if spec.name in self.functions:
            raise ValueError(f"function {spec.name!r} already deployed")
        if spec.tenant not in self.tenants:
            raise KeyError(f"unknown tenant {spec.tenant!r}")
        runtime = self.runtimes[node_name]
        iolib = IoLibrary(runtime, spec.name, spec.tenant)
        instance = FunctionInstance(self.env, spec, iolib)
        runtime.register_endpoint(spec.name, instance.inbox, tenant=spec.tenant)
        # every node must know the function's security domain, even
        # where the function is not local (§3.1)
        for other in self.runtimes.values():
            other.endpoint_tenants.setdefault(spec.name, spec.tenant)
        if publish_routes:
            self.coordinator.function_created(spec.name, node_name)
        else:
            self.coordinator.function_declared(spec.name, node_name)
        self.functions[spec.name] = instance
        if self._started:
            instance.start()
        return instance

    def register_adapter(self, node_name: str, adapter_id: str, inbox: Store) -> None:
        """Register a pseudo-function endpoint (ingress/TCP adapters)."""
        self.runtimes[node_name].register_endpoint(adapter_id, inbox)
        self.coordinator.function_created(adapter_id, node_name)

    def register_external(self, fn_id: str, node_name: str) -> None:
        """Publish a route for an endpoint living off-worker (ingress)."""
        self.coordinator.function_created(fn_id, node_name)

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        """Start engines (with warmed RC connections) and functions."""
        if self._started:
            raise RuntimeError("platform already started")
        self._started = True
        fabric_nodes = set(self.fabric.nodes)
        for node_name, engine in self.engines.items():
            warm: List[Tuple[str, str]] = []
            for other in self.runtimes:
                if other != node_name:
                    warm.extend((other, t) for t in self.tenants)
            if "ingress" in fabric_nodes:
                warm.extend(("ingress", t) for t in self.tenants)
            engine.start(warm_peers=warm)
        for instance in self.functions.values():
            instance.start()

    # -- failure injection & recovery ------------------------------------------------
    def _peer_alive(self, node_name: str) -> bool:
        """Liveness oracle for RC handshakes (unknown peers: assume up)."""
        runtime = self.runtimes.get(node_name)
        return True if runtime is None else runtime.alive

    def crash_node(self, node_name: str, recovery: bool = True) -> None:
        """Fail-stop crash of a worker node.

        The physical consequences always happen: the RNIC dies (RNR
        stalls flush), the engine dies (QPs error at both ends), and
        every function instance placed there stops.  With ``recovery``
        (the default) the control plane also reacts: the coordinator
        withdraws routes to the node and surviving engines evict their
        torn QPs and start background reconnects.  ``recovery=False``
        models the no-failure-handling baseline.
        """
        runtime = self.runtimes[node_name]
        if not runtime.alive:
            return
        runtime.alive = False
        engine = runtime.engine
        if engine is not None:
            engine.rnic.fail()
            engine.crash()
        for fn_id in self.coordinator.functions_on(node_name):
            instance = self.functions.get(fn_id)
            if instance is not None:
                instance.crash()
        for other_name, other in self.engines.items():
            if other_name != node_name:
                other.conn_mgr.fail_peer(
                    node_name, cause=f"node {node_name} crashed"
                )
        if recovery:
            self.coordinator.node_failed(node_name)
            for other_name, other in self.engines.items():
                if other_name == node_name:
                    continue
                other.conn_mgr.evict_errored()
                for tenant in self.tenants:
                    other.conn_mgr.schedule_reconnect(node_name, tenant)

    def restart_node(self, node_name: str, recovery: bool = True) -> None:
        """Bring a crashed worker node back up."""
        runtime = self.runtimes[node_name]
        if runtime.alive:
            return
        runtime.alive = True
        engine = runtime.engine
        if engine is not None:
            engine.rnic.recover()
            engine.conn_mgr.evict_errored()
            engine.restart()
        for fn_id in self.coordinator.functions_on(node_name):
            instance = self.functions.get(fn_id)
            if instance is not None:
                instance.recover()
        if recovery:
            self.coordinator.node_recovered(node_name)

    # -- live migration & graceful drains (repro.migration) -------------------
    @property
    def migrator(self):
        """Lazily-built :class:`repro.migration.LiveMigrator`.

        Constructed on first use so platforms that never migrate carry
        zero migration state (byte-identical determinism gate).  The
        import is deferred to keep :mod:`repro.migration` free of a
        cycle with this package.
        """
        if self._migrator is None:
            from ..migration import LiveMigrator
            self._migrator = LiveMigrator(self)
        return self._migrator

    def make_iolib(self, fn_id: str, tenant: str, node_name: str) -> IoLibrary:
        """A fresh I/O library binding ``fn_id`` to ``node_name``."""
        return IoLibrary(self.runtimes[node_name], fn_id, tenant)

    def migrate_function(self, fn_id: str, dst_node: str, **kwargs):
        """Generator: live-migrate one function (see ``LiveMigrator``)."""
        return self.migrator.migrate(fn_id, dst_node, **kwargs)

    def _drain_target(self, exclude: str) -> Optional[str]:
        """Least-loaded live worker to receive a drained function."""
        candidates = []
        for name, runtime in self.runtimes.items():
            if name == exclude or not runtime.alive:
                continue
            if name in self.draining_nodes or name in self.withdrawn_nodes:
                continue
            placed = sum(1 for fn in self.coordinator.functions_on(name)
                         if fn in self.functions)
            candidates.append((placed, name))
        if not candidates:
            return None
        return min(candidates)[1]

    def drain_node(self, node_name: str, deadline_us: Optional[float] = None,
                   state_bytes: Optional[int] = None,
                   withdraw_grace_us: float = 1_000.0):
        """Generator: gracefully drain and withdraw a worker node.

        Live-migrates every function placed on ``node_name`` to the
        least-loaded surviving worker (serially — one checkpoint image
        in flight at a time keeps the fabric blip bounded), then stops
        the node's engine and marks it withdrawn.  With ``deadline_us``
        the whole drain must finish in time; when the budget runs out
        the remaining functions fall back to crash semantics
        (``crash_node``), exactly what an expired maintenance window
        does to a straggler in production.  Returns the ids migrated.
        """
        if state_bytes is None:
            from ..migration import DEFAULT_STATE_BYTES
            state_bytes = DEFAULT_STATE_BYTES
        env = self.env
        runtime = self.runtimes[node_name]
        if not runtime.alive or node_name in self.draining_nodes:
            return []
        start = env.now
        self.draining_nodes.add(node_name)
        migrated: List[str] = []
        try:
            for fn_id in sorted(self.coordinator.functions_on(node_name)):
                if fn_id not in self.functions:
                    continue  # adapters/pseudo-endpoints do not migrate
                target = self._drain_target(node_name)
                if target is None:
                    break
                timeout = None
                if deadline_us is not None:
                    timeout = deadline_us - (env.now - start)
                    if timeout <= 0:
                        break
                record = yield from self.migrator.migrate(
                    fn_id, target, state_bytes=state_bytes,
                    quiesce_timeout_us=timeout)
                if not record.ok:
                    break
                migrated.append(fn_id)
            leftovers = sorted(
                fn for fn in self.coordinator.functions_on(node_name)
                if fn in self.functions)
            if leftovers:
                self.coordinator.events.append(
                    ("node-drain-expired", node_name, tuple(leftovers)))
                self.crash_node(node_name, recovery=True)
                return migrated
            # Empty node: let stragglers clear the forwarders, then
            # withdraw — engine stops cleanly, no QP errors at peers.
            yield env.timeout(withdraw_grace_us)
            engine = self.engines.get(node_name)
            if engine is not None:
                engine.stop()
            runtime.alive = False
            self.withdrawn_nodes.add(node_name)
            self.coordinator.events.append(
                ("node-drained", node_name, tuple(migrated)))
            return migrated
        finally:
            self.draining_nodes.discard(node_name)

    # -- measurement helpers ----------------------------------------------------------
    def usage_snapshot(self) -> Dict[str, float]:
        """Snapshot of cumulative busy counters (for windowed metrics)."""
        snap: Dict[str, float] = {"app": sum(f.app_time_us for f in self.functions.values())}
        for name, runtime in self.runtimes.items():
            snap[f"cpu:{name}"] = runtime.node.cpu.total_busy_time()
            if runtime.node.dpu is not None:
                snap[f"dpu:{name}"] = runtime.node.dpu.total_busy_time()
        for name, engine in self.engines.items():
            snap[f"engine:{name}"] = engine.busy_us
        return snap

    def export_metrics(self, telemetry=None) -> None:
        """Publish cluster state into the telemetry metrics registry.

        Gauges mirror the cumulative counters the platform objects
        already keep, so one call refreshes the whole registry (the
        experiment runner calls this before snapshotting).
        """
        tel = telemetry if telemetry is not None else self.env.telemetry
        if tel is None:
            return
        m = tel.metrics
        busy = m.gauge("core_busy_us", "Cumulative busy time per core "
                       "complex.", labels=("node", "complex"))
        for name, runtime in self.runtimes.items():
            busy.labels(name, "cpu").set(runtime.node.cpu.total_busy_time())
            if runtime.node.dpu is not None:
                busy.labels(name, "dpu").set(
                    runtime.node.dpu.total_busy_time())
        app = m.gauge("fn_app_time_us", "Cumulative application compute "
                      "per function.", labels=("fn",))
        for fn_id, instance in self.functions.items():
            app.labels(fn_id).set(instance.app_time_us)
        eng_busy = m.gauge("engine_busy_us", "Cumulative engine core "
                           "occupancy.", labels=("engine",))
        sched = m.gauge("scheduler_events", "Tenant-scheduler counters.",
                        labels=("engine", "event"))
        conns = m.gauge("rc_connections", "RC connection pool state.",
                        labels=("node", "state"))
        fair = m.gauge("scheduler_fairness_ratio", "Measured weighted-"
                       "fairness ratio (min/max normalised share).",
                       labels=("engine",))
        served = m.gauge("scheduler_tenant_bytes", "Per-tenant scheduler "
                         "byte ledgers.", labels=("engine", "tenant", "dir"))
        for name, engine in self.engines.items():
            eng_busy.labels(engine.name).set(engine.busy_us)
            sch = engine.scheduler
            sched.labels(engine.name, "enqueued").set(sch.enqueued)
            sched.labels(engine.name, "dequeued").set(sch.dequeued)
            sched.labels(engine.name, "dropped").set(sch.dropped)
            sched.labels(engine.name, "peak_backlog").set(sch.peak_backlog)
            fair.labels(engine.name).set(sch.fairness_ratio())
            for tenant, nbytes in sch.tenant_bytes_dequeued.items():
                served.labels(engine.name, tenant, "dequeued").set(nbytes)
            if engine.qos_credits is not None:
                credit = m.gauge("engine_credits", "Credit-controller "
                                 "lifetime counters.",
                                 labels=("engine", "event"))
                credit.labels(engine.name, "granted").set(
                    engine.qos_credits.granted)
                credit.labels(engine.name, "released").set(
                    engine.qos_credits.released)
                credit.labels(engine.name, "blocked").set(
                    engine.qos_credits.blocked)
            mgr = engine.conn_mgr
            conns.labels(name, "active").set(mgr.active_count())
            conns.labels(name, "pooled").set(mgr.pooled_count())
            conns.labels(name, "evicted").set(mgr.evicted_qps)

    def dataplane_cpu_pct(self, since: float = 0.0,
                          baseline: Optional[Dict[str, float]] = None) -> float:
        """Worker CPU spent on the data plane, % of one core.

        Total scheduled+pinned CPU minus the functions' application
        compute (tracked separately), matching Fig. 16 (4)-(6)'s
        definition of network-engine efficiency.  ``baseline`` is a
        :meth:`usage_snapshot` taken at ``since``.
        """
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        baseline = baseline or {}
        total = sum(
            r.node.cpu.total_busy_time() - baseline.get(f"cpu:{name}", 0.0)
            for name, r in self.runtimes.items()
        )
        app = (sum(f.app_time_us for f in self.functions.values())
               - baseline.get("app", 0.0))
        return max(0.0, 100.0 * (total - app) / elapsed)

    def dpu_cpu_pct(self, since: float = 0.0,
                    baseline: Optional[Dict[str, float]] = None) -> float:
        """DPU core occupancy across workers, % of one core."""
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        baseline = baseline or {}
        total = sum(
            r.node.dpu.total_busy_time() - baseline.get(f"dpu:{name}", 0.0)
            for name, r in self.runtimes.items()
            if r.node.dpu is not None
        )
        return 100.0 * total / elapsed
