"""Serverless platform: functions, tenants, I/O library, coordinator, assembly."""

from .cluster import ServerlessPlatform, build_palladium_dne
from .autoscaling import FunctionAutoscaler
from .elasticity import ElasticPlatform, ServiceGroup
from .coordinator import Coordinator
from .function import FunctionContext, FunctionInstance, FunctionSpec, Message
from .iolib import (
    InvokeTimeout,
    IoLibrary,
    KernelTcpFallback,
    NodeRuntime,
    SendError,
)
from .tenant import ChainSpec, Tenant

__all__ = [
    "ChainSpec",
    "Coordinator",
    "ElasticPlatform",
    "FunctionAutoscaler",
    "FunctionContext",
    "FunctionInstance",
    "FunctionSpec",
    "InvokeTimeout",
    "IoLibrary",
    "KernelTcpFallback",
    "Message",
    "NodeRuntime",
    "SendError",
    "ServerlessPlatform",
    "ServiceGroup",
    "Tenant",
    "build_palladium_dne",
]
