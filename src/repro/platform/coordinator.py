"""Control-plane coordinator (§3.5.5).

A CNI-like controller that listens for function deployment events and
keeps every node's routing state in sync: the intra-node table on each
host and the inter-node table on each DPU (plus the ingress gateway's
route view).  The coordinator is strictly off the data path.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..dne.routing import InterNodeRoutes

__all__ = ["Coordinator"]


class Coordinator:
    """Synchronizes routing tables across the cluster."""

    def __init__(self):
        #: inter-node route tables to keep in sync (engines + ingress)
        self._subscribers: List[InterNodeRoutes] = []
        #: fn id -> node name (authoritative placement record)
        self.placement: Dict[str, str] = {}
        #: deployment event log (for tests/inspection)
        self.events: List[tuple] = []
        #: nodes currently marked failed (routes withdrawn, placement kept)
        self.failed_nodes: set = set()
        #: functions declared but not yet published (two-phase deploy:
        #: the paid provisioning path declares, pays QP+MR setup, then
        #: publishes — no request can route to a half-provisioned
        #: replica)
        self.unpublished: set = set()

    def subscribe(self, routes: InterNodeRoutes) -> None:
        """Register a route table; it immediately receives known routes."""
        self._subscribers.append(routes)
        for fn_id, node in self.placement.items():
            if fn_id not in self.unpublished:
                routes.set_route(fn_id, node)

    def function_created(self, fn_id: str, node: str) -> None:
        """Publish a new function's placement cluster-wide."""
        self.placement[fn_id] = node
        self.events.append(("created", fn_id, node))
        for routes in self._subscribers:
            routes.set_route(fn_id, node)

    def function_declared(self, fn_id: str, node: str) -> None:
        """Record placement *without* publishing routes (phase one).

        The replica exists and owns its endpoint, but no route table
        knows it yet — the provisioning path publishes only after the
        control-plane setup (QP handshakes, MR registration) is paid.
        """
        self.placement[fn_id] = node
        self.unpublished.add(fn_id)
        self.events.append(("declared", fn_id, node))

    def function_published(self, fn_id: str) -> None:
        """Publish a previously declared function's routes (phase two)."""
        node = self.placement[fn_id]
        self.unpublished.discard(fn_id)
        self.events.append(("published", fn_id, node))
        for routes in self._subscribers:
            routes.set_route(fn_id, node)

    def function_migrated(self, fn_id: str, node: str) -> None:
        """Atomically repoint a function's routes at its new node.

        The placement record is updated first (it is authoritative —
        recovery re-publication reads it), then every subscribed route
        table is overwritten in one synchronous pass: there is no
        instant at which one engine routes to the old node while
        another routes to the new one.
        """
        old = self.placement.get(fn_id)
        self.placement[fn_id] = node
        self.events.append(("migrated", fn_id, old, node))
        for routes in self._subscribers:
            routes.set_route(fn_id, node)

    def function_terminated(self, fn_id: str) -> None:
        """Withdraw a function's routes cluster-wide."""
        self.placement.pop(fn_id, None)
        self.unpublished.discard(fn_id)
        self.events.append(("terminated", fn_id))
        for routes in self._subscribers:
            routes.remove_route(fn_id)

    def node_of(self, fn_id: str) -> str:
        try:
            return self.placement[fn_id]
        except KeyError:
            raise KeyError(f"function {fn_id!r} is not deployed") from None

    # -- failure handling ---------------------------------------------------
    def functions_on(self, node: str) -> List[str]:
        """Functions whose authoritative placement is ``node``."""
        return [fn for fn, n in self.placement.items() if n == node]

    def node_failed(self, node: str) -> List[str]:
        """Route invalidation for a dead node (§3.5.5 health machinery).

        Withdraws every route pointing at the node cluster-wide, so
        engines observe the loss as a ``RouteError`` (drop) instead of
        posting into a black hole.  Placement is retained — the
        functions come back with the node.
        """
        if node in self.failed_nodes:
            return []
        self.failed_nodes.add(node)
        downed = self.functions_on(node)
        for fn_id in downed:
            for routes in self._subscribers:
                routes.remove_route(fn_id)
        self.events.append(("node-failed", node, tuple(downed)))
        return downed

    def node_recovered(self, node: str) -> List[str]:
        """Re-publish routes for a node that came back."""
        if node not in self.failed_nodes:
            return []
        self.failed_nodes.discard(node)
        restored = [fn for fn in self.functions_on(node)
                    if fn not in self.unpublished]
        for fn_id in restored:
            for routes in self._subscribers:
                routes.set_route(fn_id, node)
        self.events.append(("node-recovered", node, tuple(restored)))
        return restored
