"""Serverless function runtime.

A deployed function is a user handler wrapped in Palladium's runtime:

* a unified **inbox** fed by both intra-node SK_MSG deliveries and
  inter-node Comch deliveries (the function just blocks in ``recv``);
* a dispatcher that separates *requests* (queued to handler workers)
  from *responses* (matched to pending invocations by request id);
* an invocation context (:class:`FunctionContext`) giving handlers the
  paper's I/O-library API — ``invoke`` a downstream function and wait,
  or ``respond`` to the caller — without ever choosing a transport
  (§3.5: "sparing developers from selecting the correct transport").

Handlers are generators: ``def handler(ctx, msg): ... yield from
ctx.compute(25) ... reply = yield from ctx.invoke("cart", req, 256)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..dataplane import KIND_REQUEST, KIND_RESPONSE
from ..dataplane import Message as Header
from ..memory import BufferDescriptor
from ..sim import AnyOf, Environment, Event, LatencyStats, Store

from .iolib import InvokeTimeout, SendError

__all__ = ["FunctionSpec", "FunctionInstance", "FunctionContext", "Message"]

_rids = itertools.count(1)


@dataclass
class FunctionSpec:
    """Static description of a serverless function."""

    name: str
    tenant: str
    #: generator handler(ctx, msg); None = echo back the request payload
    handler: Optional[Callable] = None
    #: host-core microseconds of application logic per invocation
    work_us: float = 50.0
    #: maximum concurrent handler executions in this instance
    concurrency: int = 64
    #: typical response body bytes (used by the default echo handler)
    response_bytes: int = 512


@dataclass
class Message:
    """What a handler sees: payload + descriptor + the typed header."""

    payload: Any
    size: int
    header: Header
    descriptor: BufferDescriptor = None

    @property
    def src(self) -> str:
        return self.header.src or "?"


class FunctionContext:
    """Per-invocation API handed to user handlers."""

    def __init__(self, instance: "FunctionInstance", request: Message):
        self.instance = instance
        self.request = request
        self.env = instance.env
        #: the execution span of this invocation (telemetry only)
        self.span = None

    def compute(self, host_us: Optional[float] = None):
        """Generator: burn application-logic CPU time on the host."""
        work = self.instance.spec.work_us if host_us is None else host_us
        self.instance.app_time_us += work
        tel = self.env.telemetry
        if tel is not None:
            tel.cycles.charge("app", work, where=self.instance.spec.name)
        yield from self.instance.cpu.execute(work)

    def invoke(self, dst_fn: str, payload: Any, size: int):
        """Generator: request/response invocation of another function."""
        reply = yield from self.instance.invoke(dst_fn, payload, size,
                                                parent_span=self.span)
        return reply

    def respond(self, payload: Any, size: int):
        """Generator: send the response back to this request's caller."""
        yield from self.instance.respond(self.request, payload, size,
                                         parent_span=self.span)


class FunctionInstance:
    """One running function: inbox, dispatcher, handler workers."""

    def __init__(self, env: Environment, spec: FunctionSpec, iolib):
        self.env = env
        self.spec = spec
        self.iolib = iolib
        self.cpu = iolib.cpu
        self.agent = f"fn:{spec.name}"
        self.inbox: Store = Store(env, name=f"inbox:{spec.name}")
        self._requests: Store = Store(env, name=f"reqs:{spec.name}")
        self._pending: Dict[int, Event] = {}
        self.handled = 0
        #: host-core us of application logic executed (for Fig. 16's
        #: data-plane-vs-app CPU accounting)
        self.app_time_us = 0.0
        self.latency = LatencyStats(spec.name)
        self._started = False
        #: fault state: a crashed instance drops deliveries on the
        #: floor (recycling the buffers) until :meth:`recover`.
        self.crashed = False
        self.dropped = 0
        #: handler executions that failed on a downstream error
        self.failed = 0
        self.invoke_timeouts = 0
        #: live-migration state (repro.migration): while frozen, new
        #: requests are parked for the checkpoint drain; ``_busy``
        #: counts in-flight dispatch/handler work for the quiesce wait.
        self._frozen = False
        self._busy = 0
        self._frozen_backlog: list = []
        self._quiesce_waiters: list = []
        #: completed live migrations of this instance
        self.migrations = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.env.process(self._dispatch_loop(), name=f"{self.spec.name}-dispatch")
        for i in range(self.spec.concurrency):
            self.env.process(self._handler_worker(), name=f"{self.spec.name}-w{i}")

    def crash(self) -> None:
        """Fault injection: the instance's process dies.

        Outstanding invocations are abandoned (their callers' timeouts
        surface the loss) and arriving messages are dropped until
        :meth:`recover`.
        """
        self.crashed = True
        self._pending.clear()

    def recover(self) -> None:
        self.crashed = False

    # -- live migration support (repro.migration) ----------------------------
    def freeze(self) -> None:
        """Stop dispatching new requests (they are parked for the
        checkpoint drain); responses keep flowing so handlers blocked
        in ``invoke`` can finish and the instance can quiesce."""
        self._frozen = True

    def thaw(self, requeue: bool = False) -> None:
        """Resume normal dispatch.

        ``requeue`` is the abort path: parked requests go back to the
        worker queue instead of travelling in a checkpoint image.
        Quiesce waiters are released either way so an aborted
        migration's wait unblocks.
        """
        self._frozen = False
        if requeue:
            backlog, self._frozen_backlog = self._frozen_backlog, []
            for descriptor in backlog:
                self._requests.put_nowait(descriptor)
        waiters, self._quiesce_waiters = self._quiesce_waiters, []
        for event in waiters:
            event.succeed()

    def wait_quiesced(self):
        """Generator: block until no dispatch/handler work is in flight.

        Returns True when the instance quiesced under freeze, False
        when the freeze was lifted underneath (aborted migration).
        """
        while self._frozen and self._busy > 0:
            event = self.env.event()
            self._quiesce_waiters.append(event)
            yield event
        return self._frozen

    def drain_queued(self) -> list:
        """Pull every queued descriptor out of the instance.

        Order: requests already dispatched to workers, then requests
        parked by the freeze, then raw inbox arrivals.  The caller (the
        migrator) takes over ownership of each message and buffer.
        """
        items = []
        while True:
            descriptor = self._requests.try_get()
            if descriptor is None:
                break
            items.append(descriptor)
        items.extend(self._frozen_backlog)
        self._frozen_backlog.clear()
        while True:
            descriptor = self.inbox.try_get()
            if descriptor is None:
                break
            items.append(descriptor)
        return items

    def rebind(self, iolib) -> None:
        """Point the instance at a new node's I/O library (restore).

        The inbox object, pending invocations, and worker processes
        carry over untouched — that is the "warm" in warm migration;
        only the transport bindings change.
        """
        self.iolib = iolib
        self.cpu = iolib.cpu
        self.migrations += 1

    def _work_done(self) -> None:
        self._busy -= 1
        if self._busy == 0 and self._frozen and self._quiesce_waiters:
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for event in waiters:
                event.succeed()

    # -- receive path ---------------------------------------------------------
    def _dispatch_loop(self):
        while True:
            descriptor = yield self.inbox.get()
            if self.crashed:
                self.dropped += 1
                descriptor.message.retire(self.agent)
                self.iolib.recycle(descriptor.buffer, self.agent)
                continue
            if self._frozen and not descriptor.message.is_response:
                # Migration freeze: park requests for the checkpoint
                # drain; responses keep flowing (quiesce needs them).
                self._frozen_backlog.append(descriptor)
                continue
            self._busy += 1
            try:
                # Wake-up cost depends on how the descriptor arrived.
                recv_us = self.iolib.recv_cost_us(descriptor)
                tel = self.env.telemetry
                if tel is not None:
                    # Descriptor-channel wakeups are descriptor handling;
                    # the TCP fallback wakes through the kernel stack.
                    via = descriptor.message.via
                    category = "protocol" if via == "tcp" else "descriptor"
                    tel.cycles.charge(category, recv_us,
                                      where=f"recv:{self.spec.name}")
                yield from self.cpu.execute(recv_us)
                header = descriptor.message
                if header.is_response:
                    event = self._pending.pop(header.rid, None)
                    if event is not None:
                        event.succeed(descriptor)
                    else:
                        # Response nobody awaits (caller timed out): recycle.
                        header.retire(self.agent)
                        self.iolib.recycle(descriptor.buffer, self.agent)
                else:
                    self._requests.put(descriptor)
            finally:
                self._work_done()

    def _handler_worker(self):
        while True:
            descriptor = yield self._requests.get()
            if self.crashed:
                self.dropped += 1
                descriptor.message.retire(self.agent)
                self.iolib.recycle(descriptor.buffer, self.agent)
                continue
            if self._frozen:
                # Claimed from the queue at the freeze instant: park it
                # for the checkpoint drain instead of executing.
                self._frozen_backlog.append(descriptor)
                continue
            self._busy += 1
            try:
                started = self.env.now
                message = Message(
                    payload=descriptor.buffer.read(self.agent),
                    size=descriptor.length,
                    header=descriptor.message,
                    descriptor=descriptor,
                )
                ctx = FunctionContext(self, message)
                tel = self.env.telemetry
                if tel is not None:
                    ctx.span = tel.tracer.start_span(
                        f"fn.exec:{self.spec.name}",
                        parent=message.header.trace, category="function",
                        node=self.iolib.runtime.node.name, actor=self.spec.name,
                        tenant=self.spec.tenant)
                handler = self.spec.handler or _echo_handler
                try:
                    yield from handler(ctx, message)
                except (SendError, InvokeTimeout):
                    # Downstream failure: abandon this request; the
                    # caller's own timeout surfaces the loss.  Keep the
                    # worker alive and reclaim the request buffer if the
                    # handler still holds it.
                    self.failed += 1
                    message.header.retire(self.agent)
                    buffer = descriptor.buffer
                    if buffer is not None and buffer.owner == self.agent:
                        self.iolib.recycle(buffer, self.agent)
                    if tel is not None:
                        tel.tracer.end_span(ctx.span, status="error")
                        tel.metrics.counter(
                            "fn_failed_total", "Handler executions abandoned "
                            "on a downstream error.", labels=("fn",)).labels(
                                self.spec.name).inc()
                    continue
                # The request header has completed its journey: the handler
                # either responded (reusing the buffer under a new header)
                # or consumed the request outright.
                message.header.retire(self.agent)
                self.handled += 1
                self.latency.record(self.env.now - started)
                if tel is not None:
                    tel.tracer.end_span(ctx.span)
                    tel.metrics.counter(
                        "fn_handled_total", "Handler executions completed.",
                        labels=("fn", "tenant")).labels(
                            self.spec.name, self.spec.tenant).inc()
                    tel.metrics.histogram(
                        "fn_exec_latency_us", "Handler wall time, request "
                        "dequeue to completion.", labels=("fn",)).labels(
                            self.spec.name).observe(
                                self.env.now - started,
                                trace_id=ctx.span.trace_id)
            finally:
                self._work_done()

    # -- invocation API ------------------------------------------------------------
    def invoke(self, dst_fn: str, payload: Any, size: int, parent_span=None):
        """Generator: RPC to ``dst_fn``; returns the reply :class:`Message`."""
        rid = next(_rids)
        event = self.env.event()
        self._pending[rid] = event
        header = Header(
            kind=KIND_REQUEST,
            rid=rid,
            src=self.spec.name,
            dst=dst_fn,
            reply_to=self.spec.name,
            tenant=self.spec.tenant,
            owner=self.agent,
        )
        tel = self.env.telemetry
        span = None
        if tel is not None:
            # NB: no rid tag — rids come from a process-global counter,
            # and tagging them would break byte-identical exports across
            # repeated runs in one process (the rid still rides the header).
            span = tel.tracer.start_span(
                f"fn.invoke:{dst_fn}", parent=parent_span,
                category="function", node=self.iolib.runtime.node.name,
                actor=self.spec.name, tenant=self.spec.tenant)
            header.trace = span.context
        try:
            yield from self.iolib.send(self.agent, dst_fn, payload, size,
                                       header)
        except SendError:
            if tel is not None:
                tel.tracer.end_span(span, status="error")
            raise
        deadline_us = getattr(self.iolib.runtime, "invoke_timeout_us", None)
        if deadline_us is None:
            reply_desc = yield event
        else:
            # Invoke guard timer: coalesced through the node's wheel
            # when one is enabled (replies beat the deadline in the
            # common case, tombstoning it for free), exact otherwise.
            wheel = getattr(self.iolib.runtime, "timer_wheel", None)
            if wheel is None:
                deadline = self.env.timeout(deadline_us)
                yield AnyOf(self.env, [event, deadline])
            else:
                deadline = self.env.event()
                guard = wheel.schedule(deadline_us, deadline.succeed)
                yield AnyOf(self.env, [event, deadline])
                if event.triggered:
                    wheel.cancel(guard)
            if not event.triggered:
                # Give up: a late response finds no pending entry and
                # is recycled by the dispatcher.
                self._pending.pop(rid, None)
                self.invoke_timeouts += 1
                if tel is not None:
                    tel.tracer.end_span(span, status="timeout")
                raise InvokeTimeout(
                    f"{self.spec.name}: invoke of {dst_fn!r} (rid {rid}) "
                    f"timed out after {deadline_us:.0f}us"
                )
            reply_desc = event.value
        reply = Message(
            payload=reply_desc.buffer.read(self.agent),
            size=reply_desc.length,
            header=reply_desc.message,
            descriptor=reply_desc,
        )
        # The runtime owns the reply; recycle the buffer after the read
        # and retire the reply header — its journey ends here.
        reply_desc.message.retire(self.agent)
        self.iolib.recycle(reply_desc.buffer, self.agent)
        if tel is not None:
            tel.tracer.end_span(span)
        return reply

    def respond(self, request: Message, payload: Any, size: int,
                parent_span=None):
        """Generator: answer ``request``, reusing its buffer (zero-copy)."""
        header = Header(
            kind=KIND_RESPONSE,
            rid=request.header.rid,
            src=self.spec.name,
            dst=request.header.reply_to,
            tenant=self.spec.tenant,
            owner=self.agent,
        )
        tel = self.env.telemetry
        if tel is not None:
            # Thread the response into the caller's trace: under the
            # execution span when we have it, else wherever the request
            # context pointed.
            if parent_span is not None:
                header.trace = parent_span.context
            elif request.header.trace is not None:
                header.trace = request.header.trace
        yield from self.iolib.send_buffer(
            self.agent, request.header.reply_to, request.descriptor.buffer,
            payload, size, header,
        )


def _echo_handler(ctx: FunctionContext, msg: Message):
    """Default handler: compute, then echo the payload back."""
    yield from ctx.compute()
    yield from ctx.respond(msg.payload, msg.size)
