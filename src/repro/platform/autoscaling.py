"""Function autoscaling on top of the elastic platform.

Serverless platforms scale function replicas with load — the very
churn the paper says demands flexible network provisioning (§1).  This
controller watches each service's request backlog and applies the same
hysteresis discipline as Palladium's ingress autoscaler (§3.6): scale
out when the mean per-replica backlog exceeds a high watermark, scale
in below a low watermark.

Every scale event flows through the coordinator, so routing tables —
intra-node, DNE inter-node, and ingress — stay consistent while
replicas come and go, exercising exactly the control-plane path of
§3.5.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Environment, TimeSeries

from .elasticity import ElasticPlatform
from .function import FunctionSpec

__all__ = ["FunctionAutoscaler"]


class FunctionAutoscaler:
    """Backlog-driven replica controller for one service."""

    def __init__(
        self,
        platform: ElasticPlatform,
        spec: FunctionSpec,
        nodes: List[str],
        min_replicas: int = 1,
        max_replicas: int = 8,
        high_watermark: float = 4.0,
        low_watermark: float = 0.5,
        period_us: float = 20_000.0,
    ):
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if low_watermark >= high_watermark:
            raise ValueError("low watermark must be below high watermark")
        self.platform = platform
        self.env: Environment = platform.env
        self.spec = spec
        self.nodes = nodes
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.period_us = period_us
        self.scale_outs = 0
        self.scale_ins = 0
        #: (time, replica count) history for inspection
        self.replica_series = TimeSeries(f"replicas:{spec.name}")
        self._node_rr = 0
        self._running = False

    # -- observation -----------------------------------------------------------
    def _live_instances(self):
        group = self.platform.services[self.spec.name]
        return [self.platform.functions[rid] for rid in group.replicas]

    def mean_backlog(self) -> float:
        """Mean queued-requests per live replica."""
        instances = self._live_instances()
        if not instances:
            return 0.0
        backlog = sum(len(inst._requests.items) + len(inst.inbox.items)
                      for inst in instances)
        return backlog / len(instances)

    # -- control loop --------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise RuntimeError("autoscaler already started")
        self._running = True
        self.env.process(self._loop(), name=f"fn-autoscale:{self.spec.name}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            yield self.env.timeout(self.period_us)
            count = self.platform.replica_count(self.spec.name)
            backlog = self.mean_backlog()
            self.replica_series.record(self.env.now, count)
            if backlog > self.high_watermark and count < self.max_replicas:
                node = self.nodes[self._node_rr % len(self.nodes)]
                self._node_rr += 1
                self.platform.scale_out(self.spec, node)
                self.scale_outs += 1
            elif backlog < self.low_watermark and count > self.min_replicas:
                self.platform.scale_in(self.spec.name)
                self.scale_ins += 1
