"""The unified I/O library and per-node runtime context (§3.5).

:class:`NodeRuntime` bundles everything a worker node's data plane
needs: the sockmap for intra-node SK_MSG IPC, the intra-node routing
table, the node's network engine (DNE/CNE/baseline engine), per-tenant
memory pools, and the sidecar cost model.

:class:`IoLibrary` is the function-facing API: a single ``send`` that
transparently routes intra-node (descriptor over SK_MSG, green arrow of
Fig. 7) or inter-node (descriptor to the engine over Comch, violet
arrows), performing the token-passing ownership transfer either way.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..config import CostModel
from ..dataplane import Message
from ..dne.engine import NetworkEngine
from ..dne.routing import IntraNodeRoutes, RouteError
from ..hw import Node
from ..memory import Buffer, BufferDescriptor, MemoryPool, PoolExhausted
from ..net import SockMap
from ..sim import AnyOf, Environment, Store, TimerWheel

__all__ = ["NodeRuntime", "IoLibrary", "KernelTcpFallback", "SendError",
           "InvokeTimeout"]

#: TCP/IP framing on the kernel-stack fallback hop
TCP_FRAME_OVERHEAD = 66


class SendError(Exception):
    """A reliable send exhausted its retry budget (tenant-visible)."""


class InvokeTimeout(Exception):
    """An invocation's response did not arrive within the deadline."""


class NodeRuntime:
    """Everything the data plane shares on one worker node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        cost: CostModel,
        engine: Optional[NetworkEngine] = None,
        sidecar_us: Optional[float] = None,
        intra_ipc_us: Optional[float] = None,
    ):
        self.env = env
        self.node = node
        self.cost = cost
        self.engine = engine
        self.sockmap = SockMap(env, cost, name=f"sockmap:{node.name}")
        self.intra_routes = IntraNodeRoutes(node.name)
        self.pools: Dict[str, MemoryPool] = {}
        #: endpoint id -> owning tenant (None for trusted infrastructure
        #: adapters) — drives the cross-security-domain copy rule (§3.1)
        self.endpoint_tenants: Dict[str, Optional[str]] = {}
        #: per-message sidecar (service mesh) cost; Palladium's
        #: lightweight eBPF sidecar by default (§3.1)
        self.sidecar_us = cost.ebpf_sidecar_us if sidecar_us is None else sidecar_us
        #: override for intra-node descriptor IPC cost (NightCore's
        #: shared-memory queues differ slightly from SK_MSG)
        self.intra_ipc_us = cost.sk_msg_us if intra_ipc_us is None else intra_ipc_us
        #: False while the node is crashed (fault injection)
        self.alive = True
        #: kernel-TCP escape hatch used while the engine is down
        #: (graceful degradation, wired by the platform)
        self.fallback: Optional["KernelTcpFallback"] = None
        #: when set, :meth:`FunctionInstance.invoke` gives up (raises
        #: :class:`InvokeTimeout`) after this many microseconds
        self.invoke_timeout_us: Optional[float] = None
        #: opt-in coalescing wheel for the node's guard timers
        #: (retransmit + invoke deadlines).  ``None`` keeps the exact
        #: per-timer heap path — the wheel quantizes deadlines to its
        #: bucket edge, which is observable, so nothing enables it by
        #: default (see :mod:`repro.sim.wheel`).
        self.timer_wheel: Optional[TimerWheel] = None

    def enable_timer_wheel(self, granularity_us: float = 8.0) -> "TimerWheel":
        """Route this node's guard timers through a coalescing wheel.

        Deadlines then fire up to ``granularity_us`` late but share one
        kernel event per bucket, and a deadline beaten by its ack is a
        tombstone write instead of a dead heap entry.
        """
        if self.timer_wheel is None:
            self.timer_wheel = TimerWheel(self.env,
                                          granularity_us=granularity_us)
        return self.timer_wheel

    def add_pool(self, tenant: str, pool: MemoryPool) -> None:
        self.pools[tenant] = pool

    def pool_for(self, tenant: str) -> MemoryPool:
        try:
            return self.pools[tenant]
        except KeyError:
            raise KeyError(
                f"tenant {tenant!r} has no memory pool on {self.node.name}"
            ) from None

    def register_endpoint(self, fn_id: str, inbox: Store,
                          tenant: Optional[str] = None) -> None:
        """Wire a function (or pseudo-function adapter) into the node.

        Registers the unified inbox with the sockmap (intra-node) and,
        if the node has an engine, with its descriptor channel
        (inter-node), then publishes the intra-node route.  ``tenant``
        marks the endpoint's security domain; ``None`` means trusted
        infrastructure (ingress/TCP adapters), which every tenant may
        talk to without a domain crossing.
        """
        self.sockmap.register(fn_id, inbox)
        if self.engine is not None:
            self.engine.channel.attach(fn_id, inbox)
        self.intra_routes.add_function(fn_id)
        self.endpoint_tenants[fn_id] = tenant

    def unregister_endpoint(self, fn_id: str,
                            forward_inbox: Optional[Store] = None) -> None:
        """Remove a function's node-local wiring (migration / teardown).

        The intra-node route disappears so local senders fall back to
        the engine path (which follows the coordinator's flipped
        routes).  With ``forward_inbox``, the sockmap slot and the
        descriptor-channel endpoint are immediately re-bound to it —
        the migration forwarder's store — so deliveries already past
        their route lookup land there instead of a torn-down socket.
        Without it, both registrations are simply removed.
        """
        self.intra_routes.remove_function(fn_id)
        self.sockmap.unregister(fn_id)
        if self.engine is not None:
            self.engine.channel.detach(fn_id)
        if forward_inbox is not None:
            self.sockmap.register(fn_id, forward_inbox)
            if self.engine is not None:
                self.engine.channel.attach(fn_id, forward_inbox)
        else:
            self.endpoint_tenants.pop(fn_id, None)

    def crosses_security_domain(self, tenant: str, dst_fn: str) -> bool:
        """True when sending to ``dst_fn`` leaves ``tenant``'s domain.

        Palladium's security model (§3.1): only functions of the same
        tenant share memory; crossing domains requires an explicit
        CPU copy.  Infrastructure endpoints (tenant None) are trusted.
        """
        dst_tenant = self.endpoint_tenants.get(dst_fn)
        return dst_tenant is not None and dst_tenant != tenant


class IoLibrary:
    """Per-function transport-agnostic send/receive API."""

    VIA_SKMSG = "skmsg"
    VIA_ENGINE = "engine"

    def __init__(self, runtime: NodeRuntime, fn_id: str, tenant: str):
        self.runtime = runtime
        self.env = runtime.env
        self.cost = runtime.cost
        self.fn_id = fn_id
        self.tenant = tenant
        self.cpu = runtime.node.cpu
        self.intra_sends = 0
        self.inter_sends = 0
        self.cross_domain_sends = 0
        self.fallback_sends = 0
        self.retransmissions = 0
        self.send_failures = 0

    # -- send path -------------------------------------------------------------
    def send(self, src_agent: str, dst_fn: str, payload: Any, size: int,
             message: Message, timeout_us: Optional[float] = None,
             max_retries: int = 2):
        """Generator: allocate a buffer, fill it, and route it to ``dst_fn``.

        With ``timeout_us`` set, the send is *reliable*: an ack event
        rides the message and is settled (with the delivery status) by
        whichever transport carries it; a nack or timeout triggers a
        retransmission (a :meth:`~repro.dataplane.Message.clone` — the
        original instance was consumed by whatever path dropped it),
        and after ``max_retries`` retransmissions the failure surfaces
        as :class:`SendError`.  The default (``timeout_us=None``) path
        is untouched fire-and-forget — no extra events, no overhead.
        """
        pool = self.runtime.pool_for(self.tenant)
        if timeout_us is None:
            buffer = yield from pool.get_wait(src_agent)
            yield from self.send_buffer(src_agent, dst_fn, buffer, payload, size,
                                        message,
                                        extra_cpu_us=self.cost.mempool_op_us)
            return
        attempts = 0
        pristine_trace = message.trace
        current = message
        current.retries_left = max_retries
        while True:
            buffer = yield from pool.get_wait(src_agent)
            ack = self.env.event()
            current.ack = ack
            yield from self.send_buffer(src_agent, dst_fn, buffer, payload, size,
                                        current,
                                        extra_cpu_us=self.cost.mempool_op_us)
            # Retransmit guard: exact heap timer by default; through the
            # node's coalescing wheel when enabled, where the common
            # ack-beats-deadline case cancels by tombstone instead of
            # leaving a dead heap entry.
            wheel = self.runtime.timer_wheel
            if wheel is None:
                deadline = self.env.timeout(timeout_us)
                yield AnyOf(self.env, [ack, deadline])
            else:
                deadline = self.env.event()
                guard = wheel.schedule(timeout_us, deadline.succeed)
                yield AnyOf(self.env, [ack, deadline])
                if ack.triggered:
                    wheel.cancel(guard)
            if ack.triggered and ack.value:
                return
            attempts += 1
            if attempts > max_retries:
                self.send_failures += 1
                cause = "nacked" if ack.triggered else "timed out"
                raise SendError(
                    f"{self.fn_id}: send to {dst_fn!r} {cause} after "
                    f"{attempts} attempts"
                )
            self.retransmissions += 1
            current = current.clone(owner=src_agent, trace=pristine_trace,
                                    retries_left=max_retries - attempts)

    def send_buffer(
        self,
        src_agent: str,
        dst_fn: str,
        buffer: Buffer,
        payload: Any,
        size: int,
        message: Message,
        extra_cpu_us: float = 0.0,
    ):
        """Generator: fill ``buffer`` and route it (zero-copy reuse path).

        The sidecar, allocator, and IPC CPU charges are batched into a
        single core claim (they execute back-to-back in the sender's
        syscall context on the real system).  ``message`` is handed off
        by ownership to whatever transport carries it — no per-hop copy.
        """
        buffer.write(src_agent, payload, size)
        # Logical-service resolution (elastic replicas; identity for
        # plain function names).
        resolve = getattr(self.runtime, "resolve_service", None)
        if resolve is not None:
            dst_fn = resolve(dst_fn)
        message.dst = dst_fn
        tel = self.env.telemetry
        if self.runtime.crosses_security_domain(self.tenant, dst_fn):
            yield from self._send_cross_domain(src_agent, dst_fn, buffer,
                                               payload, size, message,
                                               extra_cpu_us)
        elif self.runtime.intra_routes.is_local(dst_fn):
            message.via = self.VIA_SKMSG
            span = None
            if tel is not None:
                span = self._send_span(tel, message, dst_fn, size, "skmsg")
                tel.cycles.charge("descriptor",
                                  extra_cpu_us + self.cost.sk_msg_us,
                                  where=f"iolib:{self.runtime.node.name}")
                tel.cycles.charge("protocol", self.runtime.sidecar_us,
                                  where="sidecar")
            descriptor = BufferDescriptor(buffer=buffer, length=size,
                                          message=message)
            buffer.transfer(src_agent, f"fn:{dst_fn}")
            message.transfer(src_agent, f"fn:{dst_fn}")
            yield from self.cpu.execute(
                extra_cpu_us + self.runtime.sidecar_us + self.cost.sk_msg_us
            )
            self.runtime.sockmap.redirect(dst_fn, descriptor)
            self.intra_sends += 1
            message.settle(True)
            if tel is not None:
                tel.tracer.end_span(span)
        else:
            engine = self.runtime.engine
            if engine is None:
                raise RuntimeError(
                    f"{self.fn_id}: destination {dst_fn!r} is remote but node "
                    f"{self.runtime.node.name} has no network engine"
                )
            if not engine.available and self.runtime.fallback is not None:
                # Graceful degradation (engine crashed): ship over the
                # kernel TCP stack while the engine restarts.
                yield from self.runtime.fallback.send(
                    self, src_agent, dst_fn, buffer, size, message
                )
                self.fallback_sends += 1
                return
            message.via = self.VIA_ENGINE
            if engine.qos_credits is not None:
                # Credit-based backpressure (repro.qos): block until the
                # engine grants this tenant a TX credit.  The engine
                # repays it when it processes — or sheds — the message.
                yield from engine.qos_credits.acquire(self.tenant)
            span = None
            if tel is not None:
                span = self._send_span(tel, message, dst_fn, size, "engine")
                tel.cycles.charge("descriptor",
                                  extra_cpu_us + engine.channel.fn_cpu_us,
                                  where=f"iolib:{self.runtime.node.name}")
                tel.cycles.charge("protocol", self.runtime.sidecar_us,
                                  where="sidecar")
            descriptor = BufferDescriptor(buffer=buffer, length=size,
                                          message=message)
            buffer.transfer(src_agent, engine.agent)
            message.transfer(src_agent, engine.agent)
            yield from self.cpu.execute(
                extra_cpu_us + self.runtime.sidecar_us
                + engine.channel.fn_cpu_us
            )
            engine.channel.post_from_function(self.fn_id, descriptor)
            self.inter_sends += 1
            if tel is not None:
                tel.tracer.end_span(span)

    def _send_span(self, tel, message: Message, dst_fn: str, size: int,
                   via: str):
        """Open a send span, stamp its context on the message, count it."""
        span = tel.tracer.start_span(
            "iolib.send", parent=message.trace, category="iolib",
            node=self.runtime.node.name, actor=self.fn_id,
            tenant=self.tenant, dst=dst_fn, via=via, bytes=size)
        message.trace = span.context
        tel.metrics.counter(
            "iolib_sends_total", "Messages sent through the I/O library.",
            labels=("via", "tenant")).labels(via, self.tenant).inc()
        return span

    def _send_cross_domain(self, src_agent: str, dst_fn: str, buffer: Buffer,
                           payload, size: int, message: Message,
                           extra_cpu_us: float):
        """Generator: explicit CPU copy across security domains (§3.1).

        The payload is copied out of the sender tenant's pool into a
        buffer of the *destination* tenant's pool; the sender's buffer
        never leaves its domain.  Only intra-node crossings are
        supported (matching the paper's tenant-per-chain model).
        """
        dst_tenant = self.runtime.endpoint_tenants[dst_fn]
        if not self.runtime.intra_routes.is_local(dst_fn):
            raise RuntimeError(
                f"{self.fn_id}: cross-tenant destination {dst_fn!r} is not "
                f"local; inter-node crossings must go through an ingress"
            )
        dst_pool = self.runtime.pool_for(dst_tenant)
        dst_buffer = yield from dst_pool.get_wait(src_agent)
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = self._send_span(tel, message, dst_fn, size, "xdomain")
            tel.cycles.charge("copy", self.cost.copy_time(size),
                              where="xdomain-copy")
            tel.cycles.charge("descriptor",
                              extra_cpu_us + self.cost.sk_msg_us,
                              where=f"iolib:{self.runtime.node.name}")
            tel.cycles.charge("protocol", self.runtime.sidecar_us,
                              where="sidecar")
        # The copy itself plus sidecar access control, on the host core.
        yield from self.cpu.execute(
            extra_cpu_us + self.runtime.sidecar_us
            + self.cost.copy_time(size) + self.cost.sk_msg_us
        )
        dst_buffer.write(src_agent, payload, size)
        message.via = self.VIA_SKMSG
        message.crossed_domain = True
        descriptor = BufferDescriptor(buffer=dst_buffer, length=size,
                                      message=message)
        dst_buffer.transfer(src_agent, f"fn:{dst_fn}")
        message.transfer(src_agent, f"fn:{dst_fn}")
        self.runtime.sockmap.redirect(dst_fn, descriptor)
        # Sender keeps (and recycles) its own buffer: no shared memory
        # ever crossed the domain boundary.
        buffer.pool.put(buffer, src_agent)
        self.cross_domain_sends += 1
        message.settle(True)
        if tel is not None:
            tel.tracer.end_span(span)

    # -- receive path ------------------------------------------------------------
    def recv_cost_us(self, descriptor: BufferDescriptor) -> float:
        """Host-core cost of waking up for this delivery."""
        via = descriptor.message.via or self.VIA_SKMSG
        if via == self.VIA_ENGINE and self.runtime.engine is not None:
            return self.runtime.engine.channel.function_recv_cost_us()
        if via == KernelTcpFallback.VIA_TCP:
            # Socket wakeup through the kernel stack.
            return self.cost.kernel_tcp_us + self.runtime.intra_ipc_us
        return self.runtime.intra_ipc_us

    def recycle(self, buffer: Buffer, agent: str) -> None:
        """Return a consumed buffer to its home pool."""
        if buffer.pool is not None:
            buffer.pool.put(buffer, agent)


class KernelTcpFallback:
    """Kernel TCP/IP escape hatch used while a node's engine is down.

    When the DNE crashes, in-flight work drains to failed CQEs and new
    inter-node sends cannot use the descriptor channel.  Rather than
    stall tenants until the engine restarts, the iolib degrades to the
    kernel protocol stack (the path SPRIGHT always uses): a real copy
    out of the pool, TCP processing on both ends, and a copy back into
    the destination tenant's pool.  Slow, but available.
    """

    VIA_TCP = "tcp"

    def __init__(self, env: Environment, cost: CostModel, cluster,
                 runtimes: Dict[str, "NodeRuntime"]):
        self.env = env
        self.cost = cost
        self.cluster = cluster
        self.runtimes = runtimes
        self.agent = "tcp-fallback"
        self.sends = 0
        self.delivered = 0
        self.dropped = 0

    def send(self, iolib: "IoLibrary", src_agent: str, dst_fn: str,
             buffer: Buffer, size: int, message: Message):
        """Generator: carry one message over the kernel stack."""
        runtime = iolib.runtime
        cost = self.cost
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start_span(
                "iolib.send", parent=message.trace, category="iolib",
                node=runtime.node.name, actor=iolib.fn_id,
                tenant=iolib.tenant, dst=dst_fn, via="tcp-fallback",
                bytes=size)
            message.trace = span.context
            tel.metrics.counter(
                "iolib_sends_total", "Messages sent through the I/O library.",
                labels=("via", "tenant")).labels(
                    "tcp-fallback", iolib.tenant).inc()
        # Route lookup reuses the engine's table: the control plane
        # (coordinator-pushed routes) survives the data-path crash.
        try:
            dst_node = runtime.engine.routes.node_for(dst_fn)
        except RouteError:
            self.dropped += 1
            buffer.pool.put(buffer, src_agent)
            message.settle(False)
            message.retire(src_agent)
            if tel is not None:
                tel.tracer.end_span(span, status="drop")
            return
        if tel is not None:
            tel.cycles.charge("protocol", cost.kernel_tcp_us,
                              where="tcp-fallback")
            tel.cycles.charge("copy", cost.copy_time(size),
                              where="tcp-fallback")
        # Sender: copy out of the shared pool + protocol processing.
        yield from runtime.node.cpu.execute(
            cost.kernel_tcp_us + cost.copy_time(size)
        )
        payload = buffer.payload
        buffer.pool.put(buffer, src_agent)
        self.sends += 1
        link = self.cluster.fabric_link(runtime.node.name, dst_node)
        yield from link.transmit(size + TCP_FRAME_OVERHEAD)
        dst_runtime = self.runtimes.get(dst_node)
        if (dst_runtime is None or not dst_runtime.alive
                or not dst_runtime.intra_routes.is_local(dst_fn)):
            # Connection reset: destination node or endpoint is gone.
            self.dropped += 1
            message.settle(False)
            message.retire(src_agent)
            if tel is not None:
                tel.tracer.end_span(span, status="drop")
            return
        try:
            dst_buffer = dst_runtime.pool_for(iolib.tenant).get(self.agent)
        except (KeyError, PoolExhausted):
            self.dropped += 1
            message.settle(False)
            message.retire(src_agent)
            if tel is not None:
                tel.tracer.end_span(span, status="drop")
            return
        if tel is not None:
            tel.cycles.charge("protocol",
                              cost.kernel_tcp_us + cost.kernel_irq_us,
                              where="tcp-fallback")
            tel.cycles.charge("copy", cost.copy_time(size),
                              where="tcp-fallback")
        # Receiver: kernel + softirq processing, copy into the pool.
        yield from dst_runtime.node.cpu.execute(
            cost.kernel_tcp_us + cost.kernel_irq_us + cost.copy_time(size)
        )
        dst_buffer.write(self.agent, payload, size)
        message.via = self.VIA_TCP
        descriptor = BufferDescriptor(buffer=dst_buffer, length=size,
                                      message=message)
        dst_buffer.transfer(self.agent, f"fn:{dst_fn}")
        message.transfer(src_agent, f"fn:{dst_fn}")
        dst_runtime.sockmap.redirect(dst_fn, descriptor)
        self.delivered += 1
        message.settle(True)
        if tel is not None:
            tel.tracer.end_span(span)
