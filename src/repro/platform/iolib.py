"""The unified I/O library and per-node runtime context (§3.5).

:class:`NodeRuntime` bundles everything a worker node's data plane
needs: the sockmap for intra-node SK_MSG IPC, the intra-node routing
table, the node's network engine (DNE/CNE/baseline engine), per-tenant
memory pools, and the sidecar cost model.

:class:`IoLibrary` is the function-facing API: a single ``send`` that
transparently routes intra-node (descriptor over SK_MSG, green arrow of
Fig. 7) or inter-node (descriptor to the engine over Comch, violet
arrows), performing the token-passing ownership transfer either way.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..config import CostModel
from ..dne.engine import NetworkEngine
from ..dne.routing import IntraNodeRoutes
from ..hw import Node
from ..memory import Buffer, BufferDescriptor, MemoryPool
from ..net import SockMap
from ..sim import Environment, Store

__all__ = ["NodeRuntime", "IoLibrary"]


class NodeRuntime:
    """Everything the data plane shares on one worker node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        cost: CostModel,
        engine: Optional[NetworkEngine] = None,
        sidecar_us: Optional[float] = None,
        intra_ipc_us: Optional[float] = None,
    ):
        self.env = env
        self.node = node
        self.cost = cost
        self.engine = engine
        self.sockmap = SockMap(env, cost, name=f"sockmap:{node.name}")
        self.intra_routes = IntraNodeRoutes(node.name)
        self.pools: Dict[str, MemoryPool] = {}
        #: endpoint id -> owning tenant (None for trusted infrastructure
        #: adapters) — drives the cross-security-domain copy rule (§3.1)
        self.endpoint_tenants: Dict[str, Optional[str]] = {}
        #: per-message sidecar (service mesh) cost; Palladium's
        #: lightweight eBPF sidecar by default (§3.1)
        self.sidecar_us = cost.ebpf_sidecar_us if sidecar_us is None else sidecar_us
        #: override for intra-node descriptor IPC cost (NightCore's
        #: shared-memory queues differ slightly from SK_MSG)
        self.intra_ipc_us = cost.sk_msg_us if intra_ipc_us is None else intra_ipc_us

    def add_pool(self, tenant: str, pool: MemoryPool) -> None:
        self.pools[tenant] = pool

    def pool_for(self, tenant: str) -> MemoryPool:
        try:
            return self.pools[tenant]
        except KeyError:
            raise KeyError(
                f"tenant {tenant!r} has no memory pool on {self.node.name}"
            ) from None

    def register_endpoint(self, fn_id: str, inbox: Store,
                          tenant: Optional[str] = None) -> None:
        """Wire a function (or pseudo-function adapter) into the node.

        Registers the unified inbox with the sockmap (intra-node) and,
        if the node has an engine, with its descriptor channel
        (inter-node), then publishes the intra-node route.  ``tenant``
        marks the endpoint's security domain; ``None`` means trusted
        infrastructure (ingress/TCP adapters), which every tenant may
        talk to without a domain crossing.
        """
        self.sockmap.register(fn_id, inbox)
        if self.engine is not None:
            self.engine.channel.attach(fn_id, inbox)
        self.intra_routes.add_function(fn_id)
        self.endpoint_tenants[fn_id] = tenant

    def crosses_security_domain(self, tenant: str, dst_fn: str) -> bool:
        """True when sending to ``dst_fn`` leaves ``tenant``'s domain.

        Palladium's security model (§3.1): only functions of the same
        tenant share memory; crossing domains requires an explicit
        CPU copy.  Infrastructure endpoints (tenant None) are trusted.
        """
        dst_tenant = self.endpoint_tenants.get(dst_fn)
        return dst_tenant is not None and dst_tenant != tenant


class IoLibrary:
    """Per-function transport-agnostic send/receive API."""

    VIA_SKMSG = "skmsg"
    VIA_ENGINE = "engine"

    def __init__(self, runtime: NodeRuntime, fn_id: str, tenant: str):
        self.runtime = runtime
        self.env = runtime.env
        self.cost = runtime.cost
        self.fn_id = fn_id
        self.tenant = tenant
        self.cpu = runtime.node.cpu
        self.intra_sends = 0
        self.inter_sends = 0
        self.cross_domain_sends = 0

    # -- send path -------------------------------------------------------------
    def send(self, src_agent: str, dst_fn: str, payload: Any, size: int, meta: Dict):
        """Generator: allocate a buffer, fill it, and route it to ``dst_fn``."""
        pool = self.runtime.pool_for(self.tenant)
        buffer = yield from pool.get_wait(src_agent)
        yield from self.send_buffer(src_agent, dst_fn, buffer, payload, size, meta,
                                    extra_cpu_us=self.cost.mempool_op_us)

    def send_buffer(
        self,
        src_agent: str,
        dst_fn: str,
        buffer: Buffer,
        payload: Any,
        size: int,
        meta: Dict,
        extra_cpu_us: float = 0.0,
    ):
        """Generator: fill ``buffer`` and route it (zero-copy reuse path).

        The sidecar, allocator, and IPC CPU charges are batched into a
        single core claim (they execute back-to-back in the sender's
        syscall context on the real system).
        """
        buffer.write(src_agent, payload, size)
        # Logical-service resolution (elastic replicas; identity for
        # plain function names).
        resolve = getattr(self.runtime, "resolve_service", None)
        if resolve is not None:
            dst_fn = resolve(dst_fn)
        meta = dict(meta)
        meta["dst"] = dst_fn
        if self.runtime.crosses_security_domain(self.tenant, dst_fn):
            yield from self._send_cross_domain(src_agent, dst_fn, buffer,
                                               payload, size, meta,
                                               extra_cpu_us)
        elif self.runtime.intra_routes.is_local(dst_fn):
            meta["_via"] = self.VIA_SKMSG
            descriptor = BufferDescriptor(buffer=buffer, length=size, meta=meta)
            buffer.transfer(src_agent, f"fn:{dst_fn}")
            yield from self.cpu.execute(
                extra_cpu_us + self.runtime.sidecar_us + self.cost.sk_msg_us
            )
            self.runtime.sockmap.redirect(dst_fn, descriptor)
            self.intra_sends += 1
        else:
            engine = self.runtime.engine
            if engine is None:
                raise RuntimeError(
                    f"{self.fn_id}: destination {dst_fn!r} is remote but node "
                    f"{self.runtime.node.name} has no network engine"
                )
            meta["_via"] = self.VIA_ENGINE
            descriptor = BufferDescriptor(buffer=buffer, length=size, meta=meta)
            buffer.transfer(src_agent, engine.agent)
            yield from self.cpu.execute(
                extra_cpu_us + self.runtime.sidecar_us
                + engine.channel.fn_cpu_us
            )
            engine.channel.post_from_function(self.fn_id, descriptor)
            self.inter_sends += 1

    def _send_cross_domain(self, src_agent: str, dst_fn: str, buffer: Buffer,
                           payload, size: int, meta: Dict,
                           extra_cpu_us: float):
        """Generator: explicit CPU copy across security domains (§3.1).

        The payload is copied out of the sender tenant's pool into a
        buffer of the *destination* tenant's pool; the sender's buffer
        never leaves its domain.  Only intra-node crossings are
        supported (matching the paper's tenant-per-chain model).
        """
        dst_tenant = self.runtime.endpoint_tenants[dst_fn]
        if not self.runtime.intra_routes.is_local(dst_fn):
            raise RuntimeError(
                f"{self.fn_id}: cross-tenant destination {dst_fn!r} is not "
                f"local; inter-node crossings must go through an ingress"
            )
        dst_pool = self.runtime.pool_for(dst_tenant)
        dst_buffer = yield from dst_pool.get_wait(src_agent)
        # The copy itself plus sidecar access control, on the host core.
        yield from self.cpu.execute(
            extra_cpu_us + self.runtime.sidecar_us
            + self.cost.copy_time(size) + self.cost.sk_msg_us
        )
        dst_buffer.write(src_agent, payload, size)
        meta["_via"] = self.VIA_SKMSG
        meta["_crossed_domain"] = True
        descriptor = BufferDescriptor(buffer=dst_buffer, length=size, meta=meta)
        dst_buffer.transfer(src_agent, f"fn:{dst_fn}")
        self.runtime.sockmap.redirect(dst_fn, descriptor)
        # Sender keeps (and recycles) its own buffer: no shared memory
        # ever crossed the domain boundary.
        buffer.pool.put(buffer, src_agent)
        self.cross_domain_sends += 1

    # -- receive path ------------------------------------------------------------
    def recv_cost_us(self, descriptor: BufferDescriptor) -> float:
        """Host-core cost of waking up for this delivery."""
        via = descriptor.meta.get("_via", self.VIA_SKMSG)
        if via == self.VIA_ENGINE and self.runtime.engine is not None:
            return self.runtime.engine.channel.function_recv_cost_us()
        return self.runtime.intra_ipc_us

    def recycle(self, buffer: Buffer, agent: str) -> None:
        """Return a consumed buffer to its home pool."""
        if buffer.pool is not None:
            buffer.pool.put(buffer, agent)
