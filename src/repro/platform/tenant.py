"""Tenants and function chains.

Palladium treats each function chain as an independent tenant (§3.1)
with an exclusive unified memory pool per node and a DWRR weight at the
DNE.  A :class:`ChainSpec` names the entry function and the expected
call structure (used by workload generators and documentation; the
actual call graph is encoded in the functions' handlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Tenant", "ChainSpec"]


@dataclass
class Tenant:
    """One tenant: isolation domain + scheduling weight."""

    name: str
    weight: float = 1.0
    #: per-node pool sizing
    pool_buffers: int = 512
    buffer_bytes: int = 8192

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.pool_buffers < 1:
            raise ValueError("tenant pool needs at least one buffer")


@dataclass
class ChainSpec:
    """A named function chain (one invocation path through an app)."""

    name: str
    tenant: str
    entry: str
    #: documented hops as (caller, callee) pairs; informational
    hops: List[Tuple[str, str]] = field(default_factory=list)
    #: request body bytes presented at the ingress
    request_bytes: int = 256

    @property
    def exchange_count(self) -> int:
        """Data exchanges per request (each hop = request + response)."""
        return 2 * len(self.hops)
