"""Tenants and function chains.

Palladium treats each function chain as an independent tenant (§3.1)
with an exclusive unified memory pool per node and a DWRR weight at the
DNE.  A :class:`ChainSpec` names the entry function and the expected
call structure (used by workload generators and documentation; the
actual call graph is encoded in the functions' handlers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..qos.policy import QOS_CLASSES, QOS_STANDARD

__all__ = ["Tenant", "ChainSpec"]


@dataclass
class Tenant:
    """One tenant: isolation domain + scheduling weight + QoS contract."""

    name: str
    weight: float = 1.0
    #: per-node pool sizing
    pool_buffers: int = 512
    buffer_bytes: int = 8192
    #: service class for graceful degradation under overload
    #: (see :mod:`repro.qos`); only read when QoS is enabled
    qos_class: str = QOS_STANDARD
    #: latency budget the admission gate protects (None: no deadline)
    deadline_us: Optional[float] = None
    #: token-bucket rate limit at the ingress (None: unlimited)
    rate_rps: Optional[float] = None
    burst: Optional[int] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.pool_buffers < 1:
            raise ValueError("tenant pool needs at least one buffer")
        if self.qos_class not in QOS_CLASSES:
            raise ValueError(
                f"unknown QoS class {self.qos_class!r}; "
                f"expected one of {QOS_CLASSES}"
            )


@dataclass
class ChainSpec:
    """A named function chain (one invocation path through an app)."""

    name: str
    tenant: str
    entry: str
    #: documented hops as (caller, callee) pairs; informational
    hops: List[Tuple[str, str]] = field(default_factory=list)
    #: request body bytes presented at the ingress
    request_bytes: int = 256

    @property
    def exchange_count(self) -> int:
        """Data exchanges per request (each hop = request + response)."""
        return 2 * len(self.hops)
