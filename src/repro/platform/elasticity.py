"""Function elasticity: replicas, scale-out/in, and termination churn.

The paper motivates Palladium's flexible provisioning with serverless
dynamics: "frequent configuration changes due to workload variation,
function placement and auto-scaling require corresponding flexibility
in provisioning of compute/network resources for each tenant" (§1).
This module supplies that churn:

* A :class:`ServiceGroup` maps a logical service name to its replica
  instances; callers invoke the *service*, and per-sender round-robin
  resolution spreads requests over replicas wherever they live.
* :meth:`ElasticPlatform.scale_out` deploys another replica (on any
  node) and publishes its routes through the coordinator; requests
  begin flowing to it immediately.
* :meth:`ElasticPlatform.scale_in` retires a replica: its routes are
  withdrawn first (new requests avoid it), then the instance drains.

The resolution hook lives in the I/O library, mirroring where the real
system's intra-node routing table lookup happens.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..sim import Environment

from .cluster import ServerlessPlatform
from .function import FunctionInstance, FunctionSpec

__all__ = ["ServiceGroup", "ElasticPlatform"]


class ServiceGroup:
    """A logical service and its live replica set."""

    def __init__(self, service: str):
        self.service = service
        self.replicas: List[str] = []
        self._rr = itertools.count()

    def pick(self) -> str:
        """Round-robin over live replicas."""
        if not self.replicas:
            raise LookupError(f"service {self.service!r} has no live replicas")
        return self.replicas[next(self._rr) % len(self.replicas)]

    def add(self, instance_id: str) -> None:
        self.replicas.append(instance_id)

    def remove(self, instance_id: str) -> None:
        self.replicas.remove(instance_id)

    def __len__(self) -> int:
        return len(self.replicas)


class ElasticPlatform(ServerlessPlatform):
    """A :class:`ServerlessPlatform` with replicated, scalable services.

    ``deploy_service`` replaces ``deploy`` for elastic functions; plain
    ``deploy`` still works for singletons (the two interoperate — a
    singleton may invoke a service and vice versa).
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.services: Dict[str, ServiceGroup] = {}
        self._replica_seq: Dict[str, itertools.count] = {}
        #: node -> replica ids pulled from rotation by a node failure
        self._failed_replicas: Dict[str, List[str]] = {}
        #: replica id -> its provisioned MR handle (paid spin-up path)
        self._mr_handles: Dict[str, object] = {}
        # Patch service resolution into every node's send path.
        for runtime in self.runtimes.values():
            runtime.resolve_service = self._resolve  # type: ignore[attr-defined]

    # -- service lifecycle -----------------------------------------------------
    def deploy_service(self, spec: FunctionSpec, node_name: str,
                       replicas: int = 1) -> List[FunctionInstance]:
        """Deploy a replicated service; returns its instances."""
        if spec.name in self.services:
            raise ValueError(f"service {spec.name!r} already deployed")
        self.services[spec.name] = ServiceGroup(spec.name)
        self._replica_seq[spec.name] = itertools.count()
        return [self.scale_out(spec, node_name) for _ in range(replicas)]

    def scale_out(self, spec: FunctionSpec, node_name: str) -> FunctionInstance:
        """Add one replica of an (already declared) service."""
        group = self.services.get(spec.name)
        if group is None:
            raise KeyError(f"unknown service {spec.name!r}; deploy_service first")
        index = next(self._replica_seq[spec.name])
        replica_spec = FunctionSpec(
            name=f"{spec.name}#{index}",
            tenant=spec.tenant,
            handler=spec.handler,
            work_us=spec.work_us,
            concurrency=spec.concurrency,
            response_bytes=spec.response_bytes,
        )
        instance = self.deploy(replica_spec, node_name)
        group.add(replica_spec.name)
        return instance

    def provision_replica(self, spec: FunctionSpec, node_name: str,
                          state_bytes: int = 1 << 20):
        """Generator: scale out one replica paying *real* setup costs.

        The honest counterpart of :meth:`scale_out` (which stays free
        and synchronous — the administrative record only).  This path
        walks the Swift-style control-plane bill a cold replica really
        pays before it can serve:

        1. declare placement (routes stay unpublished — no request can
           reach a half-provisioned replica);
        2. register the replica's working-set memory region with the
           node's RNIC (eager policy; the lazy policy defers to first
           use via the returned handle);
        3. establish/promote RC connections toward every live peer
           engine and the ingress;
        4. publish routes and join the service rotation.

        Returns ``(instance, mr_handle)``.
        """
        group = self.services.get(spec.name)
        if group is None:
            raise KeyError(f"unknown service {spec.name!r}; deploy_service first")
        index = next(self._replica_seq[spec.name])
        replica_spec = FunctionSpec(
            name=f"{spec.name}#{index}",
            tenant=spec.tenant,
            handler=spec.handler,
            work_us=spec.work_us,
            concurrency=spec.concurrency,
            response_bytes=spec.response_bytes,
        )
        instance = self.deploy(replica_spec, node_name, publish_routes=False)
        runtime = self.runtimes[node_name]
        cp = self.fabric.control_plane(node_name)
        handle = cp.mr_handle(spec.tenant, state_bytes)
        self._mr_handles[replica_spec.name] = handle
        if cp.wants_eager_mr:
            yield from handle.acquire(cpu=runtime.node.cpu)
        engine = self.engines.get(node_name)
        if engine is not None:
            peers = [n for n in sorted(self.engines)
                     if n != node_name and self.runtimes[n].alive]
            if "ingress" in self.fabric.nodes:
                peers.append("ingress")
            for peer in peers:
                yield from engine.conn_mgr.ensure_active(
                    peer, spec.tenant, fn=replica_spec.name)
        self.coordinator.function_published(replica_spec.name)
        group.add(replica_spec.name)
        return instance, handle

    def scale_in(self, service: str, instance_id: Optional[str] = None) -> str:
        """Retire one replica: withdraw routes, then let it drain.

        Returns the retired instance id.  In-flight requests already
        delivered to the replica complete normally; requests resolved
        after withdrawal go to the remaining replicas.
        """
        group = self.services.get(service)
        if group is None:
            raise KeyError(f"unknown service {service!r}")
        if len(group) <= 0:
            raise RuntimeError(f"service {service!r} has no replicas to retire")
        victim = instance_id or group.replicas[-1]
        group.remove(victim)
        # Coordinator withdraws routes cluster-wide; the instance object
        # stays alive to drain its queue (§3.5.5 termination events).
        self.coordinator.function_terminated(victim)
        # A provisioned replica releases its memory region so repeated
        # churn does not accrete MTT state (dereg itself is free).
        handle = self._mr_handles.pop(victim, None)
        if handle is not None:
            handle.release()
        return victim

    def replica_count(self, service: str) -> int:
        return len(self.services[service])

    # -- failover --------------------------------------------------------------
    def handle_node_failure(self, node_name: str) -> List[str]:
        """Remove replicas placed on a dead node from their services.

        Requests resolved afterwards round-robin over the surviving
        replicas only — the availability half of the failover story.
        Returns the replica ids taken out of rotation.
        """
        removed: List[str] = []
        for group in self.services.values():
            for rid in list(group.replicas):
                if self.coordinator.placement.get(rid) == node_name:
                    group.remove(rid)
                    removed.append(rid)
        self._failed_replicas[node_name] = removed
        return removed

    def handle_node_recovery(self, node_name: str) -> List[str]:
        """Put a recovered node's replicas back into rotation.

        Only replicas whose *authoritative placement* still points at
        the recovering node return: a replica live-migrated away during
        the outage was already re-placed (and is back in rotation on
        its new node) — resurrecting the stale record would split the
        service between a real instance and a ghost route.
        """
        candidates = self._failed_replicas.pop(node_name, [])
        restored: List[str] = []
        for rid in candidates:
            if self.coordinator.placement.get(rid) != node_name:
                continue  # migrated away while the node was down
            service = rid.rsplit("#", 1)[0]
            group = self.services.get(service)
            if group is not None and rid not in group.replicas:
                group.add(rid)
            restored.append(rid)
        return restored

    def crash_node(self, node_name: str, recovery: bool = True) -> None:
        super().crash_node(node_name, recovery=recovery)
        if recovery:
            self.handle_node_failure(node_name)

    def restart_node(self, node_name: str, recovery: bool = True) -> None:
        super().restart_node(node_name, recovery=recovery)
        if recovery:
            self.handle_node_recovery(node_name)

    # -- resolution hook (called from IoLibrary.send and gateways) -------------------
    def resolve_service(self, dst: str) -> str:
        """Logical service name -> live replica id (identity otherwise)."""
        group = self.services.get(dst)
        if group is None:
            return dst
        return group.pick()

    # backwards-compatible alias used by the runtime patch in __init__
    _resolve = resolve_service
