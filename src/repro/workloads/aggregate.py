"""Flow-aggregate load modeling: city-scale traffic without clients.

Every seed workload builds one Python object per client, which caps a
laptop run at a few thousand users.  This frontend models client
*classes* instead: an arrival process, payload mix, tenant, and
popularity skew describe an aggregate stream, and the per-flow state
collapses into *flow buckets* — a bucket stands for thousands of
clients whose flows share a popularity rank, so O(10^6) modeled
clients cost O(buckets) memory and O(epochs × buckets) time.

:class:`FlowAggregateModel` drives a
:class:`repro.ingress.tier.GatewayTier` with those streams in fixed
epochs (a fluid/flow-level approximation, the standard trick for
simulating scales a packet/request-level DES cannot reach):

* each epoch, every bucket's arrivals spray through the tier's
  consistent-hash ring to a gateway and split hot/cold against its
  flow table (hot = DPU fast path, cold = slow-path punt + install);
* gateways serve their hot/cold FIFO backlogs from per-epoch fast-
  and slow-path budgets; waiting time emerges from the backlog, and
  overflow past the queue bound is *rejected* (accounted, not lost);
* a gateway crash re-sprays only its buckets (consistent hashing),
  *redirects* its queued backlog to each bucket's successor, and
  ships its flow-table entries there after a sync window — lookups in
  the window punt cold rather than erroring.

The ledger is exact integers: ``admitted == completed + rejected +
inflight`` always, and after :meth:`drain` the inflight term is zero —
the conservation property the hypothesis tests pin down.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..ingress.tier import GatewayTier

__all__ = [
    "ClientClass",
    "FlowBucket",
    "FlowAggregateModel",
    "weighted_percentile",
]


@dataclass(frozen=True)
class ClientClass:
    """One aggregate client population.

    ``clients`` closed-over connections issuing ``rps_per_client``
    requests each, with flow popularity skewed Zipf(``zipf_s``) across
    ``buckets`` representative flow buckets (default: enough buckets
    that none exceeds ~1% of the class).
    """

    name: str
    tenant: str
    clients: int
    rps_per_client: float
    body_bytes: int = 256
    zipf_s: float = 1.1
    buckets: Optional[int] = None

    @property
    def rate_rps(self) -> float:
        return self.clients * self.rps_per_client

    def bucket_count(self) -> int:
        if self.buckets is not None:
            return max(1, min(self.buckets, self.clients))
        return max(1, min(128, self.clients))


class FlowBucket:
    """A cohort of same-rank flows from one class (the unit of spray)."""

    __slots__ = ("key", "tenant", "flows", "rate_rps", "body_bytes",
                 "acc", "owner")

    def __init__(self, key: Tuple[str, int], tenant: str, flows: int,
                 rate_rps: float, body_bytes: int):
        self.key = key
        self.tenant = tenant
        #: modeled clients/flows behind this bucket
        self.flows = flows
        self.rate_rps = rate_rps
        self.body_bytes = body_bytes
        #: fractional-arrival accumulator (exact integer emission)
        self.acc = 0.0
        #: cached ring assignment, invalidated on topology change
        self.owner: Optional[str] = None


def build_buckets(classes: Sequence[ClientClass]) -> List[FlowBucket]:
    """Expand client classes into Zipf-weighted flow buckets."""
    buckets: List[FlowBucket] = []
    for cls in classes:
        n = cls.bucket_count()
        weights = [1.0 / (i + 1) ** cls.zipf_s for i in range(n)]
        total_w = sum(weights)
        base, spare = divmod(cls.clients, n)
        for i, w in enumerate(weights):
            flows = base + (1 if i < spare else 0)
            if flows == 0:
                continue
            buckets.append(FlowBucket(
                key=(cls.name, i), tenant=cls.tenant, flows=flows,
                rate_rps=cls.rate_rps * w / total_w,
                body_bytes=cls.body_bytes))
    if not buckets:
        raise ValueError("no flow buckets (empty client classes?)")
    return buckets


def weighted_percentile(samples: Iterable[Tuple[float, float, int]],
                        p: float,
                        t0: Optional[float] = None,
                        t1: Optional[float] = None) -> float:
    """Nearest-rank percentile over ``(time, value, weight)`` samples,
    optionally restricted to completions inside ``[t0, t1)``."""
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rows = sorted(
        (value, weight) for time, value, weight in samples
        if (t0 is None or time >= t0) and (t1 is None or time < t1))
    total = sum(weight for _value, weight in rows)
    if total == 0:
        return 0.0
    target = max(1, math.ceil(p / 100.0 * total))
    running = 0
    for value, weight in rows:
        running += weight
        if running >= target:
            return value
    return rows[-1][0]


class _QueueItem:
    __slots__ = ("count", "bucket", "enq_time")

    def __init__(self, count: int, bucket: FlowBucket, enq_time: float):
        self.count = count
        self.bucket = bucket
        self.enq_time = enq_time


class FlowAggregateModel:
    """Epoch-driven fluid model of the gateway tier under aggregates.

    All rates are requests/second; all times microseconds.  Service
    capacity is per gateway: ``fastpath_rps`` for hot (pinned) flows,
    ``slowpath_rps`` for cold punts.  ``max_queue`` bounds each
    gateway's backlog; overflow is rejected at admission (the tail),
    never silently dropped.
    """

    def __init__(
        self,
        classes: Sequence[ClientClass],
        gateways: int,
        *,
        epoch_us: float = 1_000.0,
        fastpath_rps: float = 250_000.0,
        slowpath_rps: float = 25_000.0,
        table_capacity: int = 131_072,
        tenant_quota: Optional[int] = None,
        hot_us: float = 2.0,
        cold_us: float = 18.0,
        sync_us: float = 2_000.0,
        max_queue: int = 4_000,
        max_cold_queue: int = 500,
        vnodes: int = 32,
    ):
        if gateways < 1:
            raise ValueError("need at least one gateway")
        self.classes = list(classes)
        self.buckets = build_buckets(self.classes)
        self.epoch_us = epoch_us
        self.names = [f"gw{i}" for i in range(gateways)]
        self.tier = GatewayTier(
            self.names, table_capacity=table_capacity,
            tenant_quota=tenant_quota, vnodes=vnodes, sync_us=sync_us)
        self.fastpath_rps = fastpath_rps
        self.slowpath_rps = slowpath_rps
        self.hot_us = hot_us
        self.cold_us = cold_us
        self.max_queue = max_queue
        self.max_cold_queue = max_cold_queue
        self.now = 0.0
        #: per-gateway FIFO backlogs, split by path
        self._hot_q: Dict[str, Deque[_QueueItem]] = {
            n: deque() for n in self.names}
        self._cold_q: Dict[str, Deque[_QueueItem]] = {
            n: deque() for n in self.names}
        #: fractional service-budget carries (exact integer service)
        self._fast_carry: Dict[str, float] = {n: 0.0 for n in self.names}
        self._slow_carry: Dict[str, float] = {n: 0.0 for n in self.names}
        # -- the conservation ledger (exact integers) -------------------
        self.admitted = 0
        self.completed = 0
        self.rejected = 0
        #: requests re-queued at a successor after their gateway died
        #: (they still complete or get rejected — counted separately so
        #: failover accounting is visible, never double-counted)
        self.redirected = 0
        #: flow-table entries shipped to successors by failover sync
        self.flows_synced = 0
        #: (completion time, latency_us, count) for weighted percentiles
        self.samples: List[Tuple[float, float, int]] = []
        #: completion counts per epoch start time (goodput timeline)
        self.completions_at: Dict[float, int] = {}
        self._topology_epoch = -1
        self._epoch_index = 0

    @property
    def epochs(self) -> int:
        """Model epochs advanced so far (the fluid analogue of kernel
        events — benchmarks report ``model_epochs_per_sec`` because a
        fluid section processes *zero* discrete events)."""
        return self._epoch_index

    # -- derived facts --------------------------------------------------------
    @property
    def modeled_clients(self) -> int:
        return sum(cls.clients for cls in self.classes)

    @property
    def offered_rps(self) -> float:
        return sum(cls.rate_rps for cls in self.classes)

    def inflight(self) -> int:
        return sum(item.count for q in self._hot_q.values() for item in q) \
            + sum(item.count for q in self._cold_q.values() for item in q)

    def conserved(self) -> bool:
        """The ledger invariant: nothing is ever lost or double-counted."""
        return self.admitted == self.completed + self.rejected + self.inflight()

    def hot_ratio(self) -> float:
        c = self.tier.counters()
        total = c["flow_table_hits"] + c["flow_table_punts"]
        return c["flow_table_hits"] / total if total else 0.0

    def goodput_rps(self, t0: float, t1: float) -> float:
        """Completions per second over ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        done = sum(count for t, count in self.completions_at.items()
                   if t0 <= t < t1)
        return done * 1e6 / (t1 - t0)

    def percentile(self, p: float, t0: Optional[float] = None,
                   t1: Optional[float] = None) -> float:
        return weighted_percentile(self.samples, p, t0, t1)

    # -- events ---------------------------------------------------------------
    def crash_gateway(self, name: str) -> None:
        """Fail-stop one gateway: ring re-spray + backlog redirect +
        flow-table state sync to each flow's successor."""
        shard = self.tier.shards[name]
        if not shard.healthy:
            return
        moved = self.tier.fail_gateway(name, self.now)
        self.flows_synced += sum(moved.values())
        self._invalidate_owners()
        if not self.tier.live_shards():
            # no survivors: the backlog has nowhere to go — reject it
            # (accounted, not lost)
            for q in (self._hot_q[name], self._cold_q[name]):
                for item in q:
                    self.rejected += item.count
                q.clear()
            return
        # Redirect the dead gateway's backlog along the new ring
        # assignments; inherited work is cold at the successor until
        # the state sync lands.
        for q in (self._hot_q[name], self._cold_q[name]):
            for item in q:
                heir = self.tier.ring.lookup(item.bucket.key)
                self._cold_q[heir].append(item)
                self.redirected += item.count
            q.clear()

    def recover_gateway(self, name: str) -> None:
        self.tier.recover_gateway(name)
        self._invalidate_owners()

    def _invalidate_owners(self) -> None:
        for bucket in self.buckets:
            bucket.owner = None

    # -- the epoch loop -------------------------------------------------------
    def run(self, duration_us: float,
            events: Sequence[Tuple[float, str, str]] = (),
            drain: bool = True) -> "FlowAggregateModel":
        """Advance the model by ``duration_us``.

        ``events`` is a schedule of ``(at_us, kind, gateway)`` with
        kind ``"crash"`` or ``"recover"``, applied at epoch boundaries.
        With ``drain`` (default) arrival-free epochs run afterwards
        until every backlog empties, so the ledger closes exactly.
        """
        schedule = sorted(events)
        pending = list(schedule)
        end = self.now + duration_us
        while self.now < end - 1e-9:
            while pending and pending[0][0] <= self.now + 1e-9:
                _at, kind, target = pending.pop(0)
                if kind == "crash":
                    self.crash_gateway(target)
                elif kind == "recover":
                    self.recover_gateway(target)
                else:
                    raise ValueError(f"unknown event kind {kind!r}")
            self._epoch(arrivals=True)
        if drain:
            self.drain()
        return self

    def drain(self, max_epochs: int = 100_000) -> None:
        """Run arrival-free epochs until the backlog empties."""
        for _ in range(max_epochs):
            if self.inflight() == 0:
                return
            self._epoch(arrivals=False)
        raise RuntimeError("backlog failed to drain (capacity zero?)")

    def _epoch(self, arrivals: bool) -> None:
        now = self.now
        live = [n for n in self.names if self.tier.shards[n].healthy]
        if arrivals:
            self._admit(now, live)
        self._shed(live)
        self._serve(now, live)
        self.now = now + self.epoch_us
        self._epoch_index += 1

    def _admit(self, now: float, live: List[str]) -> None:
        per_epoch = self.epoch_us / 1e6
        for bucket in self.buckets:
            bucket.acc += bucket.rate_rps * per_epoch
            n = int(bucket.acc)
            if n == 0:
                continue
            bucket.acc -= n
            if not live:
                # total outage: arrivals are rejected at the edge
                self.admitted += n
                self.rejected += n
                continue
            if bucket.owner is None or bucket.owner not in self.tier.ring:
                bucket.owner = self.tier.ring.lookup(bucket.key)
            name = bucket.owner
            shard = self.tier.shards[name]
            self.tier.spray_total[name] += n
            self.admitted += n
            shard.absorb_pending(now)
            if shard.table.lookup(bucket.key, count=n):
                self._hot_q[name].append(_QueueItem(n, bucket, now))
            else:
                shard.table.install(bucket.key, bucket.tenant,
                                    size=bucket.flows)
                self._cold_q[name].append(_QueueItem(n, bucket, now))

    def _shed(self, live: List[str]) -> None:
        """Bounded queues: reject the newest overflow (the tail).

        The hot (fast-path) and cold (punt) backlogs are bounded
        separately — a real DPU punt queue is far shallower than the
        fast-path ring, which is what keeps the punt path from
        accumulating unbounded latency.
        """
        for name in live:
            for queue, bound in ((self._hot_q[name], self.max_queue),
                                 (self._cold_q[name], self.max_cold_queue)):
                excess = sum(i.count for i in queue) - bound
                while excess > 0 and queue:
                    tail = queue[-1]
                    shed = min(tail.count, excess)
                    tail.count -= shed
                    self.rejected += shed
                    excess -= shed
                    if tail.count == 0:
                        queue.pop()

    def _serve(self, now: float, live: List[str]) -> None:
        per_epoch = self.epoch_us / 1e6
        for name in live:
            for queue, carry, rps, service_us, cold in (
                (self._hot_q[name], self._fast_carry, self.fastpath_rps,
                 self.hot_us, False),
                (self._cold_q[name], self._slow_carry, self.slowpath_rps,
                 self.cold_us, True),
            ):
                budget_f = rps * per_epoch + carry[name]
                budget = int(budget_f)
                carry[name] = budget_f - budget
                done_here = 0
                while budget > 0 and queue:
                    head = queue[0]
                    served = min(head.count, budget)
                    head.count -= served
                    budget -= served
                    done_here += served
                    latency = (now - head.enq_time) + service_us
                    self.samples.append((now, latency, served))
                    if cold:
                        # the slow path installed the entry; the
                        # bucket is hot from the next epoch on (unless
                        # the tenant quota keeps rejecting it)
                        shard = self.tier.shards[name]
                        shard.table.install(head.bucket.key,
                                            head.bucket.tenant,
                                            size=head.bucket.flows)
                    if head.count == 0:
                        queue.popleft()
                if done_here:
                    self.completed += done_here
                    self.completions_at[now] = (
                        self.completions_at.get(now, 0) + done_here)
