"""Diurnal / bursty arrival-rate schedules.

Serverless traffic is famously spiky — the "workload variation" of §1
that motivates elastic provisioning.  :class:`RateSchedule` describes
an arrival-rate curve as piecewise-linear control points (optionally
with multiplicative noise) and :class:`ScheduledSource` drives an
open-loop source along it.  Together with the ingress and function
autoscalers this closes the loop on a realistic day-in-the-life run.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from ..sim import Environment, RateMeter

from .generator import OpenLoopSource

__all__ = ["RateSchedule", "ScheduledSource", "diurnal_schedule"]


class RateSchedule:
    """Piecewise-linear arrival rate over time.

    ``points`` are ``(time_us, rate_rps)`` control points, sorted by
    time; the rate is linearly interpolated between them and held flat
    outside the range.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if not points:
            raise ValueError("schedule needs at least one control point")
        times = [t for t, _ in points]
        if times != sorted(times):
            raise ValueError("control points must be sorted by time")
        if any(rate < 0 for _, rate in points):
            raise ValueError("rates must be non-negative")
        self.points = list(points)
        self._times = times

    def rate_at(self, time_us: float) -> float:
        """Interpolated arrival rate (RPS) at ``time_us``."""
        points = self.points
        if time_us <= points[0][0]:
            return points[0][1]
        if time_us >= points[-1][0]:
            return points[-1][1]
        index = bisect_right(self._times, time_us)
        t0, r0 = points[index - 1]
        t1, r1 = points[index]
        frac = (time_us - t0) / (t1 - t0)
        return r0 + frac * (r1 - r0)

    @property
    def peak(self) -> float:
        return max(rate for _, rate in self.points)

    @property
    def end_us(self) -> float:
        return self.points[-1][0]


def diurnal_schedule(day_us: float, base_rps: float, peak_rps: float,
                     lunch_dip: float = 0.6) -> RateSchedule:
    """A stylized work-day curve: ramp, morning peak, lunch dip,
    afternoon peak, evening fall."""
    if peak_rps < base_rps:
        raise ValueError("peak must be >= base")
    return RateSchedule([
        (0.00 * day_us, base_rps),
        (0.20 * day_us, peak_rps),            # morning peak
        (0.45 * day_us, peak_rps * lunch_dip),  # lunch dip
        (0.60 * day_us, peak_rps),            # afternoon peak
        (0.85 * day_us, base_rps),
        (1.00 * day_us, base_rps),
    ])


class ScheduledSource:
    """Drives an :class:`OpenLoopSource`'s rate along a schedule."""

    def __init__(self, env: Environment, source: OpenLoopSource,
                 schedule: RateSchedule, update_period_us: float = 10_000.0):
        self.env = env
        self.source = source
        self.schedule = schedule
        self.update_period_us = update_period_us
        self.rate_series = RateMeter("scheduled-rate")

    def run(self):
        """Generator: retune the source until the schedule ends."""
        start = self.env.now
        self.env.process(self.source.run(), name=f"{self.source.name}-loop")
        while self.env.now - start < self.schedule.end_us:
            rate = self.schedule.rate_at(self.env.now - start)
            self.source.rate_rps = max(1e-6, rate)
            yield self.env.timeout(self.update_period_us)
        self.source.stop()
