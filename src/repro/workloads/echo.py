"""Echo workloads used by the microbenchmarks (§4.1).

A client/server function pair deployed across the two worker nodes so
every request exercises the full inter-node data plane, plus a simple
single-function HTTP echo used by the ingress experiments (§4.1.3).
"""

from __future__ import annotations

from ..platform import FunctionSpec, ServerlessPlatform, Tenant

__all__ = ["deploy_echo_pair", "deploy_http_echo", "ECHO_TENANT"]

ECHO_TENANT = "echo"


def _echo(ctx, msg):
    """Zero-work echo: respond immediately with the request payload."""
    yield from ctx.respond(msg.payload, msg.size)


def deploy_echo_pair(
    platform: ServerlessPlatform,
    tenant: str = ECHO_TENANT,
    weight: float = 1.0,
    client_node: str = "worker0",
    server_node: str = "worker1",
    suffix: str = "",
    buffer_bytes: int = 8192,
):
    """Deploy an echo client/server pair across two nodes.

    Returns ``(client_instance, server_name)``; drive it with
    :class:`~repro.workloads.generator.DirectDriver`.  Size
    ``buffer_bytes`` to the largest payload the bench will send.
    """
    if tenant not in platform.tenants:
        platform.add_tenant(Tenant(tenant, weight=weight,
                                   buffer_bytes=buffer_bytes))
    client_name = f"echo-client{suffix}"
    server_name = f"echo-server{suffix}"
    client = platform.deploy(
        FunctionSpec(client_name, tenant, _echo, work_us=0.0), client_node
    )
    platform.deploy(
        FunctionSpec(server_name, tenant, _echo, work_us=0.0), server_node
    )
    return client, server_name


def deploy_http_echo(
    platform: ServerlessPlatform,
    tenant: str = ECHO_TENANT,
    node: str = "worker0",
    work_us: float = 5.0,
):
    """Deploy a single HTTP echo function (the §4.1.3 server).

    Returns the resolver the ingress needs.
    """
    if tenant not in platform.tenants:
        platform.add_tenant(Tenant(tenant))
    platform.deploy(
        FunctionSpec("http-echo", tenant, _echo, work_us=work_us), node
    )

    def resolver(path: str):
        return tenant, "http-echo"

    return resolver
