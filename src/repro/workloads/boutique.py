"""The Online Boutique microservices application (§4.3).

Ten functions and six user-facing chains, modeled on Google's
microservices demo the paper evaluates with.  Message sizes and
application-logic costs are representative of the demo's gRPC traffic;
the *call structure* (who invokes whom, how many data exchanges per
chain) matches the demo's call graph — each of the three evaluated
chains incurs more than 11 data exchanges, as the paper states.

Placement follows the paper: the potential hotspots (Frontend,
Checkout, Recommendation) on one node, the remaining seven on the
second node.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..platform import ChainSpec, FunctionSpec

__all__ = [
    "BOUTIQUE_TENANT",
    "BOUTIQUE_FUNCTIONS",
    "BOUTIQUE_PLACEMENT",
    "BOUTIQUE_CHAINS",
    "boutique_specs",
    "boutique_resolver",
    "deploy_boutique",
    "scattered_placement",
]

BOUTIQUE_TENANT = "boutique"

#: gRPC-ish message sizes (bytes)
_SZ = {
    "small": 128,
    "medium": 512,
    "list": 2048,
    "page": 4096,
}


# ---------------------------------------------------------------------------
# Handlers: the call graph of the demo app.
# ---------------------------------------------------------------------------

def _frontend(ctx, msg):
    """Route by operation; each branch is one user-facing chain."""
    op = (msg.payload or {}).get("op", "home") if isinstance(msg.payload, dict) else "home"
    yield from ctx.compute(70)
    if op == "home":
        yield from ctx.invoke("currency", {"rpc": "GetSupportedCurrencies"}, _SZ["small"])
        products = yield from ctx.invoke("productcatalog", {"rpc": "ListProducts"}, _SZ["small"])
        yield from ctx.invoke("cart", {"rpc": "GetCart"}, _SZ["small"])
        yield from ctx.invoke("recommendation", {"rpc": "ListRecommendations"}, _SZ["medium"])
        yield from ctx.invoke("ad", {"rpc": "GetAds"}, _SZ["small"])
        yield from ctx.invoke("currency", {"rpc": "Convert", "n": 9}, _SZ["medium"])
        yield from ctx.compute(80)
        yield from ctx.respond({"page": "home", "products": products.size}, _SZ["page"])
    elif op == "product":
        yield from ctx.invoke("productcatalog", {"rpc": "GetProduct"}, _SZ["small"])
        yield from ctx.invoke("currency", {"rpc": "Convert"}, _SZ["small"])
        yield from ctx.invoke("cart", {"rpc": "GetCart"}, _SZ["small"])
        yield from ctx.invoke("recommendation", {"rpc": "ListRecommendations"}, _SZ["medium"])
        yield from ctx.invoke("ad", {"rpc": "GetAds"}, _SZ["small"])
        yield from ctx.compute(40)
        yield from ctx.respond({"page": "product"}, _SZ["page"])
    elif op == "viewcart":
        yield from ctx.invoke("cart", {"rpc": "GetCart"}, _SZ["small"])
        yield from ctx.invoke("recommendation", {"rpc": "ListRecommendations"}, _SZ["medium"])
        yield from ctx.invoke("productcatalog", {"rpc": "GetProduct", "i": 0}, _SZ["small"])
        yield from ctx.invoke("productcatalog", {"rpc": "GetProduct", "i": 1}, _SZ["small"])
        yield from ctx.invoke("shipping", {"rpc": "GetQuote"}, _SZ["small"])
        yield from ctx.invoke("currency", {"rpc": "Convert", "n": 3}, _SZ["medium"])
        yield from ctx.compute(40)
        yield from ctx.respond({"page": "cart"}, _SZ["page"])
    elif op == "addcart":
        yield from ctx.invoke("productcatalog", {"rpc": "GetProduct"}, _SZ["small"])
        yield from ctx.invoke("cart", {"rpc": "AddItem"}, _SZ["small"])
        yield from ctx.respond({"page": "added"}, _SZ["medium"])
    elif op == "checkout":
        yield from ctx.invoke("checkout", {"rpc": "PlaceOrder"}, _SZ["medium"])
        yield from ctx.respond({"page": "order"}, _SZ["page"])
    elif op == "currency":
        yield from ctx.invoke("currency", {"rpc": "GetSupportedCurrencies"}, _SZ["small"])
        yield from ctx.respond({"page": "currencies"}, _SZ["medium"])
    else:
        yield from ctx.respond({"error": f"unknown op {op!r}"}, _SZ["small"])


def _recommendation(ctx, msg):
    """Recommendation consults the product catalog (nested invoke)."""
    yield from ctx.compute(88)
    yield from ctx.invoke("productcatalog", {"rpc": "ListProducts"}, _SZ["small"])
    yield from ctx.respond({"recommended": 4}, _SZ["medium"])


def _checkout(ctx, msg):
    """The order pipeline: the deepest chain in the demo."""
    yield from ctx.compute(100)
    yield from ctx.invoke("cart", {"rpc": "GetCart"}, _SZ["small"])
    yield from ctx.invoke("productcatalog", {"rpc": "GetProduct"}, _SZ["small"])
    yield from ctx.invoke("currency", {"rpc": "Convert"}, _SZ["small"])
    yield from ctx.invoke("shipping", {"rpc": "ShipOrder"}, _SZ["small"])
    yield from ctx.invoke("payment", {"rpc": "Charge"}, _SZ["small"])
    yield from ctx.invoke("email", {"rpc": "SendOrderConfirmation"}, _SZ["medium"])
    yield from ctx.invoke("cart", {"rpc": "EmptyCart"}, _SZ["small"])
    yield from ctx.respond({"order": "ok"}, _SZ["medium"])


def _leaf(work_us: float, response_bytes: int):
    """Factory for leaf services: compute, respond."""
    def handler(ctx, msg):
        yield from ctx.compute(work_us)
        yield from ctx.respond({"ok": True, "rpc": (msg.payload or {}).get("rpc")},
                               response_bytes)
    return handler


#: function name -> (handler, work_us, node placement key)
BOUTIQUE_FUNCTIONS: Dict[str, Tuple] = {
    "frontend": (_frontend, 18),
    "checkout": (_checkout, 25),
    "recommendation": (_recommendation, 22),
    "productcatalog": (_leaf(60, _SZ["list"]), 60),
    "currency": (_leaf(40, _SZ["small"]), 40),
    "cart": (_leaf(55, _SZ["small"]), 55),
    "shipping": (_leaf(48, _SZ["small"]), 48),
    "payment": (_leaf(64, _SZ["small"]), 64),
    "email": (_leaf(70, _SZ["small"]), 70),
    "ad": (_leaf(30, _SZ["medium"]), 30),
}

#: the paper's placement: hotspots on one node, the rest on the other
BOUTIQUE_PLACEMENT: Dict[str, str] = {
    "frontend": "worker0",
    "checkout": "worker0",
    "recommendation": "worker0",
    "productcatalog": "worker1",
    "currency": "worker1",
    "cart": "worker1",
    "shipping": "worker1",
    "payment": "worker1",
    "email": "worker1",
    "ad": "worker1",
}

BOUTIQUE_CHAINS: List[ChainSpec] = [
    ChainSpec("Home Query", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "currency"), ("frontend", "productcatalog"),
                    ("frontend", "cart"), ("frontend", "recommendation"),
                    ("recommendation", "productcatalog"), ("frontend", "ad"),
                    ("frontend", "currency")]),
    ChainSpec("Product Query", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "productcatalog"), ("frontend", "currency"),
                    ("frontend", "cart"), ("frontend", "recommendation"),
                    ("recommendation", "productcatalog"), ("frontend", "ad")]),
    ChainSpec("View Cart", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "cart"), ("frontend", "recommendation"),
                    ("recommendation", "productcatalog"),
                    ("frontend", "productcatalog"), ("frontend", "productcatalog"),
                    ("frontend", "shipping"), ("frontend", "currency")]),
    ChainSpec("Add to Cart", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "productcatalog"), ("frontend", "cart")]),
    ChainSpec("Checkout", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "checkout"), ("checkout", "cart"),
                    ("checkout", "productcatalog"), ("checkout", "currency"),
                    ("checkout", "shipping"), ("checkout", "payment"),
                    ("checkout", "email"), ("checkout", "cart")]),
    ChainSpec("Set Currency", BOUTIQUE_TENANT, "frontend",
              hops=[("frontend", "currency")]),
]

#: HTTP path -> frontend operation for the three evaluated chains
CHAIN_PATHS = {
    "Home Query": "/home",
    "Product Query": "/product",
    "View Cart": "/viewcart",
    "Add to Cart": "/addcart",
    "Checkout": "/checkout",
    "Set Currency": "/currency",
}


def boutique_specs() -> List[FunctionSpec]:
    """Function specs for all ten services."""
    return [
        FunctionSpec(name, BOUTIQUE_TENANT, handler, work_us=work)
        for name, (handler, work) in BOUTIQUE_FUNCTIONS.items()
    ]


def boutique_resolver(path: str) -> Tuple[str, str]:
    """Ingress resolver: every boutique path enters at the frontend."""
    return BOUTIQUE_TENANT, "frontend"


def path_payload(path: str) -> dict:
    """Request body for a chain path (frontend routes on 'op')."""
    return {"op": path.strip("/") or "home"}


def deploy_boutique(platform, single_node: bool = False,
                    placement: Dict[str, str] = None) -> None:
    """Deploy all ten functions.

    Default is the paper's placement; ``single_node`` forces everything
    onto worker0 (the NightCore configuration); ``placement`` overrides
    per function (used by the placement-sensitivity ablation).
    """
    chosen = placement or BOUTIQUE_PLACEMENT
    for spec in boutique_specs():
        node = "worker0" if single_node else chosen[spec.name]
        platform.deploy(spec, node)


def scattered_placement() -> Dict[str, str]:
    """Worst-case placement: every frontend dependency remote."""
    return {
        "frontend": "worker0",
        "checkout": "worker1",
        "recommendation": "worker1",
        "productcatalog": "worker1",
        "currency": "worker1",
        "cart": "worker1",
        "shipping": "worker1",
        "payment": "worker1",
        "email": "worker1",
        "ad": "worker1",
    }
