"""Multi-tenant contention traces (Fig. 15).

The paper's tenancy experiment runs three tenants with weights 6:1:2
over a four-minute window:

* Tenant-1 is active throughout;
* Tenant-2 joins at 20 s and exits at 3 m 20 s, generating periodic
  surges;
* Tenant-3 runs between 1 m 30 s and 2 m 30 s and is slightly more
  bursty.

:class:`TenantTrace` encodes an activity window plus a surge pattern;
:func:`fig15_traces` returns the paper's exact configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import SEC

__all__ = ["TenantTrace", "fig15_traces"]


@dataclass(frozen=True)
class TenantTrace:
    """Offered-load description for one tenant."""

    tenant: str
    weight: float
    start_us: float
    end_us: float
    #: closed-loop driver connections while active (offered concurrency)
    concurrency: int
    #: surge period; 0 = steady offered load
    surge_period_us: float = 0.0
    #: fraction of the surge period at full concurrency (the rest idles
    #: at `baseline_fraction` of the drivers)
    surge_duty: float = 1.0
    baseline_fraction: float = 0.3

    def active(self, now_us: float) -> bool:
        """Is the tenant inside its activity window?"""
        return self.start_us <= now_us < self.end_us

    def drivers_at(self, now_us: float) -> int:
        """Concurrency the tenant offers at ``now_us``."""
        if not self.active(now_us):
            return 0
        if self.surge_period_us <= 0:
            return self.concurrency
        phase = ((now_us - self.start_us) % self.surge_period_us) / self.surge_period_us
        if phase < self.surge_duty:
            return self.concurrency
        return max(1, int(self.concurrency * self.baseline_fraction))


def fig15_traces(concurrency: int = 48) -> List[TenantTrace]:
    """The paper's three-tenant contention pattern (weights 6:1:2)."""
    return [
        TenantTrace("tenant-1", weight=6.0, start_us=0.0, end_us=240 * SEC,
                    concurrency=concurrency),
        TenantTrace("tenant-2", weight=1.0, start_us=20 * SEC, end_us=200 * SEC,
                    concurrency=concurrency, surge_period_us=30 * SEC,
                    surge_duty=0.6),
        TenantTrace("tenant-3", weight=2.0, start_us=90 * SEC, end_us=150 * SEC,
                    concurrency=concurrency, surge_period_us=15 * SEC,
                    surge_duty=0.5),
    ]
