"""Load generation: wrk-style closed-loop HTTP clients and direct drivers.

The paper loads the system with ``wrk`` (§4): closed-loop connections
that keep exactly one request outstanding each.  :class:`ClientFleet`
reproduces that, including Fig. 14's ramp mode (a new client every 10
seconds, each client holding several connections) and disconnect-on-
timeout behaviour under overload ("most of the clients becoming
disconnected due to the lack of a response").

:class:`DirectDriver` skips HTTP entirely and drives a deployed
function pair through the platform API — used by the microbenchmarks
(Fig. 11, Fig. 15) that measure the data plane without the ingress.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..hw import Cluster
from ..net import HttpRequest
from ..sim import AnyOf, Environment, LatencyStats, RateMeter

__all__ = ["ClosedLoopClient", "ClientFleet", "DirectDriver", "OpenLoopSource"]


class ClosedLoopClient:
    """One wrk connection: send, wait for the response, repeat."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        gateway,
        path: str = "/",
        body_bytes: int = 256,
        think_us: float = 0.0,
        timeout_us: Optional[float] = None,
        payload: Any = "x",
        name: str = "client",
        reconnect: bool = False,
        reconnect_us: float = 10_000.0,
    ):
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.path = path
        self.body_bytes = body_bytes
        self.think_us = think_us
        self.timeout_us = timeout_us
        self.payload = payload
        self.name = name
        #: instead of wrk's permanent disconnect on timeout, tear the
        #: connection down and dial again after ``reconnect_us`` —
        #: needed to observe goodput *recovery* after a fault clears.
        self.reconnect = reconnect
        self.reconnect_us = reconnect_us
        self.latency = LatencyStats(name)
        self.completed = 0
        self.errors = 0
        #: non-200 responses (the gateway's QoS admission gate shed us)
        self.rejected = 0
        self.reconnects = 0
        self.disconnected = False
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    def run(self, max_requests: Optional[int] = None):
        """Generator: the closed request loop."""
        conn = self.gateway.connect()
        while not self._stop and not self.disconnected:
            if max_requests is not None and self.completed + self.errors >= max_requests:
                break
            request = HttpRequest(self.path, body=self.payload,
                                  body_bytes=self.body_bytes)
            t0 = self.env.now
            yield from self.cluster.ether_up.transmit(request.wire_bytes)
            self.gateway.submit(conn, request)
            response_event = conn.inbox.get()
            if self.timeout_us is None:
                response = yield response_event
            else:
                timeout = self.env.timeout(self.timeout_us)
                yield AnyOf(self.env, [response_event, timeout])
                if not response_event.triggered:
                    self.errors += 1
                    conn.open = False
                    if not self.reconnect:
                        # wrk gives up on the connection: disconnect.
                        self.disconnected = True
                        break
                    # Tear down and dial again after a pause.
                    yield self.env.timeout(self.reconnect_us)
                    conn = self.gateway.connect()
                    self.reconnects += 1
                    continue
                response = response_event.value
            if getattr(response, "status", 200) != 200:
                # Shed at the gate (503): immediately retry, like wrk —
                # a rejection is not a completion and records no latency.
                self.rejected += 1
                continue
            self.latency.record(self.env.now - t0)
            self.completed += 1
            if self.think_us:
                yield self.env.timeout(self.think_us)
        conn.open = False


class ClientFleet:
    """A set of closed-loop clients, optionally ramped over time."""

    def __init__(self, env: Environment, cluster: Cluster, gateway,
                 stats_bucket_us: float = 1_000_000.0, **client_kwargs):
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.client_kwargs = client_kwargs
        self.clients: List[ClosedLoopClient] = []
        self.throughput = RateMeter("fleet-rps", bucket=stats_bucket_us)

    def spawn(self, count: int = 1, connections_per_client: int = 1) -> None:
        """Start ``count`` clients, each with several connections."""
        for _ in range(count):
            for _ in range(connections_per_client):
                client = ClosedLoopClient(
                    self.env, self.cluster, self.gateway,
                    name=f"client{len(self.clients)}", **self.client_kwargs,
                )
                self.clients.append(client)
                self.env.process(self._instrumented(client), name=client.name)

    def _instrumented(self, client: ClosedLoopClient):
        conn = client.gateway.connect()
        while not client._stop and not client.disconnected:
            request = HttpRequest(client.path, body=client.payload,
                                  body_bytes=client.body_bytes)
            t0 = self.env.now
            yield from self.cluster.ether_up.transmit(request.wire_bytes)
            client.gateway.submit(conn, request)
            response_event = conn.inbox.get()
            if client.timeout_us is None:
                response = yield response_event
            else:
                timeout = self.env.timeout(client.timeout_us)
                yield AnyOf(self.env, [response_event, timeout])
                if not response_event.triggered:
                    client.errors += 1
                    conn.open = False
                    if not client.reconnect:
                        client.disconnected = True
                        break
                    yield self.env.timeout(client.reconnect_us)
                    conn = client.gateway.connect()
                    client.reconnects += 1
                    continue
                response = response_event.value
            if getattr(response, "status", 200) != 200:
                client.rejected += 1
                continue
            client.latency.record(self.env.now - t0)
            client.completed += 1
            self.throughput.record(self.env.now)
            if client.think_us:
                yield self.env.timeout(client.think_us)
        conn.open = False

    def ramp(self, interval_us: float, clients_per_step: int = 1,
             connections_per_client: int = 1, steps: int = 10):
        """Generator: add clients periodically (the Fig. 14 ramp)."""
        for _ in range(steps):
            self.spawn(clients_per_step, connections_per_client)
            yield self.env.timeout(interval_us)

    def stop_all(self) -> None:
        for client in self.clients:
            client.stop()

    # -- aggregate metrics ---------------------------------------------------
    def total_completed(self) -> int:
        return sum(c.completed for c in self.clients)

    def total_errors(self) -> int:
        return sum(c.errors for c in self.clients)

    def total_rejected(self) -> int:
        return sum(c.rejected for c in self.clients)

    def disconnected_count(self) -> int:
        return sum(1 for c in self.clients if c.disconnected)

    def mean_latency_us(self) -> float:
        samples = [s for c in self.clients for s in c.latency.samples]
        return sum(samples) / len(samples) if samples else 0.0

    def rps(self, start_us: float, end_us: float) -> float:
        """Aggregate completions per *second* over a window."""
        return self.throughput.rate(start_us, end_us) * 1_000_000.0


class OpenLoopSource:
    """Open-loop (Poisson) request source against a gateway.

    Unlike the closed-loop wrk clients, an open-loop source keeps
    offering load regardless of completions — the arrival pattern that
    exposes overload collapse (requests pile up instead of the source
    self-throttling).  Used for bursty-tenant and overload studies.
    """

    def __init__(self, env: Environment, cluster: Cluster, gateway,
                 rate_rps: float, path: str = "/", body_bytes: int = 256,
                 payload: Any = "x", rng=None, name: str = "open-source",
                 stats_bucket_us: float = 1_000_000.0,
                 deadline_us: Optional[float] = None):
        if rate_rps <= 0:
            raise ValueError("arrival rate must be positive")
        self.env = env
        self.cluster = cluster
        self.gateway = gateway
        self.rate_rps = rate_rps
        self.path = path
        self.body_bytes = body_bytes
        self.payload = payload
        self.rng = rng
        self.name = name
        #: SLO used to classify completions: a 200 after the deadline
        #: is *late* (not goodput) — the distinction overload studies
        #: are about
        self.deadline_us = deadline_us
        self.latency = LatencyStats(name)
        self.throughput = RateMeter(name, bucket=stats_bucket_us)
        self.goodput = RateMeter(f"{name}-good", bucket=stats_bucket_us)
        self.offered = 0
        self.completed = 0
        #: in-deadline 200s / deadline-missing 200s / non-200 sheds
        self.good = 0
        self.late = 0
        self.rejected = 0
        self._t0: dict = {}
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    def _interarrival_us(self) -> float:
        mean = 1e6 / self.rate_rps
        if self.rng is None:
            return mean  # deterministic arrivals
        return self.rng.expovariate(1.0 / mean)

    def run(self, until_us: Optional[float] = None):
        """Generator: emit requests at the configured rate.

        Emission is open-loop: the Ethernet transit of each request is
        spawned asynchronously, so the arrival process never slows down
        with the system (that is the point of open-loop load).
        """
        conn = self.gateway.connect()
        self.env.process(self._collector(conn), name=f"{self.name}-rx")
        while not self._stop:
            if until_us is not None and self.env.now >= until_us:
                break
            yield self.env.timeout(self._interarrival_us())
            request = HttpRequest(self.path, body=self.payload,
                                  body_bytes=self.body_bytes)
            request.headers["t0"] = self.env.now
            self._t0[request.request_id] = self.env.now
            self.offered += 1
            self.env.process(self._emit(conn, request),
                             name=f"{self.name}-tx")
        conn.open = False

    def _emit(self, conn, request):
        yield from self.cluster.ether_up.transmit(request.wire_bytes)
        self.gateway.submit(conn, request)

    def _collector(self, conn):
        while not self._stop:
            response = yield conn.inbox.get()
            self.completed += 1
            self.throughput.record(self.env.now)
            t0 = self._t0.pop(getattr(response, "request_id", None), None)
            if getattr(response, "status", 200) != 200:
                self.rejected += 1
                continue
            latency = None if t0 is None else self.env.now - t0
            if latency is not None:
                self.latency.record(latency)
            if (self.deadline_us is not None and latency is not None
                    and latency > self.deadline_us):
                self.late += 1
                continue
            self.good += 1
            self.goodput.record(self.env.now)

    # -- aggregate metrics ---------------------------------------------------
    def lost(self) -> int:
        """Requests that never produced any response (dropped in-flight)."""
        return len(self._t0)

    def goodput_rps(self, start_us: float, end_us: float) -> float:
        """In-deadline completions per *second* over a window."""
        return self.goodput.rate(start_us, end_us) * 1_000_000.0


class DirectDriver:
    """Closed-loop driver invoking a function pair without an ingress."""

    def __init__(self, env: Environment, client_fn, dst_fn: str,
                 payload: Any = "ping", size: int = 64, name: str = "driver",
                 stats_bucket_us: float = 1_000_000.0):
        self.env = env
        self.client_fn = client_fn
        self.dst_fn = dst_fn
        self.payload = payload
        self.size = size
        self.name = name
        self.latency = LatencyStats(name)
        self.throughput = RateMeter(name, bucket=stats_bucket_us)
        self.completed = 0
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    def run(self, max_requests: Optional[int] = None, until_us: Optional[float] = None):
        """Generator: closed-loop invoke of ``dst_fn`` via ``client_fn``."""
        while not self._stop:
            if max_requests is not None and self.completed >= max_requests:
                break
            if until_us is not None and self.env.now >= until_us:
                break
            t0 = self.env.now
            yield from self.client_fn.invoke(self.dst_fn, self.payload, self.size)
            self.latency.record(self.env.now - t0)
            self.throughput.record(self.env.now)
            self.completed += 1
