"""Workloads: load generators, echo pairs, Online Boutique, tenant traces."""

from .boutique import (
    BOUTIQUE_CHAINS,
    BOUTIQUE_FUNCTIONS,
    BOUTIQUE_PLACEMENT,
    BOUTIQUE_TENANT,
    CHAIN_PATHS,
    boutique_resolver,
    boutique_specs,
    deploy_boutique,
    path_payload,
)
from .aggregate import (
    ClientClass,
    FlowAggregateModel,
    FlowBucket,
    build_buckets,
    weighted_percentile,
)
from .diurnal import RateSchedule, ScheduledSource, diurnal_schedule
from .echo import ECHO_TENANT, deploy_echo_pair, deploy_http_echo
from .generator import ClientFleet, ClosedLoopClient, DirectDriver, OpenLoopSource
from .traces import TenantTrace, fig15_traces

__all__ = [
    "BOUTIQUE_CHAINS",
    "BOUTIQUE_FUNCTIONS",
    "BOUTIQUE_PLACEMENT",
    "BOUTIQUE_TENANT",
    "CHAIN_PATHS",
    "ClientClass",
    "ClientFleet",
    "ClosedLoopClient",
    "DirectDriver",
    "FlowAggregateModel",
    "FlowBucket",
    "build_buckets",
    "weighted_percentile",
    "ECHO_TENANT",
    "TenantTrace",
    "boutique_resolver",
    "boutique_specs",
    "deploy_boutique",
    "deploy_echo_pair",
    "deploy_http_echo",
    "OpenLoopSource",
    "RateSchedule",
    "ScheduledSource",
    "diurnal_schedule",
    "fig15_traces",
    "path_payload",
]
