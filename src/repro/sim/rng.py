"""Deterministic random-number streams.

Every stochastic component (load generators, bursty tenant traces,
service-time jitter) draws from its own named stream derived from a
single experiment seed, so adding a new consumer never perturbs the
draws seen by existing ones and runs are exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. per repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
