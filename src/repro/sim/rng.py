"""Deterministic random-number streams.

Every stochastic component (load generators, bursty tenant traces,
service-time jitter) draws from its own named stream derived from a
single experiment seed, so adding a new consumer never perturbs the
draws seen by existing ones and runs are exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngRegistry", "FAULT_STREAM"]

#: Dedicated stream name for fault-schedule jitter.  Fault injection
#: draws *only* from this stream so that (a) enabling a fault plan
#: never perturbs the draws seen by workload generators and (b) the
#: same seed + plan replays a byte-identical fault trace.
FAULT_STREAM = "faults"


class RngRegistry:
    """Factory of named, independently seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def faults(self) -> random.Random:
        """The dedicated fault-injection stream (see :data:`FAULT_STREAM`)."""
        return self.stream(FAULT_STREAM)

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. per repetition)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
