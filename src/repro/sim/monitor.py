"""Measurement helpers: time series, counters, latency statistics.

Every experiment in the reproduction reports either a rate (requests
per second), a latency distribution, or a utilization time series.
These helpers centralize that bookkeeping so experiment code stays
declarative.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TimeSeries", "LatencyStats", "RateMeter", "UtilizationTracker", "summarize"]


class TimeSeries:
    """An append-only sequence of ``(time, value)`` samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self.times and time < self.times[-1]:
            raise ValueError("time series samples must be chronological")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def mean(self) -> float:
        """Arithmetic mean of the sample values."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent ``(time, value)`` sample, if any."""
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def window_mean(self, start: float, end: float) -> float:
        """Mean of samples whose timestamp lies in ``[start, end)``."""
        vals = [v for t, v in zip(self.times, self.values) if start <= t < end]
        return sum(vals) / len(vals) if vals else 0.0


class LatencyStats:
    """Collects latency samples and reports summary statistics."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []
        #: sorted view, computed lazily and invalidated on record() so
        #: repeated p50/p99/max summaries don't re-sort large runs
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        """Add one latency sample (same unit as the simulation clock)."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self.samples.append(latency)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        """Mean latency, 0 if no samples."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile ``p`` in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        ordered = self._sorted
        rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0


class RateMeter:
    """Counts discrete completions and converts them to rates.

    ``bucket`` groups completions into fixed windows so experiments can
    plot throughput over time (e.g. Fig. 14/15 time series).
    """

    def __init__(self, name: str = "", bucket: float = 1_000_000.0):
        self.name = name
        self.bucket = bucket
        #: fine-grained internal resolution so `rate()` stays accurate
        #: for windows smaller than the reporting bucket
        self.resolution = min(bucket, 10_000.0)
        self.count = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None
        self._fine: Dict[int, int] = {}

    def record(self, time: float, n: int = 1) -> None:
        """Register ``n`` completions at simulated ``time``."""
        if self.first_time is None:
            self.first_time = time
        self.last_time = time
        self.count += n
        idx = int(time // self.resolution)
        self._fine[idx] = self._fine.get(idx, 0) + n

    def rate(self, start: float, end: float) -> float:
        """Completions per time unit over ``[start, end)`` wall window.

        Buckets that only partially overlap the window contribute
        proportionally to the overlap, so short or unaligned windows are
        not skewed by whole-bucket counting at the edges.
        """
        if end <= start:
            return 0.0
        res = self.resolution
        n = 0.0
        for idx, c in self._fine.items():
            b0 = idx * res
            overlap = min(end, b0 + res) - max(start, b0)
            if overlap > 0:
                n += c if overlap >= res else c * (overlap / res)
        return n / (end - start)

    def series(self) -> TimeSeries:
        """Per-bucket throughput as a time series (rate per time unit)."""
        coarse: Dict[int, int] = {}
        for idx, c in self._fine.items():
            cidx = int(idx * self.resolution // self.bucket)
            coarse[cidx] = coarse.get(cidx, 0) + c
        ts = TimeSeries(self.name)
        for cidx in sorted(coarse):
            ts.record(cidx * self.bucket, coarse[cidx] / self.bucket)
        return ts


class UtilizationTracker:
    """Tracks busy/idle intervals of a logical worker.

    Distinguishes *occupied* time (core held, e.g. a busy-poll loop)
    from *useful* time (cycles spent on actual data-plane work) — the
    distinction Palladium's ingress autoscaler measures (§3.6).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.busy_since: Optional[float] = None
        self.occupied = 0.0
        self.useful = 0.0

    def begin_busy(self, time: float) -> None:
        """Mark the worker as occupying its core starting at ``time``."""
        if self.busy_since is None:
            self.busy_since = time

    def end_busy(self, time: float) -> None:
        """Mark the worker as releasing its core at ``time``."""
        if self.busy_since is not None:
            self.occupied += time - self.busy_since
            self.busy_since = None

    def add_useful(self, duration: float) -> None:
        """Account ``duration`` of genuinely useful work."""
        self.useful += duration

    def occupied_time(self, now: float) -> float:
        """Total core-occupied time up to ``now``."""
        extra = (now - self.busy_since) if self.busy_since is not None else 0.0
        return self.occupied + extra

    def useful_fraction(self, now: float, since: float = 0.0) -> float:
        """Useful work as a fraction of elapsed wall time since ``since``."""
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.useful / elapsed)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Small helper returning mean/min/max of a sequence."""
    if not values:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
