"""Discrete-event simulation substrate for the Palladium reproduction."""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import LatencyStats, RateMeter, TimeSeries, UtilizationTracker
from .resources import FilterStore, Request, Resource, Store
from .rng import FAULT_STREAM, RngRegistry
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "FAULT_STREAM",
    "FilterStore",
    "Interrupt",
    "LatencyStats",
    "Process",
    "RateMeter",
    "Request",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "UtilizationTracker",
]
