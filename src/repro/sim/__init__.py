"""Discrete-event simulation substrate for the Palladium reproduction."""

from .core import (
    AllOf,
    AnyOf,
    CalendarQueue,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    set_default_scheduler,
)
from .monitor import LatencyStats, RateMeter, TimeSeries, UtilizationTracker
from .resources import FilterStore, Request, Resource, Store
from .rng import FAULT_STREAM, RngRegistry
from .trace import TraceRecord, Tracer
from .wheel import PeriodicTimer, TimerHandle, TimerWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "FAULT_STREAM",
    "FilterStore",
    "Interrupt",
    "LatencyStats",
    "PeriodicTimer",
    "Process",
    "RateMeter",
    "Request",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "TimeSeries",
    "Timeout",
    "TimerHandle",
    "TimerWheel",
    "TraceRecord",
    "Tracer",
    "UtilizationTracker",
    "set_default_scheduler",
]
