"""Shared-resource primitives for the simulation kernel.

Provides SimPy-style resources used throughout the reproduction:

* :class:`Resource` — a server with fixed capacity and a FIFO (or
  priority) wait queue.  CPU cores, DMA engines and NIC processing
  pipelines are built on this.
* :class:`Store` — an unbounded/bounded FIFO of items with blocking
  ``get``.  Message queues, completion queues and rings are built on
  this.
* :class:`FilterStore` — a store whose ``get`` can wait for an item
  matching a predicate (used e.g. to wait for a specific completion).

Hot-path notes (docs/PERFORMANCE.md): stores keep their items and
waiter lists in :class:`collections.deque` so the FIFO pop is O(1);
immediately-satisfiable ``get``\\ s reuse pooled ``_GetEvent`` objects
via :meth:`Environment.completed_event`; ``Resource.request`` builds
the grant without an ``__init__`` chain and only sorts its wait queue
when a priority actually arrives out of order.

Batched draining: :meth:`Store.drain_ready` (non-blocking, returns a
list) and :meth:`Store.poll_batch` (blocking, fires with a non-empty
list) let one consumer wakeup take every ready item — a polling loop
built on them costs one generator round-trip per *burst* instead of
one per item.  Batch getters always take items in FIFO arrival order;
on :class:`FilterStore` they bypass predicates (a CQ drain wants every
completion, not a matching one).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "Request", "Store", "FilterStore"]


class _PutEvent(Event):
    """Internal: a pending Store.put carrying its item."""

    __slots__ = ("item",)


class _GetEvent(Event):
    """Internal: a pending Store.get, optionally with a predicate."""

    __slots__ = ("predicate",)

    #: fast-path gets are kernel-recycled once their value is delivered
    _poolable = True
    #: batch getters are dispatched with a list of items, not one item
    _batch = False


class _BatchGetEvent(_GetEvent):
    """Internal: a pending Store.poll_batch; fires with a list of items."""

    __slots__ = ("limit",)

    _batch = True


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._seq += 1
        self.key = (priority, resource._seq)


class Resource:
    """A server with ``capacity`` identical slots and a wait queue.

    Requests are granted in ``(priority, FIFO)`` order; lower priority
    values are served first.  The holder must call :meth:`release` with
    the granted request.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.users: List[Request] = []
        self.queue: List[Request] = []
        self._seq = 0
        # busy-time accounting for utilization reports
        self._busy_area = 0.0
        self._last_change = env.now

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def _account(self) -> None:
        now = self.env._now
        self._busy_area += len(self.users) * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Aggregate slot-busy time (slot-microseconds) so far."""
        self._account()
        return self._busy_area

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of capacity in use since time ``since``."""
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        return self.busy_time() / (elapsed * self.capacity)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        env = self.env
        users = self.users
        # inlined _account()
        now = env._now
        self._busy_area += len(users) * (now - self._last_change)
        self._last_change = now
        # Build the grant without the Event/Request __init__ chain.
        req = Request.__new__(Request)
        req.env = env
        req._value = None
        req.defused = False
        req.resource = self
        req.priority = priority
        if len(users) < self.capacity and not self.queue:
            users.append(req)
            # Fast path: granted immediately, no trip through the heap;
            # the FIFO key is never compared for immediate grants.
            req.key = None
            req._ok = True
            req._triggered = True
            req._processed = True
            req.callbacks = None
        else:
            self._seq += 1
            req.key = (priority, self._seq)
            req._ok = True
            req._triggered = False
            req._processed = False
            req.callbacks = []
            queue = self.queue
            queue.append(req)
            # FIFO arrivals are already in key order; only an actual
            # priority inversion pays for the (stable) sort.
            if len(queue) > 1 and queue[-2].key > req.key:
                queue.sort(key=lambda r: r.key)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        users = self.users
        # inlined _account()
        now = self.env._now
        self._busy_area += len(users) * (now - self._last_change)
        self._last_change = now
        try:
            users.remove(request)
        except ValueError:
            raise SimulationError(f"release of non-held request on {self.name!r}")
        queue = self.queue
        while queue and len(users) < self.capacity:
            nxt = queue.pop(0)
            users.append(nxt)
            nxt.succeed()

    def cancel(self, request: Request) -> None:
        """Withdraw a queued (not yet granted) request."""
        if request in self.queue:
            self.queue.remove(request)
        elif request in self.users:
            self.release(request)

    def use(self, duration: float, priority: int = 0):
        """Generator helper: hold one slot for ``duration`` time units.

        Uncontended holds take a token fast path: the slot is marked
        busy with a plain sentinel instead of a full :class:`Request`,
        skipping the request event round-trip.  Busy-time accounting
        and release-time queue grants are identical on both paths.
        """
        users = self.users
        if len(users) < self.capacity and not self.queue:
            # inlined _account() (request() would do the same)
            now = self.env._now
            self._busy_area += len(users) * (now - self._last_change)
            self._last_change = now
            token = object()
            users.append(token)
            try:
                yield self.env.timeout(duration)
            finally:
                self.release(token)
            return
        req = self.request(priority)
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            self.release(req)


class Store:
    """FIFO item store with blocking ``get`` and optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # (event carries the item as .item)
        self.put_count = 0
        self.get_count = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; fires immediately unless the store is full."""
        event = _PutEvent(self.env)
        event.item = item
        if len(self.items) < self.capacity:
            self._commit_put(event)
        else:
            self._putters.append(event)
        return event

    def _commit_put(self, event: "_PutEvent") -> None:
        self.items.append(event.item)
        self.put_count += 1
        if event.callbacks is not None and not event._triggered:
            if event.callbacks:
                event.succeed()
            else:
                # Fast path: nobody is watching this put event.
                event._ok = True
                event._triggered = True
                event._processed = True
                event.callbacks = None
        if self._getters:
            self._dispatch()

    def put_nowait(self, item: Any) -> None:
        """Insert without creating an event (hot path for unbounded stores)."""
        if len(self.items) >= self.capacity:
            raise SimulationError(f"put_nowait on full store {self.name!r}")
        self.items.append(item)
        self.put_count += 1
        if self._getters:
            self._dispatch()

    def get(self) -> Event:
        """Remove and return the oldest item; blocks while empty."""
        items = self.items
        if items and not self._getters:
            # Fast path: satisfy synchronously without the heap.
            self.get_count += 1
            event = self.env.completed_event(items.popleft(), _GetEvent)
            event.predicate = None
            if self._putters:
                self._admit_putters()
            return event
        event = _GetEvent(self.env)
        event.predicate = None
        self._getters.append(event)
        if items:
            self._dispatch()
        return event

    def drain_ready(self, limit: Optional[int] = None) -> List[Any]:
        """Non-blocking batch get: pop every ready item, FIFO order.

        Returns up to ``limit`` items (all of them when ``None``), or
        an empty list when the store is empty or other getters are
        already waiting (they have FIFO priority over an opportunistic
        drain).  One call replaces a whole chain of ``try_get`` calls.
        """
        items = self.items
        if not items or self._getters:
            return []
        n = len(items) if limit is None else min(limit, len(items))
        popleft = items.popleft
        batch = [popleft() for _ in range(n)]
        self.get_count += n
        if self._putters:
            self._admit_putters()
        return batch

    def poll_batch(self, limit: Optional[int] = None) -> Event:
        """Blocking batch get: fires with the list of all ready items.

        If items are ready now, fires synchronously (completed-event
        fast path, no heap trip) with every queued item — up to
        ``limit`` — in FIFO order.  Otherwise the returned event joins
        the getter queue and fires as a non-empty list the moment items
        arrive.  One kernel wakeup per burst instead of one per item.
        """
        items = self.items
        if items and not self._getters:
            n = len(items) if limit is None else min(limit, len(items))
            popleft = items.popleft
            batch = [popleft() for _ in range(n)]
            self.get_count += n
            event = self.env.completed_event(batch, _BatchGetEvent)
            event.predicate = None
            event.limit = limit
            if self._putters:
                self._admit_putters()
            return event
        event = _BatchGetEvent(self.env)
        event.predicate = None
        event.limit = limit
        self._getters.append(event)
        if items:
            self._dispatch()
        return event

    def _admit_putters(self) -> None:
        putters = self._putters
        while putters and len(self.items) < self.capacity:
            self._commit_put(putters.popleft())

    def _dispatch(self) -> None:
        getters = self._getters
        items = self.items
        while getters and items:
            getter = getters.popleft()
            if getter._batch:
                limit = getter.limit
                n = len(items) if limit is None else min(limit, len(items))
                popleft = items.popleft
                batch = [popleft() for _ in range(n)]
                self.get_count += n
                getter.succeed(batch)
            else:
                item = items.popleft()
                self.get_count += 1
                getter.succeed(item)
            if self._putters:
                self._admit_putters()

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop the oldest item or return ``None``."""
        if self.items and not self._getters:
            self.get_count += 1
            return self.items.popleft()
        return None

    def fail_getters(self, exc: BaseException) -> int:
        """Abort every pending ``get`` with ``exc``; returns the count.

        Used by fault injection to model a producer dying while
        consumers are blocked (e.g. senders stalled on a crashed node's
        receive queue).  Items already in the store are untouched.
        """
        getters, self._getters = self._getters, deque()
        for event in getters:
            event.fail(exc)
        return len(getters)


class FilterStore(Store):
    """A :class:`Store` whose ``get`` may wait for a matching item."""

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        predicate = predicate or (lambda item: True)
        items = self.items
        if items and not self._getters:
            match = next((i for i, item in enumerate(items) if predicate(item)), None)
            if match is not None:
                item = items[match]
                del items[match]
                self.get_count += 1
                event = self.env.completed_event(item, _GetEvent)
                event.predicate = predicate
                if self._putters:
                    self._admit_putters()
                return event
        event = _GetEvent(self.env)
        event.predicate = predicate
        self._getters.append(event)
        if items:
            self._dispatch()
        return event

    def _dispatch(self) -> None:
        items = self.items
        progressed = True
        while progressed:
            progressed = False
            for getter in list(self._getters):
                if getter._batch:
                    # Batch getters bypass predicates: they take every
                    # queued item in FIFO order (a CQ drain).
                    if items:
                        limit = getter.limit
                        n = (len(items) if limit is None
                             else min(limit, len(items)))
                        popleft = items.popleft
                        batch = [popleft() for _ in range(n)]
                        self.get_count += n
                        self._getters.remove(getter)
                        getter.succeed(batch)
                        progressed = True
                    continue
                match = next(
                    (i for i, item in enumerate(items)
                     if getter.predicate(item)),
                    None,
                )
                if match is not None:
                    self._getters.remove(getter)
                    item = items[match]
                    del items[match]
                    self.get_count += 1
                    getter.succeed(item)
                    progressed = True
            if self._putters:
                self._admit_putters()
