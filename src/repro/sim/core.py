"""Discrete-event simulation kernel.

This module is the substrate for the entire Palladium reproduction: a
compact, deterministic, generator-based discrete-event engine in the
style of SimPy.  Simulated time is a ``float`` whose unit is
*microseconds* throughout the repository (the natural scale for RDMA
and DPU data-plane events; see :mod:`repro.config`).

The programming model:

* An :class:`Environment` owns the simulation clock and the event heap.
* A *process* is a Python generator that ``yield``\\ s :class:`Event`
  objects; the process is resumed when the yielded event fires.
* :meth:`Environment.timeout` creates an event that fires after a fixed
  delay; :meth:`Environment.event` creates a manually-triggered event.
* Processes are themselves events (they fire when the generator
  returns), so processes can wait on each other.
* A process can be interrupted with :meth:`Process.interrupt`, which
  raises :class:`Interrupt` inside the generator.

Determinism: events scheduled for the same instant fire in FIFO order
of scheduling (ties are broken by a monotonically increasing sequence
number), so repeated runs with the same seed produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AnyOf",
    "AllOf",
]

#: Normal event priority.  Lower values fire earlier at the same time.
PRIORITY_NORMAL = 1
#: Urgent priority, used internally so a process resumption scheduled by
#: an event trigger happens before same-time normal events.
PRIORITY_URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event can *succeed* (carrying a value) or *fail* (carrying an
    exception).  Callbacks registered on the event run when it fires.
    Waiting on a failed event re-raises its exception inside the
    waiting process unless the event is ``defused``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: if True, an un-waited-for failure does not abort the run
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, PRIORITY_NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self, PRIORITY_NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (already fired) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- internal ------------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self.defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, PRIORITY_NORMAL, delay)


class Initialize(Event):
    """Internal: kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._triggered = True
        env._schedule(self, PRIORITY_URGENT, 0.0)


class Process(Event):
    """A running process; fires (as an event) when its generator returns.

    The value of the process-event is the generator's return value.  If
    the generator raises, the process-event fails with that exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: event this process is currently waiting on
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt uninitialized process {self.name}")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._triggered = True
        event.defused = True
        # Detach from the current target so its eventual firing is ignored,
        # and resume immediately with the interrupt.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks = [self._resume]
        self.env._schedule(event, PRIORITY_URGENT, 0.0)

    # -- internal ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The exception is being delivered; mark it handled.
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                self.env._active_process = None
                self._ok = True
                self._value = exc.value
                self._triggered = True
                self.env._schedule(self, PRIORITY_NORMAL, 0.0)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self._ok = False
                self._value = exc
                self._triggered = True
                self.env._schedule(self, PRIORITY_NORMAL, 0.0)
                return

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                event._triggered = True
                continue

            if next_event.env is not self.env:
                raise SimulationError("cannot wait on an event from another environment")

            if next_event.callbacks is not None:
                # Not yet processed: register and suspend.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop and deliver its outcome synchronously.
            event = next_event

        self.env._active_process = None


class ConditionValue:
    """Ordered mapping of events to values produced by condition events."""

    __slots__ = ("events", "_event_ids")

    def __init__(self, events: List[Event]):
        self.events = events
        # Identity set for O(1) membership; events are compared by
        # identity, never by value.
        self._event_ids = {id(event) for event in events}

    def __getitem__(self, event: Event) -> Any:
        if id(event) not in self._event_ids:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return id(event) in self._event_ids

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> List[Any]:
        return [event._value for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.values()!r}>"


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("all events must share one environment")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(ConditionValue(
                [e for e in self._events if e._processed and e._ok]
            ))


class AnyOf(Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class Environment:
    """The simulation environment: clock, event heap, and run loop."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: observability hook (``repro.telemetry.Telemetry`` or None).
        #: Instrumentation sites across the stack check this attribute;
        #: None (the default) means every site is a single attribute
        #: read — telemetry is strictly opt-in and purely passive.
        self.telemetry: Optional[Any] = None

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by repo convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def completed_event(self, value: Any = None, cls: type = Event) -> Event:
        """An already-processed successful event (fast path).

        Yielding it resumes the process synchronously without a trip
        through the event heap; never yielding it costs nothing.  Used
        by resources/stores for immediately-satisfiable operations.
        """
        event = cls(self)
        event._ok = True
        event._value = value
        event._triggered = True
        event._processed = True
        event.callbacks = None
        return event

    def defer(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` without spawning a process.

        A lightweight alternative to ``process()`` for fire-and-forget
        delayed actions (message deliveries, notifications).
        """
        event = Event(self)
        event._ok = True
        event._triggered = True
        event.callbacks = [lambda _event: fn()]
        self._schedule(event, PRIORITY_NORMAL, delay)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling / run loop ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        self._now = when
        event._run_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up
        to that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until ({stop_time}) is in the past (now={self._now})")

        while self._queue:
            if self._queue[0][0] > stop_time:
                break
            self.step()
            if stop_event is not None and stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                stop_event.defused = True
                raise stop_event.value
        if stop_event is not None and not stop_event.processed:
            raise SimulationError("run() ran out of events before `until` event fired")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
