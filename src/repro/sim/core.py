"""Discrete-event simulation kernel.

This module is the substrate for the entire Palladium reproduction: a
compact, deterministic, generator-based discrete-event engine in the
style of SimPy.  Simulated time is a ``float`` whose unit is
*microseconds* throughout the repository (the natural scale for RDMA
and DPU data-plane events; see :mod:`repro.config`).

The programming model:

* An :class:`Environment` owns the simulation clock and the event heap.
* A *process* is a Python generator that ``yield``\\ s :class:`Event`
  objects; the process is resumed when the yielded event fires.
* :meth:`Environment.timeout` creates an event that fires after a fixed
  delay; :meth:`Environment.event` creates a manually-triggered event.
* Processes are themselves events (they fire when the generator
  returns), so processes can wait on each other.
* A process can be interrupted with :meth:`Process.interrupt`, which
  raises :class:`Interrupt` inside the generator.

Determinism: events scheduled for the same instant fire in FIFO order
of scheduling (ties are broken by a monotonically increasing sequence
number), so repeated runs with the same seed produce identical traces.

Fast path (see docs/PERFORMANCE.md): the :meth:`Environment.run` loop
pops ready-queue entries — plain ``(time, priority, eid, event)``
tuples — and runs callbacks inline rather than paying a ``step()`` +
``_run_callbacks()`` call per event; trigger sites push through the
environment's bound ``_push`` (a :func:`heapq.heappush` partial for
the default scheduler).  Steady-state event churn recycles
:class:`Timeout`, completed-event, and :meth:`Environment.defer`
objects through per-class free lists, so the hot path does no
allocation beyond the queue tuple itself.  Recycling is guarded by
``sys.getrefcount``: an event is only returned to a pool when the
kernel provably holds the sole remaining reference, so user code that
retains an event (for ``.value``, ``AnyOf`` membership, a later
``release()``) always keeps a private object.  None of this changes
scheduling order: ``eid`` assignment and queue ordering are identical
to the reference kernel, so event counts and traces are byte-for-byte
reproducible.

Schedulers: the ready queue is pluggable per :class:`Environment`
(``Environment(scheduler="heap" | "calendar")``).  The default is the
flat binary heap above.  The *calendar queue* variant
(:class:`CalendarQueue`) partitions time into fixed-width buckets —
a min-heap of integer bucket ids over small per-bucket heaps — so
timeout-heavy workloads pay mostly cheap ``int`` comparisons on tiny
heaps instead of ``float``-tuple comparisons on one large heap.  Both
schedulers order entries by exactly the same ``(time, priority,
eid)`` key, including the same-timestamp FIFO tie-break, so they are
observably equivalent (proven by the hypothesis property tests in
``tests/test_sim_calendar.py`` and by the byte-identical seed gates).
"""

from __future__ import annotations

import os
import sys
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "CalendarQueue",
    "set_default_scheduler",
]

#: Normal event priority.  Lower values fire earlier at the same time.
PRIORITY_NORMAL = 1
#: Urgent priority, used internally so a process resumption scheduled by
#: an event trigger happens before same-time normal events.
PRIORITY_URGENT = 0

#: Free-listed events kept per class; bounds pool memory, not churn.
_POOL_CAP = 512

try:
    _getrefcount = sys.getrefcount
except AttributeError:  # pragma: no cover - non-CPython: pooling off
    def _getrefcount(_obj: Any) -> int:
        return 1 << 30


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event can *succeed* (carrying a value) or *fail* (carrying an
    exception).  Callbacks registered on the event run when it fires.
    Waiting on a failed event re-raises its exception inside the
    waiting process unless the event is ``defused``.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "defused")

    #: classes whose instances may be returned to a free list once the
    #: kernel holds the only reference (class attribute, no slot)
    _poolable = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: if True, an un-waited-for failure does not abort the run
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        env = self.env
        env._eid += 1
        env._push((env._now, PRIORITY_NORMAL, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        env = self.env
        env._eid += 1
        env._push((env._now, PRIORITY_NORMAL, env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (already fired) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- internal ------------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)
        if not self._ok and not self.defused:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    _poolable = True

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self.defused = False
        self.delay = delay
        env._eid += 1
        env._push((env._now + delay, PRIORITY_NORMAL, env._eid, self))


class _Deferred(Event):
    """Internal: a pooled fire-and-forget callback (``Environment.defer``).

    Never escapes the kernel — ``defer()`` returns ``None`` — so it is
    recycled unconditionally after its callback slot runs.  It is
    scheduled with ``callbacks = None``; the run loop dispatches such
    heap entries through :meth:`_run_callbacks`.
    """

    __slots__ = ("fn",)

    def _run_callbacks(self) -> None:
        self._processed = True
        fn, self.fn = self.fn, None
        fn()
        pool = self.env._defer_pool
        if len(pool) < _POOL_CAP:
            self._processed = False
            pool.append(self)


class Initialize(Event):
    """Internal: kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self.defused = False
        env._eid += 1
        env._push((env._now, PRIORITY_URGENT, env._eid, self))


class Process(Event):
    """A running process; fires (as an event) when its generator returns.

    The value of the process-event is the generator's return value.  If
    the generator raises, the process-event fails with that exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.defused = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: event this process is currently waiting on
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt terminated process {self.name}")
        if self._target is None:
            raise SimulationError(f"cannot interrupt uninitialized process {self.name}")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._triggered = True
        event.defused = True
        # Detach from the current target so its eventual firing is ignored,
        # and resume immediately with the interrupt.
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        event.callbacks = [self._resume]
        self.env._schedule(event, PRIORITY_URGENT, 0.0)

    # -- internal ------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send
        refs = _getrefcount
        while True:
            try:
                if event._ok:
                    value = event._value
                    # The outcome is extracted; if the kernel holds the
                    # only reference left, the event can be reused
                    # (inlined _recycle: sync-delivered events are
                    # completed-pool classes, never Timeout).
                    if event._poolable and refs(event) == 2:
                        event._value = None
                        event.defused = False
                        cls = event.__class__
                        pools = env._completed_pools
                        pool = pools.get(cls)
                        if pool is None:
                            pool = pools[cls] = []
                        if len(pool) < _POOL_CAP:
                            pool.append(event)
                    event = None
                    next_event = send(value)
                else:
                    # The exception is being delivered; mark it handled.
                    event.defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as exc:
                self._target = None
                env._active_process = None
                self._ok = True
                self._value = exc.value
                self._triggered = True
                env._eid += 1
                env._push((env._now, PRIORITY_NORMAL, env._eid, self))
                return
            except BaseException as exc:
                self._target = None
                env._active_process = None
                self._ok = False
                self._value = exc
                self._triggered = True
                env._eid += 1
                env._push((env._now, PRIORITY_NORMAL, env._eid, self))
                return

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                event._triggered = True
                continue

            if next_event.env is not env:
                raise SimulationError("cannot wait on an event from another environment")

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Not yet processed: register and suspend.
                callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: loop and deliver its outcome synchronously.
            event = next_event
            next_event = None

        env._active_process = None


class ConditionValue:
    """Ordered mapping of events to values produced by condition events."""

    __slots__ = ("events", "_event_ids")

    def __init__(self, events: List[Event]):
        self.events = events
        # Identity set for O(1) membership (events are compared by
        # identity, never by value), built lazily on first lookup so
        # conditions that only read ``values()`` never pay for it.
        self._event_ids = None

    def _ids(self) -> set:
        ids = self._event_ids
        if ids is None:
            ids = self._event_ids = {id(event) for event in self.events}
        return ids

    def __getitem__(self, event: Event) -> Any:
        if id(event) not in self._ids():
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return id(event) in self._ids()

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> List[Any]:
        return [event._value for event in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.values()!r}>"


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf` composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("all events must share one environment")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._satisfied():
            self.succeed(ConditionValue(
                [e for e in self._events if e._processed and e._ok]
            ))


class AnyOf(Condition):
    """Fires as soon as any of the given events fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class CalendarQueue:
    """Bucketed ready queue: a min-heap of bucket ids over small heaps.

    Entries are the same ``(time, priority, eid, event)`` tuples the
    flat heap uses.  Each entry lands in bucket ``int(time * scale)``
    (``scale = 1 / bucket_us``); ``_order`` is a min-heap holding the
    id of every non-empty bucket exactly once.  Because the bucket
    function is monotone in time and same-time entries always share a
    bucket, popping the smallest tuple from the smallest bucket yields
    entries in exactly the global heap's ``(time, priority, eid)``
    order — including the same-timestamp FIFO tie-break.  The win in
    the timeout-heavy regime: per-bucket heaps stay tiny (often a
    handful of entries), so sift costs shrink and most outer-heap
    comparisons are cheap ``int`` compares.
    """

    __slots__ = ("_buckets", "_order", "_scale", "_len", "bucket_us")

    def __init__(self, bucket_us: float = 32.0):
        if bucket_us <= 0:
            raise ValueError(f"bucket_us must be positive: {bucket_us}")
        self.bucket_us = bucket_us
        self._scale = 1.0 / bucket_us
        self._buckets: dict = {}
        self._order: List[int] = []
        self._len = 0

    def push(self, entry: tuple) -> None:
        bid = int(entry[0] * self._scale)
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [entry]
            heappush(self._order, bid)
        else:
            heappush(bucket, entry)
        self._len += 1

    def pop(self) -> tuple:
        bid = self._order[0]
        bucket = self._buckets[bid]
        entry = heappop(bucket)
        if not bucket:
            heappop(self._order)
            del self._buckets[bid]
        self._len -= 1
        return entry

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` if empty."""
        if not self._len:
            return float("inf")
        return self._buckets[self._order[0]][0][0]

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0


#: Process-wide scheduler defaults used when ``Environment`` is built
#: without explicit arguments.  ``REPRO_SIM_SCHEDULER`` /
#: ``REPRO_SIM_BUCKET_US`` let CI run the full experiment suite under
#: the calendar queue without touching experiment code; in-process
#: callers use :func:`set_default_scheduler` (or
#: ``repro.config.SimConfig``).
_default_scheduler = os.environ.get("REPRO_SIM_SCHEDULER", "heap")
_default_bucket_us = float(os.environ.get("REPRO_SIM_BUCKET_US", "32.0"))


def set_default_scheduler(scheduler: str,
                          bucket_us: Optional[float] = None) -> None:
    """Set the scheduler used by Environments created without one.

    Affects only Environments constructed afterwards; existing ones
    keep their queue.  ``scheduler`` is ``"heap"`` or ``"calendar"``.
    """
    global _default_scheduler, _default_bucket_us
    if scheduler not in ("heap", "calendar"):
        raise ValueError(f"unknown scheduler: {scheduler!r}")
    _default_scheduler = scheduler
    if bucket_us is not None:
        if bucket_us <= 0:
            raise ValueError(f"bucket_us must be positive: {bucket_us}")
        _default_bucket_us = bucket_us


class Environment:
    """The simulation environment: clock, ready queue, and run loop.

    ``scheduler`` selects the ready-queue implementation: ``"heap"``
    (default; flat binary heap of 4-tuples) or ``"calendar"``
    (:class:`CalendarQueue`, bucket width ``bucket_us``).  Both produce
    identical event orderings; see the module docstring.
    """

    def __init__(self, initial_time: float = 0.0,
                 scheduler: Optional[str] = None,
                 bucket_us: Optional[float] = None):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        if scheduler is None:
            scheduler = _default_scheduler
        if bucket_us is None:
            bucket_us = _default_bucket_us
        if scheduler == "heap":
            self._cal: Optional[CalendarQueue] = None
            #: bound push for trigger sites; one partial beats an
            #: attribute walk + global lookup at every push site
            self._push: Callable[[tuple], None] = partial(heappush, self._queue)
        elif scheduler == "calendar":
            self._cal = CalendarQueue(bucket_us)
            self._push = self._cal.push
        else:
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        self.scheduler = scheduler
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: events popped and dispatched so far (native counter; the
        #: perf bench reads this instead of wrapping ``step()``)
        self.events_processed = 0
        #: observability hook (``repro.telemetry.Telemetry`` or None).
        #: Instrumentation sites across the stack check this attribute;
        #: None (the default) means every site is a single attribute
        #: read — telemetry is strictly opt-in and purely passive.
        self.telemetry: Optional[Any] = None
        # -- free lists (see module docstring) -----------------------------
        self._timeout_pool: List[Timeout] = []
        self._defer_pool: List[_Deferred] = []
        #: class -> free list for completed-event fast paths (_GetEvent
        #: and friends register here via ``completed_event``/recycling)
        self._completed_pools: dict = {}

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by repo convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def completed_event(self, value: Any = None, cls: type = Event) -> Event:
        """An already-processed successful event (fast path).

        Yielding it resumes the process synchronously without a trip
        through the event heap; never yielding it costs nothing.  Used
        by resources/stores for immediately-satisfiable operations.
        """
        pool = self._completed_pools.get(cls)
        if pool:
            event = pool.pop()
            event._value = value
            return event
        event = cls.__new__(cls)
        event.env = self
        event.callbacks = None
        event._value = value
        event._ok = True
        event._triggered = True
        event._processed = True
        event.defused = False
        return event

    def _recycle(self, event: Event) -> None:
        """Return a processed, successful, kernel-exclusive event to
        its free list (callers guarantee those invariants)."""
        event._value = None
        event.defused = False
        cls = event.__class__
        if cls is Timeout:
            pool = self._timeout_pool
        else:
            pool = self._completed_pools.get(cls)
            if pool is None:
                pool = self._completed_pools[cls] = []
        if len(pool) < _POOL_CAP:
            pool.append(event)

    def defer(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` without spawning a process.

        A lightweight alternative to ``process()`` for fire-and-forget
        delayed actions (message deliveries, notifications).  The
        callback rides in a dedicated slot of a pooled kernel event —
        no closure, and steady-state no allocation.
        """
        pool = self._defer_pool
        if pool:
            event = pool.pop()
        else:
            event = _Deferred.__new__(_Deferred)
            event.env = self
            event.callbacks = None
            event._value = None
            event._ok = True
            event._triggered = True
            event._processed = False
            event.defused = False
        event.fn = fn
        self._eid += 1
        self._push((self._now + delay, PRIORITY_NORMAL, self._eid, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            event = pool.pop()
            # Recycled timeouts are invariantly ok/triggered/defused=False
            # with _value None; only reset what recycling didn't.
            event.callbacks = []
            event._processed = False
            event.delay = delay
            if value is not None:
                event._value = value
            self._eid += 1
            self._push((self._now + delay, PRIORITY_NORMAL, self._eid, event))
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling / run loop ----------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        self._push((self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._cal is not None:
            return self._cal.peek()
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if self._cal is not None:
            if not self._cal:
                raise SimulationError("no more events")
            when, _priority, _eid, event = self._cal.pop()
        else:
            if not self._queue:
                raise SimulationError("no more events")
            when, _priority, _eid, event = heappop(self._queue)
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up
        to that simulated time), or an :class:`Event` (run until it
        fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
        else:
            stop_time = float(until)
            if stop_time < self._now:
                raise ValueError(f"until ({stop_time}) is in the past (now={self._now})")

        if self._cal is not None:
            self._run_calendar(stop_event, stop_time)
        elif stop_event is not None:
            self._run_heap_event(stop_event, stop_time)
        else:
            self._run_heap(stop_time)

        if stop_event is not None:
            if not stop_event._processed:
                raise SimulationError(
                    "run() ran out of events before `until` event fired")
            if stop_event._ok:
                return stop_event._value
            stop_event.defused = True
            raise stop_event._value
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _run_heap(self, stop_time: float) -> None:
        # Tight inlined loop: one heap pop + direct callback dispatch
        # per event (the ``step()`` API remains for single-stepping).
        # Almost every fired event has exactly one callback (a process
        # resume), so that case skips the loop machinery entirely.
        queue = self._queue
        pop = heappop
        refs = _getrefcount
        timeout_pool = self._timeout_pool
        processed = 0
        bounded = stop_time != float("inf")
        try:
            while queue:
                if bounded and queue[0][0] > stop_time:
                    break
                when, _priority, _eid, event = pop(queue)
                self._now = when
                processed += 1
                cbs = event.callbacks
                if cbs is not None:
                    event.callbacks = None
                    event._processed = True
                    if len(cbs) == 1:
                        cbs[0](event)
                    else:
                        for callback in cbs:
                            callback(event)
                    if not event._ok:
                        if not event.defused:
                            raise event._value
                    elif event._poolable and refs(event) == 2:
                        # Inlined _recycle: heap-fired poolable
                        # events are overwhelmingly Timeouts.
                        if event.__class__ is Timeout:
                            if len(timeout_pool) < _POOL_CAP:
                                event._value = None
                                event.defused = False
                                timeout_pool.append(event)
                        else:
                            self._recycle(event)
                else:
                    # Only _Deferred entries are scheduled without a
                    # callbacks list; dispatch via their override.
                    event._run_callbacks()
        finally:
            self.events_processed += processed

    def _run_heap_event(self, stop_event: Event, stop_time: float) -> None:
        queue = self._queue
        pop = heappop
        refs = _getrefcount
        timeout_pool = self._timeout_pool
        processed = 0
        try:
            while queue:
                if queue[0][0] > stop_time:
                    break
                when, _priority, _eid, event = pop(queue)
                self._now = when
                processed += 1
                cbs = event.callbacks
                if cbs is not None:
                    event.callbacks = None
                    event._processed = True
                    if len(cbs) == 1:
                        cbs[0](event)
                    else:
                        for callback in cbs:
                            callback(event)
                    if not event._ok:
                        if not event.defused:
                            raise event._value
                    elif event._poolable and refs(event) == 2:
                        if event.__class__ is Timeout:
                            if len(timeout_pool) < _POOL_CAP:
                                event._value = None
                                event.defused = False
                                timeout_pool.append(event)
                        else:
                            self._recycle(event)
                else:
                    event._run_callbacks()
                if stop_event._processed:
                    return
        finally:
            self.events_processed += processed

    def _run_calendar(self, stop_event: Optional[Event],
                      stop_time: float) -> None:
        # Same dispatch body as the heap loops, popping from the
        # calendar queue.  The current bucket's heap is drained with
        # direct heappop calls between outer-heap touches.
        cal = self._cal
        assert cal is not None
        buckets = cal._buckets
        order = cal._order
        pop = heappop
        refs = _getrefcount
        timeout_pool = self._timeout_pool
        processed = 0
        try:
            while cal._len:
                bid = order[0]
                bucket = buckets[bid]
                entry = bucket[0]
                when = entry[0]
                if when > stop_time:
                    break
                pop(bucket)
                if not bucket:
                    pop(order)
                    del buckets[bid]
                cal._len -= 1
                event = entry[3]
                self._now = when
                processed += 1
                cbs = event.callbacks
                if cbs is not None:
                    event.callbacks = None
                    event._processed = True
                    if len(cbs) == 1:
                        cbs[0](event)
                    else:
                        for callback in cbs:
                            callback(event)
                    if not event._ok:
                        if not event.defused:
                            raise event._value
                    elif event._poolable and refs(event) == 2:
                        if event.__class__ is Timeout:
                            if len(timeout_pool) < _POOL_CAP:
                                event._value = None
                                event.defused = False
                                timeout_pool.append(event)
                        else:
                            self._recycle(event)
                else:
                    event._run_callbacks()
                if stop_event is not None and stop_event._processed:
                    return
        finally:
            self.events_processed += processed
