"""Execution tracing for simulations.

A :class:`Tracer` records an event log of a run — which process resumed
at what simulated time — with optional name filtering and bounded
memory.  It is invaluable when debugging a stuck data plane ("what was
the DNE loop doing at t=80 ms?") and cheap enough to leave in tests.

Usage::

    env = Environment()
    tracer = Tracer(env, include="dne")
    ... build and run ...
    for record in tracer.records:
        print(record)
    print(tracer.summary())
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from .core import Environment, Process

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced resumption: a process became runnable."""

    time: float
    process: str

    def __str__(self) -> str:
        return f"[{self.time:14.3f}us] {self.process}"


class Tracer:
    """Records process resumptions by hooking process creation.

    ``include`` restricts tracing to processes whose name contains the
    substring; ``max_records`` bounds memory (oldest dropped).
    """

    def __init__(self, env: Environment, include: str = "",
                 max_records: int = 100_000):
        if max_records < 1:
            raise ValueError("max_records must be positive")
        self.env = env
        self.include = include
        self.max_records = max_records
        #: bounded ring buffer — deque(maxlen) evicts the oldest record
        #: in O(1) instead of list.pop(0)'s O(n) shuffle per drop
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        self.dropped = 0
        self._counts: Counter = Counter()
        self._original_process = env.process
        env.process = self._traced_process  # type: ignore[method-assign]

    # -- hook ------------------------------------------------------------------
    def _traced_process(self, generator, name: str = "") -> Process:
        label = name or getattr(generator, "__name__", "process")
        if self.include and self.include not in label:
            return self._original_process(generator, name=name)
        return self._original_process(self._wrap(generator, label), name=label)

    def _wrap(self, generator, label: str):
        """Interpose on every resumption of ``generator``."""
        value = None
        pending_exc: Optional[BaseException] = None
        while True:
            self._record(label)
            try:
                if pending_exc is None:
                    event = generator.send(value)
                else:
                    event = generator.throw(pending_exc)
                    pending_exc = None
            except StopIteration as stop:
                return stop.value
            try:
                value = yield event
            except BaseException as exc:  # interrupts propagate inward
                pending_exc = exc
                value = None

    def _record(self, name: str) -> None:
        self._counts[name] += 1
        if len(self.records) == self.max_records:
            self.dropped += 1  # maxlen evicts the oldest on append
        self.records.append(TraceRecord(self.env.now, name))

    # -- reporting --------------------------------------------------------------
    def count(self, name: str) -> int:
        """Resumptions recorded for processes named ``name``."""
        return self._counts[name]

    def summary(self, top: int = 10) -> str:
        """The busiest processes by resumption count."""
        lines = [f"trace: {sum(self._counts.values())} resumptions, "
                 f"{len(self._counts)} processes"]
        for name, count in self._counts.most_common(top):
            lines.append(f"  {count:>8}  {name}")
        return "\n".join(lines)

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time < end``."""
        return [r for r in self.records if start <= r.time < end]

    def detach(self) -> None:
        """Stop tracing new processes (existing hooks stay)."""
        self.env.process = self._original_process  # type: ignore[method-assign]
