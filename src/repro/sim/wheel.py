"""Coalescing timer wheel for cancellation-heavy timer workloads.

The kernel's :meth:`Environment.timeout` is exact but pays one heap
entry per timer, and a cancelled timer (a retransmit deadline beaten
by its ack, a guard that almost never fires) still rides the heap to
its deadline before being discarded.  Retransmit, invoke-deadline and
health-check timers dominate that pattern: the overwhelming majority
are armed and then cancelled.

:class:`TimerWheel` amortizes both costs.  Time is partitioned into
fixed ``granularity_us`` buckets; all timers landing in one bucket
share a single kernel event (an :meth:`Environment.defer` tick at the
bucket edge), and :meth:`cancel` is a tombstone — one attribute write,
no heap traffic, the tick simply skips dead handles.  A bucket whose
every timer was cancelled still costs its one tick, nothing more.

The trade-off is precision: a wheel timer fires at the *next bucket
edge* at or after its deadline, i.e. up to ``granularity_us`` late.
That quantization is observable, so the wheel is strictly **opt-in**:
nothing in the default configuration routes through it, keeping the
byte-identical seed gates exact (see docs/PERFORMANCE.md).  CoDel
needs no wheel at all — it is a clock-driven control law evaluated on
dequeue and owns no timers.

Usage::

    wheel = TimerWheel(env, granularity_us=8.0)
    handle = wheel.schedule(50.0, on_deadline)   # fire-and-forget
    wheel.cancel(handle)                         # tombstone, O(1)
    yield wheel.sleep(100.0)                     # coalesced sleep
    ticker = wheel.periodic(500.0, check_health) # repeating tick
    ticker.stop()
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .core import Environment, Event

__all__ = ["TimerWheel", "TimerHandle", "PeriodicTimer"]


class TimerHandle:
    """A scheduled wheel timer; ``cancel()`` tombstones it in place."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Tombstone the timer: the bucket tick will skip it."""
        self.cancelled = True
        self.fn = None


class PeriodicTimer:
    """A repeating wheel timer (``TimerWheel.periodic``)."""

    __slots__ = ("_wheel", "_interval_us", "_fn", "_handle", "_stopped")

    def __init__(self, wheel: "TimerWheel", interval_us: float,
                 fn: Callable[[], None]):
        self._wheel = wheel
        self._interval_us = interval_us
        self._fn = fn
        self._stopped = False
        self._handle = wheel.schedule(interval_us, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._fn()
        if not self._stopped:
            self._handle = self._wheel.schedule(self._interval_us, self._tick)

    def stop(self) -> None:
        """Stop ticking; the pending bucket entry is tombstoned."""
        self._stopped = True
        self._handle.cancel()


class TimerWheel:
    """Bucketed timers: one kernel event per bucket, tombstone cancel.

    ``granularity_us`` is the bucket width and the worst-case firing
    lateness.  Pick it well under the smallest interval that matters
    (e.g. 8 µs buckets for 50–500 µs retransmit deadlines); every
    timer sharing a bucket then shares one kernel heap entry.
    """

    __slots__ = ("env", "granularity_us", "_buckets",
                 "scheduled", "fired", "cancelled", "ticks")

    def __init__(self, env: Environment, granularity_us: float = 8.0):
        if granularity_us <= 0:
            raise ValueError(
                f"granularity_us must be positive: {granularity_us}")
        self.env = env
        self.granularity_us = granularity_us
        #: bucket id -> list of handles; a bucket exists iff its defer
        #: tick is armed, so arming is once per (bucket, lifetime)
        self._buckets: Dict[int, List[TimerHandle]] = {}
        # counters for tests / telemetry
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.ticks = 0

    def schedule(self, delay_us: float,
                 fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` at the first bucket edge >= now + ``delay_us``."""
        if delay_us < 0:
            raise ValueError(f"negative timer delay: {delay_us}")
        env = self.env
        g = self.granularity_us
        deadline = env._now + delay_us
        bid = int(deadline / g)
        edge = bid * g
        if edge < deadline:
            bid += 1
            edge = bid * g
        handle = TimerHandle(fn)
        self.scheduled += 1
        bucket = self._buckets.get(bid)
        if bucket is None:
            self._buckets[bid] = [handle]
            env.defer(edge - env._now, lambda: self._service(bid))
        else:
            bucket.append(handle)
        return handle

    def cancel(self, handle: TimerHandle) -> None:
        """Tombstone ``handle``; O(1), no kernel interaction."""
        if not handle.cancelled:
            handle.cancelled = True
            handle.fn = None
            self.cancelled += 1

    def sleep(self, delay_us: float) -> Event:
        """An event firing at the bucket edge covering ``delay_us``.

        The wheel-based analogue of :meth:`Environment.timeout` for
        process code: sleepers in the same bucket share one tick.
        """
        event = self.env.event()
        self.schedule(delay_us, event.succeed)
        return event

    def periodic(self, interval_us: float,
                 fn: Callable[[], None]) -> PeriodicTimer:
        """Call ``fn()`` every ``interval_us`` until ``.stop()``."""
        return PeriodicTimer(self, interval_us, fn)

    def _service(self, bid: int) -> None:
        bucket = self._buckets.pop(bid)
        self.ticks += 1
        fired = 0
        for handle in bucket:
            if not handle.cancelled:
                fn = handle.fn
                handle.fn = None
                fired += 1
                fn()
        self.fired += fired

    @property
    def pending(self) -> int:
        """Live (non-tombstoned) timers still waiting to fire."""
        return sum(1 for bucket in self._buckets.values()
                   for handle in bucket if not handle.cancelled)
