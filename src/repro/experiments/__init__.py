"""Experiments: one module per paper figure/table, plus shared harness."""

from .ablations import run_multi_ingress, run_placement_ablation, run_sidecar_ablation
from .fig09_comch import run_fig09
from .fig11_offpath import run_fig11
from .fig12_primitives import run_fig12
from .fig13_ingress import run_fig13
from .fig14_scaling import run_fig14
from .fig15_tenancy import run_fig15, run_tenancy
from .ext_conn_churn import (
    run_ceiling_point,
    run_churn_point,
    run_ext_conn_churn,
)
from .ext_cycle_breakdown import (
    run_cycle_point,
    run_ext_cycle_breakdown,
    run_trace_smoke,
)
from .ext_fault_recovery import run_ext_fault_recovery, run_fault_point
from .ext_gateway_scale import (
    gateway_scale_classes,
    run_ext_gateway_scale,
    run_gateway_scale_point,
)
from .ext_migration import (
    run_drain_point,
    run_ext_migration,
    run_migration_point,
)
from .ext_overload import (
    run_ext_overload,
    run_overload_isolation,
    run_overload_point,
)
from .ext_slo import (
    build_dashboard_bundle,
    run_critpath,
    run_slo_fault,
    run_slo_overload,
)
from .fig16_boutique import run_boutique_point, run_fig16, run_table2
from .report import from_json, load, save, to_csv, to_json
from . import validation
from .runner import ExperimentResult, format_table
from .table1_features import run_table1

__all__ = [
    "ExperimentResult",
    "format_table",
    "from_json",
    "load",
    "save",
    "to_csv",
    "to_json",
    "validation",
    "build_dashboard_bundle",
    "run_boutique_point",
    "run_critpath",
    "run_slo_fault",
    "run_slo_overload",
    "run_ceiling_point",
    "run_churn_point",
    "run_cycle_point",
    "run_ext_conn_churn",
    "run_drain_point",
    "run_ext_cycle_breakdown",
    "run_ext_fault_recovery",
    "run_ext_gateway_scale",
    "run_ext_migration",
    "run_gateway_scale_point",
    "gateway_scale_classes",
    "run_ext_overload",
    "run_fault_point",
    "run_migration_point",
    "run_overload_isolation",
    "run_overload_point",
    "run_trace_smoke",
    "run_fig09",
    "run_multi_ingress",
    "run_placement_ablation",
    "run_sidecar_ablation",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_table1",
    "run_table2",
    "run_tenancy",
]
