"""Extension — failure recovery under a worker-node crash.

Not a figure from the paper: this experiment exercises the fault-
injection subsystem (:mod:`repro.faults`) end to end.  The Online
Boutique runs with its hotspots (frontend, checkout, recommendation)
pinned to worker0 and every leaf service deployed as a two-replica
elastic service with one replica per worker.  A :class:`FaultPlan`
fail-stops worker1 mid-run and restarts it later; wrk-style clients
redial after timeouts so goodput *recovery* is observable.

Configurations:

==========================  ================================================
palladium-dne               DNE + full recovery (route withdrawal, replica
                            failover, QP eviction, background reconnect)
palladium-dne-no-recovery   same data plane, fault handling disabled: the
                            physical crash still happens, but routes and
                            replica rotation keep pointing at the dead node
palladium-cne               host-core engine, full recovery
spright                     kernel-TCP baseline, full recovery
==========================  ================================================

The headline metric is ``restored_pct``: steady-state goodput during
the outage (after clients re-dial) as a percentage of pre-fault
goodput.  With recovery enabled the surviving replicas absorb the
traffic (>= 90%); without it, every request keeps round-robining into
the dead node and goodput collapses.  ``recover_ms`` is the time from
the crash until goodput is back to >= 90% of the pre-fault level.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines import build_cne, build_dne, build_spright
from ..config import CostModel
from ..faults import FaultInjector, FaultPlan
from ..ingress import FIngress, PalladiumIngress, TcpWorkerAdapter
from ..platform import ElasticPlatform, Tenant
from ..sim import Environment
from ..telemetry import BurnWindow, RateRule, Selector, Slo, Telemetry
from ..workloads import (
    BOUTIQUE_TENANT,
    ClientFleet,
    boutique_resolver,
    boutique_specs,
    path_payload,
)

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["attach_fault_monitor", "run_fault_point",
           "run_ext_fault_recovery", "FAULT_CONFIGS"]

#: the evaluated configurations (see module docstring)
FAULT_CONFIGS = ("palladium-dne", "palladium-dne-no-recovery",
                 "palladium-cne", "spright")

#: the paper's hotspots stay singletons on worker0; every leaf becomes
#: a two-replica service (primary on worker1, standby on worker0)
HOTSPOTS = ("frontend", "checkout", "recommendation")

NO_RECOVERY_SUFFIX = "-no-recovery"


def _build_platform(config: str, env: Environment, cost: CostModel):
    """Assemble an elastic platform + ingress for one configuration."""
    builders = {
        "palladium-dne": build_dne,
        "palladium-cne": build_cne,
        "spright": build_spright,
    }
    plat = ElasticPlatform(env, cost=cost, engine_builder=builders[config])
    plat.add_tenant(Tenant(BOUTIQUE_TENANT, pool_buffers=4096))

    specs = {spec.name: spec for spec in boutique_specs()}
    for name in HOTSPOTS:
        plat.deploy(specs[name], "worker0")
    for name, spec in specs.items():
        if name in HOTSPOTS:
            continue
        # Replica #0 on worker1 (the paper's placement for the leaves),
        # replica #1 on worker0 — the survivor the failover targets.
        plat.deploy_service(spec, "worker1")
        plat.scale_out(spec, "worker0")

    if config in ("palladium-dne", "palladium-cne"):
        ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                   boutique_resolver, min_workers=2,
                                   recv_buffers=256, stats_bucket_us=5_000.0,
                                   service_resolver=plat.resolve_service)
        ingress.add_tenant(BOUTIQUE_TENANT, buffers=2048)
        plat.coordinator.subscribe(ingress.routes)
        plat.register_external(ingress.AGENT, "ingress")
    else:
        adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], cost,
                                   stack_kind=TcpWorkerAdapter.FSTACK)
        ingress = FIngress(env, plat.cluster, cost, boutique_resolver,
                           {"worker0": adapter}, lambda fn: "worker0",
                           cores=2)
    return plat, ingress


def attach_fault_monitor(telemetry, step_us: float = 1_000.0,
                         arm_at_us: float = 0.0):
    """The SLO bundle for the crash/recovery runs.

    One availability SLO on the boutique tenant: good = responses
    delivered (plus any admission sheds), total = requests accepted.
    A dead worker shows up as requests that keep arriving (clients
    re-dial) while responses stall — sustained budget burn.  A
    recovered plane takes at most a brief client re-dial dip.
    """
    mon = telemetry.attach_monitor(step_us=step_us, arm_at_us=arm_at_us)
    # The default burn windows assume open-loop traffic.  This fleet is
    # closed-loop: after a crash every client blocks on its 30 ms
    # timeout and re-dials 5 ms later, so failures arrive in
    # synchronized ~35 ms bursts and a millisecond-scale short window
    # is empty more often than not (the alert would flap).  Size both
    # windows to cover at least one full retry burst, and keep the
    # thresholds below the max burn (1/budget = 5 at objective 0.80) —
    # the default page threshold of 8 would be unreachable.
    windows = (
        BurnWindow("fast", long_us=40_000.0, short_us=40_000.0,
                   threshold=2.0, severity="page"),
        BurnWindow("slow", long_us=60_000.0, short_us=40_000.0,
                   threshold=1.5, severity="ticket"),
    )
    mon.add_slo(Slo(
        "slo-availability-boutique", objective=0.80,
        good=[Selector("ingress_responses_total",
                       {"tenant": BOUTIQUE_TENANT}),
              Selector("ingress_admission_rejected_total",
                       {"tenant": BOUTIQUE_TENANT})],
        total=[Selector("ingress_requests_total",
                        {"tenant": BOUTIQUE_TENANT})],
        windows=windows,
        # Post-crash the windows see only the retry trickle — a high
        # min_events would mute exactly the outage we watch for.
        min_events=5,
        labels={"tenant": BOUTIQUE_TENANT, "sli": "availability"}))
    mon.add_rule(RateRule("offered_rps", "ingress_requests_total", 5_000.0))
    mon.add_rule(RateRule("delivered_rps", "ingress_responses_total",
                          5_000.0))
    return mon


def run_fault_point(
    config: str,
    clients: int = 12,
    warmup_us: float = 40_000.0,
    crash_at_us: float = 140_000.0,
    down_us: float = 100_000.0,
    post_us: float = 90_000.0,
    invoke_timeout_us: float = 15_000.0,
    client_timeout_us: float = 30_000.0,
    cost: Optional[CostModel] = None,
    with_telemetry: bool = False,
    with_monitor: bool = False,
) -> Dict[str, object]:
    """One node-crash/restart run; returns goodput + recovery metrics.

    Timeline: clients start at ``warmup_us``; worker1 fail-stops at
    ``crash_at_us`` and restarts ``down_us`` later; the run ends
    ``post_us`` after the restart.  The pre/outage/post goodput windows
    are trimmed away from the transition edges so each one measures a
    steady state.  ``with_monitor`` implies telemetry and attaches
    :func:`attach_fault_monitor`; everything outside the ``telemetry``
    key stays byte-identical to an uninstrumented run.
    """
    recovery = not config.endswith(NO_RECOVERY_SUFFIX)
    base = config[:-len(NO_RECOVERY_SUFFIX)] if not recovery else config
    cost = cost or CostModel()
    env = Environment()
    telemetry = (Telemetry.install(env)
                 if with_telemetry or with_monitor else None)
    if with_monitor:
        # Arm one slow-long-window past client start, before the crash.
        attach_fault_monitor(telemetry, arm_at_us=warmup_us + 60_000.0)
    plat, ingress = _build_platform(base, env, cost)
    for runtime in plat.runtimes.values():
        runtime.invoke_timeout_us = invoke_timeout_us
    ingress.start()
    plat.start()

    fleet = ClientFleet(env, plat.cluster, ingress, path="/home",
                        body_bytes=256, payload=path_payload("/home"),
                        timeout_us=client_timeout_us,
                        reconnect=True, reconnect_us=5_000.0,
                        stats_bucket_us=5_000.0)

    def kickoff():
        yield env.timeout(warmup_us)
        fleet.spawn(clients)

    env.process(kickoff(), name="kickoff")

    plan = FaultPlan().node_crash(crash_at_us, "worker1", down_us=down_us)
    injector = FaultInjector(env, plat, plan, recovery=recovery)
    injector.start()

    restart_at = crash_at_us + down_us
    end = restart_at + post_us
    env.run(until=end)

    # Steady-state windows (multiples of the 5 ms meter resolution).
    pre = fleet.rps(warmup_us + 40_000.0, crash_at_us)
    outage = fleet.rps(crash_at_us + 40_000.0, restart_at - 5_000.0)
    post = fleet.rps(restart_at + 30_000.0, end)

    # Time from the crash until a 10 ms goodput window is back to 90%
    # of the pre-fault level (includes the clients' own re-dial time).
    recover_ms = -1.0
    if pre > 0:
        t = crash_at_us
        while t + 10_000.0 <= end:
            if fleet.rps(t, t + 10_000.0) >= 0.9 * pre:
                recover_ms = (t - crash_at_us) / 1000.0
                break
            t += 5_000.0

    completed = fleet.total_completed()
    errors = fleet.total_errors()
    metrics: Dict[str, object] = {
        "pre_rps": pre,
        "outage_rps": outage,
        "post_rps": post,
        "restored_pct": 100.0 * outage / pre if pre else 0.0,
        "post_pct": 100.0 * post / pre if pre else 0.0,
        "recover_ms": recover_ms,
        "availability_pct": (100.0 * completed / (completed + errors)
                             if completed + errors else 0.0),
        "client_errors": errors,
        "client_reconnects": sum(c.reconnects for c in fleet.clients),
        "qp_reconnects": sum(e.conn_mgr.reconnects_succeeded
                             for e in plat.engines.values()),
        "flushed_cqes": sum(e.rnic.flushed_cqes
                            for e in plat.engines.values()),
        "fault_events": len(injector.timeline),
    }
    if telemetry is not None:
        metrics["telemetry"] = telemetry
    return metrics


def run_ext_fault_recovery(
    configs=FAULT_CONFIGS,
    clients: int = 12,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    **point_kwargs,
) -> ExperimentResult:
    """Goodput through a worker-node crash, per configuration."""
    result = ExperimentResult(
        "EXT - failure recovery (worker1 crash + restart)",
        columns=["config", "pre_rps", "outage_rps", "post_rps",
                 "restored_pct", "recover_ms", "avail_pct",
                 "client_errors", "qp_reconnects", "flushed_cqes"],
    )
    configs = tuple(configs)
    points = parallel_map(
        run_fault_point,
        [((config,), dict(clients=clients, cost=cost, **point_kwargs))
         for config in configs],
        jobs=jobs,
    )
    for config, m in zip(configs, points):
        result.add_row(config, round(m["pre_rps"]), round(m["outage_rps"]),
                       round(m["post_rps"]), round(m["restored_pct"], 1),
                       round(m["recover_ms"], 1),
                       round(m["availability_pct"], 1),
                       int(m["client_errors"]), int(m["qp_reconnects"]),
                       int(m["flushed_cqes"]))
    result.note(
        "recovery (route withdrawal + replica failover + QP eviction + "
        "reconnect) should restore >= 90% of pre-fault goodput during "
        "the outage; the no-recovery baseline keeps routing into the "
        "dead node and collapses"
    )
    return result
