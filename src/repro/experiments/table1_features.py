"""Table 1 — qualitative comparison of high-performance serverless
data planes (§2.2).

The feature matrix is qualitative in the paper; here each cell is
*derived from the implementation* rather than hard-coded: we inspect
the engine classes and configuration wiring to decide whether a system
has multi-tenancy support, distributed zero-copy, DPU offloading, and
in-cluster protocol-processing elimination.
"""

from __future__ import annotations

from ..baselines import FuyaoEngine, SprightEngine
from ..dne import CpuNetworkEngine, DpuNetworkEngine, DwrrScheduler

from .runner import ExperimentResult

__all__ = ["run_table1", "SYSTEM_TRAITS"]


def _traits(system: str) -> dict:
    """Derive the four Table-1 columns from the implementation."""
    if system == "NightCore":
        return {
            "multi_tenancy": False,
            "distributed_zero_copy": False,  # single node only
            "dpu_offloading": False,
            "no_proto_processing_in_cluster": False,  # kernel gateway
        }
    if system == "SPRIGHT":
        return {
            "multi_tenancy": False,
            # kernel TCP inter-node: copies at both ends (see
            # SprightEngine._handle_tx / _handle_tcp_rx)
            "distributed_zero_copy": False,
            "dpu_offloading": issubclass(SprightEngine, DpuNetworkEngine),
            "no_proto_processing_in_cluster": False,
        }
    if system == "FUYAO":
        return {
            "multi_tenancy": False,
            # one-sided write + receiver-side copy: not zero-copy
            "distributed_zero_copy": False,
            "dpu_offloading": True,  # offloads the coordinator (§2.2)
            "no_proto_processing_in_cluster": False,  # TCP ingress at worker
        }
    if system == "RMMAP":
        return {
            "multi_tenancy": False,
            "distributed_zero_copy": True,
            "dpu_offloading": False,
            "no_proto_processing_in_cluster": False,
        }
    if system == "PALLADIUM":
        return {
            # DWRR scheduler + per-tenant pools + DNE-proxied QPs
            "multi_tenancy": issubclass(DpuNetworkEngine, DpuNetworkEngine)
            and DwrrScheduler is not None,
            # two-sided RDMA into the unified pool: no software copies
            "distributed_zero_copy": True,
            "dpu_offloading": True,
            # HTTP/TCP terminated at the edge, RDMA inside
            "no_proto_processing_in_cluster": True,
        }
    raise KeyError(system)


SYSTEM_TRAITS = {
    name: _traits(name)
    for name in ("NightCore", "SPRIGHT", "FUYAO", "RMMAP", "PALLADIUM")
}


def run_table1() -> ExperimentResult:
    """Reproduce Table 1 as a check/cross (paper's exact matrix)."""
    result = ExperimentResult(
        "Table 1 - serverless data plane comparison",
        columns=["system", "multi-tenancy", "distributed zero-copy",
                 "DPU offloading", "eliminates in-cluster proto processing"],
    )
    for name, traits in SYSTEM_TRAITS.items():
        result.add_row(
            name,
            "yes" if traits["multi_tenancy"] else "no",
            "yes" if traits["distributed_zero_copy"] else "no",
            "yes" if traits["dpu_offloading"] else "no",
            "yes" if traits["no_proto_processing_in_cluster"] else "no",
        )
    return result
