"""Experiment harness shared by every figure/table reproduction.

Each experiment module exposes a ``run_*`` function returning an
:class:`ExperimentResult`: a named table of rows (what the paper's
figure plots) plus free-form series for time-series figures.  The
benchmarks print these tables; EXPERIMENTS.md records them against the
paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """One experiment's output: a table plus optional named series."""

    name: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    series: Dict[str, List] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: optional telemetry snapshot (a :meth:`MetricsRegistry.snapshot`
    #: dict) captured when the experiment ran instrumented
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: optional SLO alert timeline from the monitor: JSON-safe
    #: transition dicts ({alert, state, ts, window, severity, burn, ...})
    #: in firing order, tagged with the run that produced them
    alerts: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: row has {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_series(self, key: str, points: List) -> None:
        self.series[key] = points

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_metrics(self, registry) -> None:
        """Attach a metrics registry (or snapshot dict) to the result."""
        snapshot = getattr(registry, "snapshot", None)
        self.metrics = snapshot() if callable(snapshot) else dict(registry)

    def attach_alerts(self, monitor, **tags: Any) -> None:
        """Append a monitor's alert timeline, tagging every transition
        with the given run coordinates (e.g. config=..., multiplier=...)."""
        timeline = getattr(monitor, "timeline", monitor)
        for transition in timeline:
            self.alerts.append({**transition, **tags})

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def row_dict(self, index: int) -> Dict[str, Any]:
        return dict(zip(self.columns, self.rows[index]))

    def find_row(self, **match: Any) -> Dict[str, Any]:
        """First row whose named columns equal the given values."""
        for row in self.rows:
            d = dict(zip(self.columns, row))
            if all(d.get(k) == v for k, v in match.items()):
                return d
        raise KeyError(f"{self.name}: no row matching {match}")

    def __str__(self) -> str:
        return format_table(self.name, self.columns, self.rows, self.notes)


def format_table(name: str, columns: Sequence[str], rows: Sequence[Sequence[Any]],
                 notes: Optional[Sequence[str]] = None) -> str:
    """Render a fixed-width table like the paper's result tables."""
    def fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    for note in notes or []:
        lines.append(f"note: {note}")
    return "\n".join(lines)
