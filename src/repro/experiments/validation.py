"""Paper anchors as data: programmatic reproduction checks.

EXPERIMENTS.md narrates the paper-vs-measured comparison; this module
encodes the same anchors as machine-checkable bands so a benchmark run
can be *validated* automatically::

    from repro.experiments import run_fig12, validation
    failures = validation.check_fig12(run_fig12())
    assert not failures

Each check returns a list of human-readable violation strings (empty =
the run is inside every band).  Bands are deliberately generous — the
reproduction target is shape and factor, not testbed-exact numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .runner import ExperimentResult

__all__ = ["Band", "PAPER_ANCHORS", "check_fig12", "check_fig13",
           "check_fig15", "check_fig16", "check_all"]


@dataclass(frozen=True)
class Band:
    """An acceptance band around a paper anchor."""

    paper: float
    low: float
    high: float
    source: str

    def check(self, measured: float, label: str) -> List[str]:
        if self.low <= measured <= self.high:
            return []
        return [
            f"{label}: measured {measured:.3g} outside "
            f"[{self.low:.3g}, {self.high:.3g}] (paper {self.paper:.3g}; "
            f"{self.source})"
        ]


#: the paper numbers each experiment is validated against
PAPER_ANCHORS: Dict[str, Dict[str, Band]] = {
    "fig12_rtt_us@4096": {
        "two-sided": Band(11.6, 9.0, 14.0, "Fig. 12 (1)"),
        "owrc-best": Band(15.0, 11.5, 18.5, "Fig. 12 (1)"),
        "owrc-worst": Band(16.7, 13.0, 21.0, "Fig. 12 (1)"),
        "owdl": Band(26.1, 20.0, 33.0, "Fig. 12 (1)"),
    },
    "fig13_rps_ratio": {
        "palladium/f-ingress": Band(3.2, 2.0, 4.5, "§4.1.3"),
        "palladium/k-ingress": Band(11.4, 7.0, 20.0, "§4.1.3"),
    },
    "fig15_share_ratio": {
        "t1/t2": Band(6.0, 4.5, 7.5, "Fig. 15 (2), weights 6:1"),
        "t3/t2": Band(2.0, 1.4, 2.7, "Fig. 15 (2), weights 2:1"),
    },
    "fig16_rps_ratio@80": {
        "dne/cne": Band(1.55, 1.2, 2.0, "§4.3: 1.3-1.8x beyond 20 clients"),
        "dne/fuyao-f": Band(3.0, 2.0, 4.5, "§4.3: 2.1-4.1x"),
        "dne/spright": Band(3.2, 2.2, 4.8, "§4.3: 2.4-4.1x"),
        "dne/nightcore": Band(12.0, 5.0, 21.0, "§4.3: 5.1-20.9x"),
    },
}


def check_fig12(result: ExperimentResult) -> List[str]:
    """Validate Fig. 12 RTTs at 4 KB against the paper's numbers."""
    failures: List[str] = []
    bands = PAPER_ANCHORS["fig12_rtt_us@4096"]
    for variant, band in bands.items():
        row = result.find_row(variant=variant, size_bytes=4096)
        failures += band.check(row["mean_rtt_us"], f"fig12:{variant}@4KB")
    return failures


def check_fig13(result: ExperimentResult, clients: int = 64) -> List[str]:
    """Validate the ingress RPS ratios at high client count."""
    failures: List[str] = []
    rps = {
        kind: result.find_row(ingress=kind, clients=clients)["rps"]
        for kind in ("palladium", "f-ingress", "k-ingress")
    }
    bands = PAPER_ANCHORS["fig13_rps_ratio"]
    failures += bands["palladium/f-ingress"].check(
        rps["palladium"] / max(1, rps["f-ingress"]), "fig13:palladium/f")
    failures += bands["palladium/k-ingress"].check(
        rps["palladium"] / max(1, rps["k-ingress"]), "fig13:palladium/k")
    return failures


def check_fig15(result: ExperimentResult,
                window_s=(100.0, 140.0)) -> List[str]:
    """Validate the DWRR three-tenant split in the all-active window."""
    rows = [r for r in result.rows if window_s[0] <= r[0] <= window_s[1]]
    if not rows:
        return [f"fig15: no samples in window {window_s}"]
    t1 = sum(r[1] for r in rows) / len(rows)
    t2 = sum(r[2] for r in rows) / len(rows)
    t3 = sum(r[3] for r in rows) / len(rows)
    if min(t1, t2, t3) <= 0:
        return ["fig15: a tenant saw zero throughput in the shared window"]
    bands = PAPER_ANCHORS["fig15_share_ratio"]
    return (bands["t1/t2"].check(t1 / t2, "fig15:t1/t2")
            + bands["t3/t2"].check(t3 / t2, "fig15:t3/t2"))


def check_fig16(result: ExperimentResult, chain: str = "Home Query",
                clients: int = 80) -> List[str]:
    """Validate the boutique data-plane RPS ratios."""
    rps = {
        config: result.find_row(chain=chain, config=config,
                                clients=clients)["rps"]
        for config in ("palladium-dne", "palladium-cne", "fuyao-f",
                       "spright", "nightcore")
    }
    dne = rps["palladium-dne"]
    bands = PAPER_ANCHORS["fig16_rps_ratio@80"]
    failures: List[str] = []
    failures += bands["dne/cne"].check(
        dne / max(1, rps["palladium-cne"]), "fig16:dne/cne")
    failures += bands["dne/fuyao-f"].check(
        dne / max(1, rps["fuyao-f"]), "fig16:dne/fuyao-f")
    failures += bands["dne/spright"].check(
        dne / max(1, rps["spright"]), "fig16:dne/spright")
    failures += bands["dne/nightcore"].check(
        dne / max(1, rps["nightcore"]), "fig16:dne/nightcore")
    return failures


#: experiment id -> validator (result signature varies per figure)
CHECKS: Dict[str, Callable] = {
    "fig12": check_fig12,
    "fig13": check_fig13,
    "fig15": check_fig15,
    "fig16": check_fig16,
}


def check_all(results: Dict[str, ExperimentResult]) -> List[str]:
    """Run every applicable validator over a dict of results."""
    failures: List[str] = []
    for name, result in results.items():
        checker = CHECKS.get(name)
        if checker is not None:
            failures += checker(result)
    return failures
