"""Extension — live migration downtime vs kill-and-cold-start.

Not a figure from the paper: this experiment exercises the migration
subsystem (:mod:`repro.migration`) end to end.  The Online Boutique
runs with ``currency`` — the /home chain's hottest leaf, invoked twice
per request — placed alone on worker1 (``ad`` keeps it company so node
drains move more than one function); everything else lives on worker0.
Mid-run, ``currency`` is relocated to worker0 under live closed-loop
/home traffic, either by **live migration** (checkpoint + image copy +
restore + atomic route flip; in-flight messages drained and
redelivered) or by the **kill-and-cold-start** baseline (tear down,
pay the container cold start, redeploy; in-flight requests die by
timeout).

Reported per point:

* ``downtime_ms`` — for migration, the instance's freeze-to-thaw
  blackout; for cold start, kill-to-first-request-served (TTFB).
* ``blip_p99_ms`` vs ``steady_p99_ms`` — client-observed p99 in the
  disruption window right after the relocation starts vs the steady
  window before it: the tail-latency blip.
* ``redirected`` — in-flight messages carried across the handover
  (checkpointed cargo + forwarded stragglers); always 0 for cold
  start, which simply loses them.

The migration rows sweep checkpoint state size: downtime grows with
the image (DMA + fabric copy + MTT registration) but stays well under
the cold start even at tens of MB — the Swift argument that elasticity
events should pay data-movement costs, not connection/runtime-setup
costs.  A final row drives a :meth:`FaultPlan.node_drain` through the
fault injector: worker1 gracefully drains (both functions live-migrate
off) and withdraws, with goodput intact.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..baselines import build_cne, build_dne, build_spright
from ..config import CostModel
from ..faults import FaultInjector, FaultPlan
from ..ingress import FIngress, PalladiumIngress, TcpWorkerAdapter
from ..migration import kill_and_cold_start
from ..platform import ServerlessPlatform, Tenant
from ..sim import Environment
from ..workloads import (
    BOUTIQUE_TENANT,
    ClientFleet,
    boutique_resolver,
    boutique_specs,
    path_payload,
)

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = [
    "run_migration_point",
    "run_drain_point",
    "run_ext_migration",
    "MIGRATION_STATE_KBS",
]

#: checkpoint image sizes swept by the full experiment (KB)
MIGRATION_STATE_KBS = (64, 1024, 16_384)

#: functions placed on worker1 (the node drained / migrated from)
MOVABLE = ("currency", "ad")


def _build_platform(config: str, env: Environment, cost: CostModel):
    """Boutique singletons: everything on worker0 except ``MOVABLE``."""
    builders = {
        "palladium-dne": build_dne,
        "palladium-cne": build_cne,
        "spright": build_spright,
    }
    plat = ServerlessPlatform(env, cost=cost, engine_builder=builders[config])
    plat.add_tenant(Tenant(BOUTIQUE_TENANT, pool_buffers=4096))
    for spec in boutique_specs():
        node = "worker1" if spec.name in MOVABLE else "worker0"
        plat.deploy(spec, node)

    if config in ("palladium-dne", "palladium-cne"):
        ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                   boutique_resolver, min_workers=2,
                                   recv_buffers=256, stats_bucket_us=5_000.0)
        ingress.add_tenant(BOUTIQUE_TENANT, buffers=2048)
        plat.coordinator.subscribe(ingress.routes)
        plat.register_external(ingress.AGENT, "ingress")
    else:
        adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], cost,
                                   stack_kind=TcpWorkerAdapter.FSTACK)
        ingress = FIngress(env, plat.cluster, cost, boutique_resolver,
                           {"worker0": adapter}, lambda fn: "worker0",
                           cores=2)
    return plat, ingress


def _window_p99(fleet: ClientFleet, marks: Dict[str, List[int]],
                start: str, end: str) -> float:
    """p99 over the latency samples completed between two index marks."""
    lo, hi = marks.get(start), marks.get(end)
    if lo is None or hi is None:
        return 0.0
    samples = [s for client, i0, i1 in zip(fleet.clients, lo, hi)
               for s in client.latency.samples[i0:i1]]
    if not samples:
        return 0.0
    samples.sort()
    rank = max(0, min(len(samples) - 1,
                      -(-99 * len(samples) // 100) - 1))
    return samples[rank]


def run_migration_point(
    state_kb: int,
    mode: str = "migrate",
    config: str = "palladium-dne",
    clients: int = 8,
    warmup_us: float = 40_000.0,
    move_at_us: float = 120_000.0,
    disruption_us: float = 60_000.0,
    post_us: float = 120_000.0,
    invoke_timeout_us: float = 15_000.0,
    client_timeout_us: float = 30_000.0,
    cost: Optional[CostModel] = None,
) -> Dict[str, float]:
    """One relocation of ``currency`` worker1 -> worker0 under traffic.

    ``mode`` is ``"migrate"`` (live migration, checkpoint image of
    ``state_kb`` KB) or ``"cold"`` (kill-and-cold-start; ``state_kb``
    is ignored — nothing is checkpointed).  Returns downtime and the
    steady/disruption-window client p99s.
    """
    if mode not in ("migrate", "cold"):
        raise ValueError(f"unknown relocation mode {mode!r}")
    cost = cost or CostModel()
    env = Environment()
    plat, ingress = _build_platform(config, env, cost)
    for runtime in plat.runtimes.values():
        runtime.invoke_timeout_us = invoke_timeout_us
    ingress.start()
    plat.start()

    fleet = ClientFleet(env, plat.cluster, ingress, path="/home",
                        body_bytes=256, payload=path_payload("/home"),
                        timeout_us=client_timeout_us,
                        reconnect=True, reconnect_us=5_000.0,
                        stats_bucket_us=5_000.0)

    def kickoff():
        yield env.timeout(warmup_us)
        fleet.spawn(clients)

    env.process(kickoff(), name="kickoff")

    # Per-client completed-sample counts at window boundaries, so the
    # steady and disruption windows see disjoint latency samples.
    marks: Dict[str, List[int]] = {}

    def marker(label: str, at_us: float):
        def proc():
            if at_us > env.now:
                yield env.timeout(at_us - env.now)
            marks[label] = [len(c.latency.samples) for c in fleet.clients]
        env.process(proc(), name=f"mark:{label}")

    # Cold start keeps the function dark for cost.cold_start_us, so its
    # disruption window (and the run itself) stretch to cover it.
    extra_us = cost.cold_start_us if mode == "cold" else 0.0
    marker("steady", warmup_us + 20_000.0)
    marker("move", move_at_us)
    marker("blip-end", move_at_us + disruption_us + extra_us)

    outcome: Dict[str, float] = {"downtime_us": -1.0, "bytes_copied": 0.0,
                                 "redirected": 0.0}

    def relocate():
        yield env.timeout(move_at_us)
        if mode == "migrate":
            record = yield from plat.migrate_function(
                "currency", "worker0", state_bytes=state_kb * 1024)
            outcome["downtime_us"] = record.downtime_us
            outcome["bytes_copied"] = float(record.bytes_copied)
            outcome["record"] = record
        else:
            t0 = env.now
            replacement = yield from kill_and_cold_start(
                plat, "currency", "worker0")
            # TTFB: cold start plus however long until the replacement
            # actually serves a request (clients must time out first).
            while replacement.handled == 0:
                yield env.timeout(200.0)
            outcome["downtime_us"] = env.now - t0

    env.process(relocate(), name="relocate")
    env.run(until=move_at_us + disruption_us + extra_us + post_us)

    record = outcome.pop("record", None)
    if record is not None:
        # the forwarder keeps counting stragglers after migrate() returns
        outcome["redirected"] = float(record.messages_redirected)
    steady_p99 = _window_p99(fleet, marks, "steady", "move")
    blip_p99 = _window_p99(fleet, marks, "move", "blip-end")
    completed = fleet.total_completed()
    errors = fleet.total_errors()
    return {
        **outcome,
        "steady_p99_us": steady_p99,
        "blip_p99_us": blip_p99,
        "blip_ratio": blip_p99 / steady_p99 if steady_p99 else 0.0,
        "steady_rps": fleet.rps(warmup_us + 20_000.0, move_at_us),
        "post_rps": fleet.rps(move_at_us + disruption_us + extra_us,
                              move_at_us + disruption_us + extra_us
                              + post_us),
        "client_errors": float(errors),
        "completed": float(completed),
    }


def run_drain_point(
    config: str = "palladium-dne",
    state_kb: int = 64,
    clients: int = 8,
    warmup_us: float = 40_000.0,
    drain_at_us: float = 120_000.0,
    deadline_us: Optional[float] = 200_000.0,
    post_us: float = 150_000.0,
    invoke_timeout_us: float = 15_000.0,
    client_timeout_us: float = 30_000.0,
    cost: Optional[CostModel] = None,
) -> Dict[str, float]:
    """Graceful worker1 drain via the fault plan, under live traffic.

    Both movable functions live-migrate to worker0, then the node
    withdraws.  Returns the drain duration, how many functions moved
    (vs fell back to crash semantics on deadline expiry), and goodput
    before/after.
    """
    cost = cost or CostModel()
    env = Environment()
    plat, ingress = _build_platform(config, env, cost)
    for runtime in plat.runtimes.values():
        runtime.invoke_timeout_us = invoke_timeout_us
    ingress.start()
    plat.start()

    fleet = ClientFleet(env, plat.cluster, ingress, path="/home",
                        body_bytes=256, payload=path_payload("/home"),
                        timeout_us=client_timeout_us,
                        reconnect=True, reconnect_us=5_000.0,
                        stats_bucket_us=5_000.0)

    def kickoff():
        yield env.timeout(warmup_us)
        fleet.spawn(clients)

    env.process(kickoff(), name="kickoff")

    plan = FaultPlan().node_drain(drain_at_us, "worker1",
                                  deadline_us=deadline_us,
                                  state_bytes=state_kb * 1024)
    injector = FaultInjector(env, plat, plan)
    injector.start()

    end = drain_at_us + post_us
    env.run(until=end)

    drained = [e for e in plat.coordinator.events if e[0] == "node-drained"]
    expired = [e for e in plat.coordinator.events
               if e[0] == "node-drain-expired"]
    migrated = len(drained[0][2]) if drained else 0
    drain_ms = -1.0
    if drained:
        records = plat.migrator.records
        if records:
            drain_ms = (max(r.t_thaw_us for r in records if r.ok)
                        - drain_at_us) / 1000.0
    return {
        "migrated": float(migrated),
        "expired": float(len(expired)),
        "withdrawn": float(len(plat.withdrawn_nodes)),
        "drain_ms": drain_ms,
        "pre_rps": fleet.rps(warmup_us + 20_000.0, drain_at_us),
        "post_rps": fleet.rps(drain_at_us + 40_000.0, end),
        "client_errors": float(fleet.total_errors()),
    }


def run_ext_migration(
    state_kbs=MIGRATION_STATE_KBS,
    config: str = "palladium-dne",
    clients: int = 8,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
    **point_kwargs,
) -> ExperimentResult:
    """Migration downtime/blip vs state size, against kill-and-cold-start."""
    result = ExperimentResult(
        "EXT - live migration vs kill-and-cold-start (currency moves)",
        columns=["mode", "state_kb", "downtime_ms", "steady_p99_ms",
                 "blip_p99_ms", "blip_ratio", "redirected",
                 "client_errors", "post_rps"],
    )
    state_kbs = tuple(state_kbs)
    calls = [((kb, "migrate"), dict(config=config, clients=clients,
                                    cost=cost, **point_kwargs))
             for kb in state_kbs]
    calls.append(((state_kbs[0], "cold"),
                  dict(config=config, clients=clients, cost=cost,
                       **point_kwargs)))
    points = parallel_map(run_migration_point, calls, jobs=jobs)
    labels = [("migrate", kb) for kb in state_kbs] + [("cold", "-")]
    for (mode, kb), m in zip(labels, points):
        result.add_row(mode, kb, round(m["downtime_us"] / 1000.0, 3),
                       round(m["steady_p99_us"] / 1000.0, 2),
                       round(m["blip_p99_us"] / 1000.0, 2),
                       round(m["blip_ratio"], 2),
                       int(m["redirected"]), int(m["client_errors"]),
                       round(m["post_rps"]))
    drain = run_drain_point(config=config, state_kb=state_kbs[0],
                            clients=clients, cost=cost)
    result.add_row("drain", state_kbs[0], round(drain["drain_ms"], 3),
                   "-", "-", "-", int(drain["migrated"]),
                   int(drain["client_errors"]), round(drain["post_rps"]))
    result.note(
        "live migration's freeze-to-thaw downtime must stay strictly "
        "below the kill-and-cold-start TTFB at every state size; the "
        "drain row gracefully empties worker1 (migrated == number of "
        "functions placed there) with goodput intact"
    )
    return result
