"""Extension experiment: connection churn under the explicit control plane.

Swift (arXiv 2501.19051) argues the RDMA *control plane* — QP setup,
CM round-trips, MR registration — is the bottleneck for elastic RDMA
computing.  This experiment measures exactly that, using the explicit
control plane of :mod:`repro.rdma.controlplane`: thousands of
short-lived function instances arrive along the stylized diurnal trace
(:func:`repro.workloads.diurnal.diurnal_schedule`) and each one wants
to deliver a first byte to a peer node.  What the instance pays before
that byte lands depends on the provisioning policy:

* **cold** — per-function QPs (``share_scope="function"``), no
  pre-warming, lazy MR registration: every instance walks the full
  explicit handshake (verbs ladder + CM round-trips on the real
  links) plus one ``ibv_reg_mr``;
* **warm-fixed / warm-predictive** — tenant-scoped shadow pool kept
  pre-established by a pre-warm policy; the instance only *activates*
  a shadow QP (RoGUE's local promotion) and the region was registered
  eagerly at deploy time;
* **shared** — tenant-scoped pool whose QPs stay active under
  multiplexed traffic: the instance pays neither setup nor
  activation, just the wire.

The second half sweeps offered churn against a per-node control-plane
**ops/sec ceiling**: below the ceiling, completed setups track offered
load; past it, the verbs FIFO saturates and completions plateau — the
throughput knee.  Everything is deterministic (arrivals are integrated
from the rate curve, no RNG), so the sweep is safe for
``parallel_map`` and the serial-vs-jobs byte gate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import CostModel
from ..hw import build_cluster
from ..rdma import (
    RDMA_HEADER_BYTES,
    ConnectionManager,
    ControlPlaneConfig,
    RdmaFabric,
)
from ..sim import Environment
from ..workloads.diurnal import RateSchedule, diurnal_schedule

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run_ceiling_point", "run_churn_point", "run_ext_conn_churn"]

#: the first byte every instance wants to land on the peer
FIRST_BYTE_FRAME = 64 + RDMA_HEADER_BYTES

#: known churn scenarios -> control-plane configuration
SCENARIOS = ("cold", "warm-fixed", "warm-predictive", "shared")


def _arrivals(schedule: RateSchedule, offset_us: float,
              cap: Optional[int] = None) -> List[float]:
    """Deterministic arrival times integrated from the rate curve.

    Inter-arrival gaps are ``1e6 / rate(t)`` — the rate curve's
    deterministic skeleton (no RNG, so serial and parallel sweeps are
    byte-identical by construction).
    """
    times: List[float] = []
    t = 0.0
    end = schedule.end_us
    while True:
        rate = schedule.rate_at(t)
        if rate <= 0.0:
            t += 1_000.0
            if t >= end:
                break
            continue
        t += 1e6 / rate
        if t >= end:
            break
        times.append(offset_us + t)
        if cap is not None and len(times) >= cap:
            break
    return times


def _scenario_config(scenario: str, explicit: bool,
                     ops_per_sec: Optional[float],
                     prewarm_floor: int) -> ControlPlaneConfig:
    if scenario == "cold":
        return ControlPlaneConfig(
            explicit=explicit, ops_per_sec=ops_per_sec,
            share_scope="function", mr_policy="lazy")
    if scenario == "warm-fixed":
        return ControlPlaneConfig(
            explicit=explicit, ops_per_sec=ops_per_sec,
            prewarm="fixed", prewarm_floor=prewarm_floor)
    if scenario == "warm-predictive":
        return ControlPlaneConfig(
            explicit=explicit, ops_per_sec=ops_per_sec,
            prewarm="predictive", prewarm_floor=1)
    if scenario == "shared":
        return ControlPlaneConfig(explicit=explicit, ops_per_sec=ops_per_sec)
    raise ValueError(f"unknown scenario {scenario!r}")


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _run_world(scenario: str, arrival_times: List[float], state_bytes: int,
               config: ControlPlaneConfig, warmup_us: float,
               maintenance_period_us: float = 5_000.0) -> Dict[str, float]:
    """One simulated world: arrivals churn, TTFBs are collected."""
    env = Environment()
    cost = CostModel()
    cluster = build_cluster(env, cost, workers=2)
    fabric = RdmaFabric(env, cluster, cost)
    fabric.install_rnic("worker0")
    fabric.install_rnic("worker1")
    mgr = ConnectionManager(env, fabric, "worker0", cost, config=config)
    cp = mgr.cp
    tenant = "churn"
    warm_pool = scenario in ("warm-fixed", "warm-predictive", "shared")
    # ceiling points churn cold too: every arrival is its own function
    cold = scenario == "cold" or scenario.startswith("ceiling@")
    ttfbs: List[float] = []
    done_times: List[float] = []

    def setup():
        """Deploy-time work, off every instance's critical path."""
        if warm_pool:
            floor = 1 if scenario == "warm-predictive" else 4
            yield from mgr.warm_up("worker1", tenant, count=floor)
            # tenant pool region registered eagerly at deploy
            handle = cp.mr_handle(tenant, state_bytes)
            yield from handle.acquire()

    def maintenance():
        """The engine-core-thread stand-in: demote idlers, pre-warm."""
        while True:
            yield env.timeout(maintenance_period_us)
            if scenario != "shared":
                mgr.deactivate_idle()
            if mgr.prewarm.active:
                yield from mgr.maintain_pools()

    def instance(index: int, at_us: float):
        yield env.timeout(at_us)
        t0 = env.now
        if cold:
            # The runtime issues the QP handshake and the lazy MR
            # registration together at spin-up (both verbs commands
            # enqueue on the command queue at arrival — sequencing them
            # would head-of-line block the MR op behind every newer
            # arrival's handshake reservation).
            handle = cp.mr_handle(tenant, state_bytes)
            conn = env.process(
                mgr.get_connection("worker1", tenant, fn=f"fn{index}"),
                name=f"churn-conn{index}")
            reg = env.process(handle.acquire(), name=f"churn-reg{index}")
            yield env.all_of([conn, reg])
            qp = conn.value
        else:
            qp = yield from mgr.get_connection("worker1", tenant)
            handle = None
        if not qp.is_errored:
            yield from fabric.link("worker0", "worker1").transmit(
                FIRST_BYTE_FRAME)
            ttfbs.append(env.now - t0)
            done_times.append(env.now)
        if handle is not None:
            handle.release()
        if scenario == "warm-fixed" or scenario == "warm-predictive":
            # instance teardown: its QP drops back to shadow state
            mgr.deactivate_idle()

    env.process(setup(), name="churn-setup")
    env.process(maintenance(), name="churn-maintenance")
    for index, at_us in enumerate(arrival_times):
        env.process(instance(index, at_us), name=f"churn-fn{index}")
    horizon = (arrival_times[-1] if arrival_times else warmup_us)
    env.run(until=horizon + 500_000.0)

    ttfbs.sort()
    duration_s = max(1e-9, (arrival_times[-1] - arrival_times[0]) / 1e6
                     if len(arrival_times) > 1 else 1e-9)
    # completions credited only inside the offered window — the drain
    # tail would otherwise hide the saturation knee
    window_end = arrival_times[-1] if arrival_times else 0.0
    in_window = sum(1 for t in done_times if t <= window_end)
    return {
        "scenario": scenario,
        "instances": len(arrival_times),
        "offered_per_s": (len(arrival_times) - 1) / duration_s
        if len(arrival_times) > 1 else 0.0,
        "completed_per_s": in_window / duration_s
        if len(arrival_times) > 1 else 0.0,
        "completed": len(ttfbs),
        "ttfb_p50_us": _percentile(ttfbs, 0.50),
        "ttfb_p95_us": _percentile(ttfbs, 0.95),
        "ttfb_mean_us": sum(ttfbs) / len(ttfbs) if ttfbs else 0.0,
        "setups": mgr.connections_established,
        "pooled_qps": mgr.pooled_count(),
        "prewarm_ms": cp.setup_time_spent / 1_000.0,
        "cp_wait_ms": cp.throttle_wait_us / 1_000.0,
        "cp_ops": cp.ops_admitted,
        "mr_bytes": cp.mr_registered_bytes,
    }


def run_churn_point(scenario: str, day_us: float = 2_000_000.0,
                    base_rps: float = 400.0, peak_rps: float = 2_400.0,
                    state_kb: int = 64, explicit: bool = True,
                    ops_per_sec: Optional[float] = None,
                    prewarm_floor: int = 4,
                    max_instances: Optional[int] = None) -> Dict[str, float]:
    """One churn scenario under the diurnal trace; returns its metrics."""
    schedule = diurnal_schedule(day_us, base_rps, peak_rps)
    warmup_us = 50_000.0
    arrival_times = _arrivals(schedule, warmup_us, cap=max_instances)
    config = _scenario_config(scenario, explicit, ops_per_sec, prewarm_floor)
    return _run_world(scenario, arrival_times, state_kb * 1024, config,
                      warmup_us)


def run_ceiling_point(multiplier: float, ops_per_sec: float = 400.0,
                      duration_us: float = 1_000_000.0,
                      state_kb: int = 64) -> Dict[str, float]:
    """Cold churn at a constant rate against a verbs-ops ceiling.

    ``multiplier`` scales the offered spin-up rate relative to the
    ceiling's service capacity (one cold spin-up = 4 verbs commands
    for the handshake + 1 MR registration, so capacity is
    ``ops_per_sec / 5`` spin-ups per second).
    """
    capacity_per_s = ops_per_sec / 5.0
    offered_per_s = capacity_per_s * multiplier
    schedule = RateSchedule([(0.0, offered_per_s),
                             (duration_us, offered_per_s)])
    warmup_us = 10_000.0
    arrival_times = _arrivals(schedule, warmup_us)
    config = _scenario_config("cold", True, ops_per_sec, 0)
    point = _run_world(f"ceiling@{multiplier:g}x", arrival_times,
                       state_kb * 1024, config, warmup_us)
    point["ceiling_per_s"] = capacity_per_s
    return point


def run_ext_conn_churn(
    scenarios: Sequence[str] = SCENARIOS,
    multipliers: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    day_us: float = 2_000_000.0,
    base_rps: float = 400.0,
    peak_rps: float = 2_400.0,
    ops_per_sec: float = 400.0,
    state_kb: int = 64,
    max_instances: Optional[int] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """The connection-churn study: policy TTFBs + the ceiling knee."""
    result = ExperimentResult(
        name="ext_conn_churn (control-plane churn: TTFB by policy + "
             "ops-ceiling knee)",
        columns=["scenario", "instances", "offered_per_s",
                 "completed_per_s", "ttfb_p50_us", "ttfb_p95_us",
                 "ttfb_mean_us", "setups", "pooled_qps", "prewarm_ms",
                 "cp_wait_ms"],
    )
    calls = [((scenario,), dict(day_us=day_us, base_rps=base_rps,
                                peak_rps=peak_rps, state_kb=state_kb,
                                max_instances=max_instances))
             for scenario in scenarios]
    calls.extend(((multiplier,), dict(ops_per_sec=ops_per_sec,
                                      state_kb=state_kb))
                 for multiplier in multipliers)
    fns = [run_churn_point] * len(scenarios) + \
        [run_ceiling_point] * len(multipliers)
    # One heterogeneous sweep: dispatch through a picklable trampoline
    # so scenario and ceiling points share the worker pool.
    points = parallel_map(_dispatch_point,
                          [((fn.__name__,) + tuple(args), kwargs)
                           for fn, (args, kwargs) in zip(fns, calls)],
                          jobs=jobs)
    for point in points:
        result.add_row(
            point["scenario"], point["instances"],
            point["offered_per_s"], point["completed_per_s"],
            point["ttfb_p50_us"], point["ttfb_p95_us"],
            point["ttfb_mean_us"], point["setups"], point["pooled_qps"],
            point["prewarm_ms"], point["cp_wait_ms"],
        )
    by_scenario = {p["scenario"]: p for p in points}
    if {"cold", "warm-fixed", "shared"} <= set(by_scenario):
        cold = by_scenario["cold"]["ttfb_p50_us"]
        warm = by_scenario["warm-fixed"]["ttfb_p50_us"]
        shared = by_scenario["shared"]["ttfb_p50_us"]
        result.note(
            f"TTFB p50: cold {cold:,.1f}us > warm {warm:,.2f}us > "
            f"shared {shared:,.2f}us "
            f"({'ordering holds' if cold > warm > shared else 'ORDERING VIOLATED'})")
    knees = [p for p in points if str(p["scenario"]).startswith("ceiling@")]
    if knees:
        cap = knees[0].get("ceiling_per_s", 0.0)
        result.note(
            "ops ceiling {:.0f}/s (= {:.0f} spin-ups/s): completions {} "
            "as offered crosses the knee".format(
                ops_per_sec, cap,
                " -> ".join(f"{p['completed_per_s']:.0f}/s"
                            for p in knees)))
    return result


def _dispatch_point(kind: str, *args, **kwargs) -> Dict[str, float]:
    """Picklable trampoline for the heterogeneous sweep."""
    fn = {"run_churn_point": run_churn_point,
          "run_ceiling_point": run_ceiling_point}[kind]
    return fn(*args, **kwargs)
