"""Fig. 11 — Off-path DNE (cross-processor shm) vs on-path DNE (§4.1.1).

An echo server/client function pair on different nodes, driven in a
closed loop.  The off-path engine lets the RNIC DMA straight into host
memory; the on-path engine stages every payload through DPU-local
memory via the weak SoC DMA engine.

Paper anchors: off-path achieves up to 30 % more RPS and >20 % lower
latency; the two are close at low concurrency and diverge as the SoC
DMA engine saturates.
"""

from __future__ import annotations

from typing import Optional

from ..baselines import build_dne, build_dne_onpath
from ..config import CostModel, SEC
from ..platform import ServerlessPlatform, Tenant
from ..sim import Environment
from ..workloads import DirectDriver, deploy_echo_pair

from .runner import ExperimentResult

__all__ = ["run_fig11", "run_echo_point"]

MODES = {"off-path": build_dne, "on-path": build_dne_onpath}


def run_echo_point(
    mode: str,
    payload_bytes: int,
    concurrency: int,
    duration_us: float = 100_000.0,
    warmup_us: float = 40_000.0,
    cost: Optional[CostModel] = None,
):
    """One Fig. 11 cell; returns ``(rps, mean_latency_us)``."""
    cost = cost or CostModel()
    env = Environment()
    plat = ServerlessPlatform(env, cost=cost, engine_builder=MODES[mode])
    client, server_name = deploy_echo_pair(
        plat, buffer_bytes=max(8192, 2 * payload_bytes)
    )
    plat.start()
    drivers = [
        DirectDriver(env, client, server_name, payload="x", size=payload_bytes,
                     name=f"drv{i}")
        for i in range(concurrency)
    ]

    def kickoff():
        yield env.timeout(warmup_us)
        for driver in drivers:
            env.process(driver.run(), name=driver.name)

    env.process(kickoff(), name="kickoff")
    env.run(until=warmup_us + duration_us)
    completed = sum(d.completed for d in drivers)
    samples = [s for d in drivers for s in d.latency.samples]
    mean_latency = sum(samples) / len(samples) if samples else 0.0
    return completed / (duration_us / 1e6), mean_latency


def run_fig11(
    payload_sizes=(64, 512, 1024, 4096, 16384),
    concurrencies=(1, 4, 8, 16, 32, 64),
    duration_us: float = 100_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Reproduce both Fig. 11 panels.

    Panel (1): RPS vs payload size on a single connection.
    Panel (2): RPS vs concurrency at 1 KB payloads.
    """
    cost = cost or CostModel()
    result = ExperimentResult(
        "Fig 11 - off-path vs on-path DNE",
        columns=["panel", "mode", "x", "rps", "mean_latency_us"],
    )
    for mode in MODES:
        for size in payload_sizes:
            rps, lat = run_echo_point(mode, size, 1, duration_us, cost=cost)
            result.add_row("payload", mode, size, round(rps), round(lat, 1))
    for mode in MODES:
        for conc in concurrencies:
            rps, lat = run_echo_point(mode, 1024, conc, duration_us, cost=cost)
            result.add_row("concurrency", mode, conc, round(rps), round(lat, 1))
    result.note(
        "paper: off-path up to 30% higher RPS, >20% lower latency; "
        "gap grows with concurrency as the SoC DMA engine saturates"
    )
    return result
