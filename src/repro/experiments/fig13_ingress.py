"""Fig. 13 — Cluster ingress designs (§4.1.3).

An HTTP echo function on a worker node serves external clients relayed
by one of three one-core cluster ingresses:

* **K-Ingress** — NGINX on the kernel TCP/IP stack, proxying TCP to the
  worker (deferred conversion; worker terminates TCP again via F-stack);
* **F-Ingress** — the same proxy on DPDK F-stack;
* **Palladium** — HTTP/TCP terminated at the edge, payload converted to
  RDMA (early conversion; no protocol stack on the worker).

Paper anchors: Palladium up to 11.4x / 3.2x the RPS of K-Ingress /
F-Ingress, with far lower end-to-end latency (K-Ingress degrades up to
11.7x at high client counts).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..config import CostModel
from ..ingress import FIngress, KIngress, PalladiumIngress, TcpWorkerAdapter
from ..platform import ServerlessPlatform, Tenant
from ..sim import Environment
from ..workloads import ClientFleet, deploy_http_echo, ECHO_TENANT

from .runner import ExperimentResult

__all__ = ["run_fig13", "run_ingress_point", "INGRESS_KINDS"]

INGRESS_KINDS = ("k-ingress", "f-ingress", "palladium")


def build_ingress(kind: str, plat: ServerlessPlatform, resolver,
                  cores: int = 1, autoscale: bool = False,
                  max_workers: int = 8):
    """Construct (and start) one of the three ingress designs."""
    env, cost = plat.env, plat.cost
    if kind == "palladium":
        ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                   resolver, min_workers=cores,
                                   max_workers=max_workers, autoscale=autoscale)
        ingress.add_tenant(ECHO_TENANT, buffers=512)
        plat.coordinator.subscribe(ingress.routes)
        plat.register_external(ingress.AGENT, "ingress")
        return ingress
    # Proxy variants need a worker-side TCP adapter (F-stack per §4.1.3).
    adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], cost,
                               stack_kind=TcpWorkerAdapter.FSTACK)
    adapters = {"worker0": adapter}
    entry_node = lambda fn: "worker0"
    if kind == "k-ingress":
        return KIngress(env, plat.cluster, cost, resolver, adapters, entry_node,
                        cores=cores)
    if kind == "f-ingress":
        return FIngress(env, plat.cluster, cost, resolver, adapters, entry_node,
                        cores=cores, autoscale=autoscale, max_workers=max_workers)
    raise ValueError(f"unknown ingress kind {kind!r}")


def run_ingress_point(
    kind: str,
    clients: int,
    duration_us: float = 200_000.0,
    warmup_us: float = 60_000.0,
    cost: Optional[CostModel] = None,
    body_bytes: int = 256,
    timeout_us: Optional[float] = 2_000_000.0,
) -> Tuple[float, float, int]:
    """One Fig. 13 cell; returns ``(rps, mean_latency_us, errors)``."""
    cost = cost or CostModel()
    env = Environment()
    plat = ServerlessPlatform(env, cost=cost)
    resolver = deploy_http_echo(plat)
    ingress = build_ingress(kind, plat, resolver)
    ingress.start()
    plat.start()
    fleet = ClientFleet(env, plat.cluster, ingress, path="/echo",
                        body_bytes=body_bytes, payload="e" * 8,
                        timeout_us=timeout_us)

    def kickoff():
        yield env.timeout(warmup_us)
        fleet.spawn(clients)

    env.process(kickoff(), name="kickoff")
    measure_from = warmup_us + duration_us * 0.25
    env.run(until=warmup_us + duration_us)
    rps = fleet.rps(measure_from, warmup_us + duration_us)
    return rps, fleet.mean_latency_us(), fleet.total_errors()


def run_fig13(
    client_counts=(1, 4, 16, 32, 64),
    duration_us: float = 200_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Reproduce Fig. 13: latency and RPS per ingress vs client count."""
    cost = cost or CostModel()
    result = ExperimentResult(
        "Fig 13 - cluster ingress designs (1 core)",
        columns=["ingress", "clients", "rps", "mean_latency_us", "errors"],
    )
    for kind in INGRESS_KINDS:
        for clients in client_counts:
            rps, latency, errors = run_ingress_point(
                kind, clients, duration_us, cost=cost
            )
            result.add_row(kind, clients, round(rps), round(latency, 1), errors)
    result.note(
        "paper: Palladium ingress up to 3.2x RPS of F-Ingress and "
        "11.4x of K-Ingress; K-Ingress latency degrades up to 11.7x"
    )
    return result
