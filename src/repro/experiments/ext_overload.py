"""Extension — goodput under overload with and without QoS (repro.qos).

The paper's multi-tenant story (§3.4) stops at DWRR fairness between
*well-behaved* tenants; this extension asks what happens when tenants
misbehave.  Three tenants (gold/silver/best — weights 10/2/1, classes
guaranteed/standard/best-effort) drive a two-hop relay→echo chain
through each data plane with *open-loop* sources swept past the
saturation point.  Palladium's DNE runs the full :mod:`repro.qos`
stack — token-bucket + SLO admission at the ingress, CoDel-bounded
DWRR queues, and hop-by-hop credit windows — while the SPRIGHT and
FUYAO baselines get only what their papers describe: unbounded ingress
queues and naive tail-drop at a full engine queue.

Expected shape (the acceptance criterion for this extension):

* Palladium (DNE) holds >= ~90 % of its peak goodput at 2x the
  saturating load — excess is shed *at the edge* before it can queue.
* The tail-drop baselines degrade markedly past saturation: queues
  grow without bound, completions blow the deadline, and goodput
  collapses toward zero.
* In the isolation run, a weight-10 guaranteed tenant offered its fair
  share keeps its goodput while the best-effort hog is shed first.

Offered load is expressed as a multiple of each configuration's
empirically calibrated saturation throughput (:data:`CAPACITY_RPS`),
so "2x" means the same degree of overload for every data plane.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..baselines import build_dne, build_fuyao, build_spright
from ..config import CostModel
from ..ingress import FIngress, PalladiumIngress, TcpWorkerAdapter
from ..platform import FunctionSpec, ServerlessPlatform, Tenant
from ..qos import DROP_CODEL, DROP_TAIL, QueueBounds, qos_for_platform
from ..sim import Environment
from ..telemetry import (QuantileRule, RateRule, RatioRule, Selector, Slo,
                         Telemetry)
from ..workloads import OpenLoopSource

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = [
    "attach_overload_monitor",
    "run_ext_overload",
    "run_overload_isolation",
    "run_overload_point",
    "CAPACITY_RPS",
    "DEADLINE_US",
    "OVERLOAD_CONFIGS",
    "TENANTS",
]

#: evaluated data planes: Palladium's DNE with the full QoS stack vs
#: the two multi-node baselines with naive tail-drop only
OVERLOAD_CONFIGS = ("palladium-dne", "spright", "fuyao")

#: uniform engine cost inflation (the Fig. 15 trick) so the sweep
#: saturates at a few thousand RPS and each point stays a small sim;
#: applied symmetrically to every design's forwarding path
OVERLOAD_THROTTLE = 6.0

#: (name, DWRR weight, QoS class, share of offered load)
TENANTS = (
    ("gold", 10.0, "guaranteed", 0.50),
    ("silver", 2.0, "standard", 0.25),
    ("best", 1.0, "best-effort", 0.25),
)

#: end-to-end SLO every completion is judged against (same for all
#: tenants; the *classes* differ in how early the gate sheds them)
DEADLINE_US = 5_000.0

#: calibrated single-config saturation goodput (requests/s) at
#: OVERLOAD_THROTTLE; "multiplier" in the sweep is relative to this.
#: Re-calibrate whenever the cost model or the throttle changes.
CAPACITY_RPS = {
    "palladium-dne": 20_000.0,
    "spright": 8_500.0,
    "fuyao": 10_500.0,
}

#: per-tenant engine queue bound; tail-drop for baselines, CoDel for
#: Palladium (the credit window keeps Palladium's queues below this)
QUEUE_CAPACITY = 64

#: admission caps: each tenant's token bucket admits slightly *below*
#: its fair share of capacity, so past saturation the downstream
#: pipeline keeps a stable operating point and the excess is rejected
#: at the edge (the deadline gate handles transient queue growth)
RATE_CAP_SLACK = 0.85


def _throttled(cost: CostModel) -> CostModel:
    """Inflate engine-side costs so saturation happens at low RPS.

    Every data plane's forwarding path is scaled by the same factor
    (DNE/Comch for Palladium, kernel TCP + SK_MSG for SPRIGHT,
    one-sided write/poll + SK_MSG for FUYAO) so "1x capacity" means
    the same degree of engine saturation in each configuration.
    """
    t = OVERLOAD_THROTTLE
    return dataclasses.replace(
        cost,
        dne_tx_proc_us=cost.dne_tx_proc_us * t,
        dne_rx_proc_us=cost.dne_rx_proc_us * t,
        comch_e_cpu_us=cost.comch_e_cpu_us * t,
        kernel_tcp_us=cost.kernel_tcp_us * t,
        kernel_irq_us=cost.kernel_irq_us * t,
        sk_msg_us=cost.sk_msg_us * t,
        sk_msg_interrupt_us=cost.sk_msg_interrupt_us * t,
        fuyao_tx_us=cost.fuyao_tx_us * t,
        fuyao_rx_us=cost.fuyao_rx_us * t,
    )


def _relay_handler(dst_fn: str):
    """Entry function: one inter-node hop (invoke echo), then respond."""

    def _relay(ctx, msg):
        reply = yield from ctx.invoke(dst_fn, msg.payload, msg.size)
        yield from ctx.respond(reply.payload, reply.size)

    return _relay


def _echo(ctx, msg):
    yield from ctx.respond(msg.payload, msg.size)


def _resolver(path: str) -> Tuple[str, str]:
    tenant = path.strip("/")
    return tenant, f"relay-{tenant}"


def _build(config: str, env: Environment, cost: CostModel):
    """Platform + ingress for one config, QoS wired per its nature."""
    builders = {
        "palladium-dne": build_dne,
        "spright": build_spright,
        "fuyao": build_fuyao,
    }
    plat = ServerlessPlatform(env, cost=cost, engine_builder=builders[config])
    qos_on = config == "palladium-dne"
    capacity = CAPACITY_RPS[config]
    for name, weight, qos_class, share in TENANTS:
        tenant = Tenant(name, weight=weight, pool_buffers=1024)
        if qos_on:
            # QoS contract: class + deadline + a rate cap just under
            # the tenant's fair share of the calibrated capacity.
            tenant.qos_class = qos_class
            tenant.deadline_us = DEADLINE_US
            tenant.rate_rps = RATE_CAP_SLACK * share * capacity
            tenant.burst = 64
        plat.add_tenant(tenant)
        relay = plat.deploy(FunctionSpec(f"relay-{name}", name,
                                         _relay_handler(f"echo-{name}"),
                                         work_us=2.0, concurrency=64),
                            "worker0")
        # A relay whose inner invoke was shed must give up at the SLO,
        # or every dropped message permanently strands a handler slot.
        relay.iolib.invoke_timeout_us = DEADLINE_US
        plat.deploy(FunctionSpec(f"echo-{name}", name, _echo,
                                 work_us=2.0, concurrency=64), "worker1")

    if qos_on:
        # Full stack: CoDel-bounded DWRR + hop-by-hop credits + an
        # SLO-aware admission gate at the ingress.  The delay estimate
        # uses the *throttled* per-event engine cost.
        svc_us = (cost.dne_tx_proc_us + cost.comch_e_cpu_us) * 1.6
        plat.enable_qos(
            bounds=QueueBounds(QUEUE_CAPACITY, policy=DROP_CODEL,
                               codel_target_us=500.0,
                               codel_interval_us=5_000.0),
            credits=True, credit_base=48, credit_min=4,
            credit_low_water=8, credit_high_water=56,
            credit_sources=(PalladiumIngress.AGENT,),
        )
        qos = qos_for_platform(plat, service_us_estimate=svc_us)
        # NB: recv postings draw from the same per-tenant ingress pool
        # the TX path allocates from — keep recv_buffers well below the
        # pool size or the gateway wedges on an exhausted pool.
        ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                   _resolver, min_workers=4,
                                   recv_buffers=128, qos=qos)
        for name, _, _, _ in TENANTS:
            ingress.add_tenant(name, buffers=1024)
        plat.coordinator.subscribe(ingress.routes)
        plat.register_external(ingress.AGENT, "ingress")
    else:
        # Baselines keep only what their papers describe: a naive
        # tail-drop at a full engine queue, unbounded everywhere else.
        plat.enable_qos(bounds=QueueBounds(QUEUE_CAPACITY,
                                           policy=DROP_TAIL))
        adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], cost,
                                   stack_kind=TcpWorkerAdapter.FSTACK)
        ingress = FIngress(env, plat.cluster, cost, _resolver,
                           {"worker0": adapter}, lambda fn: "worker0",
                           cores=2)
    return plat, ingress


#: SLO objectives by QoS class: (latency, availability).  The class IS
#: the contract — guaranteed tenants get tight objectives, standard a
#: looser pair, best-effort next to none (a best-effort burn-rate page
#: would be a contradiction in terms).
CLASS_OBJECTIVES = {
    "guaranteed": (0.95, 0.95),
    "standard": (0.80, 0.90),
    "best-effort": (0.60, 0.80),
}


def attach_overload_monitor(telemetry, step_us: float = 1_000.0,
                            arm_at_us: float = 0.0):
    """The standard SLO bundle for the overload sweep.

    Per tenant: a latency SLO (delivered responses within the deadline)
    and an availability SLO where *good* counts both delivered
    responses and deliberate admission sheds — Palladium rejecting a
    hog at the edge is the QoS stack working, not an outage, while a
    baseline silently queueing requests to death burns budget.
    Objectives come from :data:`CLASS_OBJECTIVES`.  Plus dashboard
    recording rules (offered/delivered rates, windowed p99, shed
    ratio).  Returns the attached monitor.
    """
    mon = telemetry.attach_monitor(step_us=step_us, arm_at_us=arm_at_us)
    for name, _, qos_class, _ in TENANTS:
        latency_obj, avail_obj = CLASS_OBJECTIVES[qos_class]
        mon.add_slo(Slo(
            f"slo-latency-{name}", objective=latency_obj,
            hist_metric="ingress_latency_us", threshold_us=DEADLINE_US,
            where={"tenant": name}, min_events=20,
            labels={"tenant": name, "sli": "latency"}))
        mon.add_slo(Slo(
            f"slo-availability-{name}", objective=avail_obj,
            good=[Selector("ingress_responses_total", {"tenant": name}),
                  Selector("ingress_admission_rejected_total",
                           {"tenant": name})],
            total=[Selector("ingress_requests_total", {"tenant": name})],
            min_events=20,
            labels={"tenant": name, "sli": "availability"}))
    mon.add_rule(RateRule("offered_rps", "ingress_requests_total", 5_000.0))
    mon.add_rule(RateRule("delivered_rps", "ingress_responses_total",
                          5_000.0))
    mon.add_rule(QuantileRule("ingress_p99_us", "ingress_latency_us",
                              0.99, 10_000.0))
    mon.add_rule(RatioRule("shed_ratio", "ingress_admission_rejected_total",
                           "ingress_requests_total", 10_000.0, default=0.0))
    return mon


def run_overload_point(
    config: str,
    multiplier: float,
    duration_us: float = 200_000.0,
    warmup_us: float = 160_000.0,
    cost: Optional[CostModel] = None,
    tenant_multipliers: Optional[Dict[str, float]] = None,
    with_telemetry: bool = False,
    with_monitor: bool = False,
) -> Dict[str, object]:
    """One (config, offered-load) cell of the overload sweep.

    ``multiplier`` scales every tenant's offered rate relative to its
    share of :data:`CAPACITY_RPS`; ``tenant_multipliers`` additionally
    scales individual tenants (the isolation study's hog).
    ``with_monitor`` implies telemetry and attaches the standard SLO
    bundle (:func:`attach_overload_monitor`); the monitor piggybacks on
    observations, so everything outside the ``telemetry`` key stays
    byte-identical to a monitor-off run (the CI determinism gate).
    """
    cost = _throttled(cost or CostModel())
    env = Environment()
    telemetry = (Telemetry.install(env)
                 if with_telemetry or with_monitor else None)
    if with_monitor:
        # Arm one slow-long-window past traffic start so no burn
        # window reaches back into the idle warmup.
        attach_overload_monitor(telemetry, arm_at_us=warmup_us + 60_000.0)
    plat, ingress = _build(config, env, cost)
    ingress.start()
    plat.start()

    capacity = CAPACITY_RPS[config]
    end_us = warmup_us + duration_us
    sources: Dict[str, OpenLoopSource] = {}
    for name, _, _, share in TENANTS:
        scale = multiplier * (tenant_multipliers or {}).get(name, 1.0)
        rate = share * capacity * scale
        sources[name] = OpenLoopSource(
            env, plat.cluster, ingress, rate_rps=rate,
            path=f"/{name}", body_bytes=256, rng=None,
            name=f"src-{name}", deadline_us=DEADLINE_US,
        )

    def kickoff():
        yield env.timeout(warmup_us)
        for source in sources.values():
            env.process(source.run(until_us=end_us),
                        name=f"{source.name}-run")

    env.process(kickoff(), name="kickoff")
    measure_from = warmup_us + duration_us * 0.25
    env.run(until=end_us)

    window_s = (env.now - measure_from) / 1e6
    per_tenant = {}
    for name, weight, qos_class, share in TENANTS:
        src = sources[name]
        scale = multiplier * (tenant_multipliers or {}).get(name, 1.0)
        per_tenant[name] = {
            "class": qos_class,
            "weight": weight,
            "offered_rps": share * capacity * scale,
            "goodput_rps": src.goodput_rps(measure_from, env.now),
            "good": src.good,
            "late": src.late,
            "rejected": src.rejected,
            "lost": src.lost(),
        }

    engine0 = plat.engines["worker0"]
    gate = ingress.qos.gate if getattr(ingress, "qos", None) else None
    metrics = {
        "config": config,
        "multiplier": multiplier,
        "offered_rps": sum(t["offered_rps"] for t in per_tenant.values()),
        "goodput_rps": sum(t["goodput_rps"] for t in per_tenant.values()),
        "throughput_rps": sum(
            s.throughput.rate(measure_from, env.now) * 1e6
            for s in sources.values()),
        "good": sum(t["good"] for t in per_tenant.values()),
        "late": sum(t["late"] for t in per_tenant.values()),
        "rejected": sum(t["rejected"] for t in per_tenant.values()),
        "lost": sum(t["lost"] for t in per_tenant.values()),
        "gate_admitted": gate.admitted if gate else 0,
        "gate_rejected": gate.rejected if gate else 0,
        "gate_rejections": (
            {f"{t}:{r}": n for (t, r), n in sorted(gate.rejections.items())}
            if gate else {}),
        "sched_dropped": sum(e.scheduler.dropped
                             for e in plat.engines.values()),
        "engine_dropped": sum(e.stats.dropped
                              for e in plat.engines.values()),
        "ingress_dropped": ingress.stats.dropped,
        "fairness_ratio": engine0.scheduler.fairness_ratio(),
        "window_s": window_s,
        "per_tenant": per_tenant,
    }
    if telemetry is not None:
        plat.export_metrics(telemetry)
        metrics["telemetry"] = telemetry
    return metrics


def run_ext_overload(
    configs=OVERLOAD_CONFIGS,
    multipliers=(0.5, 0.8, 1.0, 1.5, 2.0, 3.0),
    duration_us: float = 200_000.0,
    warmup_us: float = 160_000.0,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Goodput vs offered load past saturation, per data plane."""
    result = ExperimentResult(
        "Ext - goodput under overload (QoS vs tail-drop)",
        columns=["config", "multiplier", "offered_rps", "goodput_rps",
                 "pct_peak", "rejected", "late", "lost", "sched_dropped",
                 "fairness"],
    )
    configs = tuple(configs)
    multipliers = tuple(multipliers)
    all_points = parallel_map(
        run_overload_point,
        [((config, m, duration_us, warmup_us, cost), {})
         for config in configs for m in multipliers],
        jobs=jobs,
    )
    for ci, config in enumerate(configs):
        points = all_points[ci * len(multipliers):(ci + 1) * len(multipliers)]
        peak = max(p["goodput_rps"] for p in points) or 1.0
        for p in points:
            result.add_row(
                config, p["multiplier"], round(p["offered_rps"]),
                round(p["goodput_rps"]),
                round(100.0 * p["goodput_rps"] / peak, 1),
                p["rejected"], p["late"], p["lost"], p["sched_dropped"],
                round(p["fairness_ratio"], 3),
            )
    result.note(
        "open-loop gold/silver/best (w 10/2/1) past saturation; "
        "palladium-dne sheds at the edge (admission + credits + CoDel) "
        "and holds >=90% of peak at 2x, tail-drop baselines collapse"
    )
    return result


def run_overload_isolation(
    multiplier: float = 1.0,
    hog_multiplier: float = 5.0,
    duration_us: float = 200_000.0,
    warmup_us: float = 160_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Per-tenant isolation: a best-effort hog vs a guaranteed tenant.

    gold and silver offer their fair share; best offers
    ``hog_multiplier`` times its share (2x aggregate by default).  The
    QoS stack should shed the hog at the gate while the weight-10
    guaranteed tenant keeps its goodput.
    """
    point = run_overload_point(
        "palladium-dne", multiplier, duration_us, warmup_us, cost,
        tenant_multipliers={"best": hog_multiplier},
    )
    result = ExperimentResult(
        "Ext - per-tenant isolation under a best-effort hog",
        columns=["tenant", "class", "weight", "offered_rps",
                 "goodput_rps", "goodput_pct", "rejected", "late",
                 "lost"],
    )
    for name, _, _, _ in TENANTS:
        t = point["per_tenant"][name]
        offered = t["offered_rps"] or 1.0
        result.add_row(
            name, t["class"], t["weight"], round(t["offered_rps"]),
            round(t["goodput_rps"]),
            round(100.0 * t["goodput_rps"] / offered, 1),
            t["rejected"], t["late"], t["lost"],
        )
    rejections = ", ".join(
        f"{key}={n}" for key, n in point["gate_rejections"].items())
    result.note(
        f"aggregate {round(point['offered_rps'])} rps offered; gate "
        f"sheds [{rejections or 'none'}]; DWRR fairness "
        f"{round(point['fairness_ratio'], 3)}; the hog is rejected at "
        "the edge, the guaranteed tenant keeps its share"
    )
    return result
