"""Deterministic multiprocessing executor for experiment sweeps.

Every figure sweep in this reproduction is a grid of *independent*
simulation points: each point builds its own :class:`Environment`,
seeds its own RNGs, and returns a plain picklable dict.  That makes
the sweep embarrassingly parallel — and, because the merge happens in
sweep order regardless of completion order, the parallel result is
byte-identical to the serial one (docs/PERFORMANCE.md has the exact
rules).

Usage::

    points = parallel_map(run_overload_point,
                          [((config, m), {"duration_us": d})
                           for m in multipliers],
                          jobs=jobs)

``jobs=None`` consults the ``REPRO_JOBS`` environment variable;
``jobs<=1`` (the default) runs serially in-process — the exact code
path the determinism gates were built on.

Point functions must be module-level (picklable) and must not depend
on process-global mutable state for their *outputs*; kernel-level
counters (event ids, WR ids) are per-process but never observable in
a point's returned dict.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, List, Sequence, Tuple

__all__ = ["parallel_map", "default_jobs"]

Call = Tuple[Sequence[Any], Dict[str, Any]]


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (defaults to 1 = serial)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}")


def _invoke(payload: Tuple[Callable, Sequence[Any], Dict[str, Any]]):
    fn, args, kwargs = payload
    return fn(*args, **kwargs)


def parallel_map(fn: Callable, calls: Sequence[Call],
                 jobs: "int | None" = None) -> List[Any]:
    """Run ``fn(*args, **kwargs)`` for each call, in-order results.

    ``calls`` is a sequence of ``(args, kwargs)`` pairs.  With
    ``jobs <= 1`` every call runs serially in this process; otherwise
    the calls are fanned out to a worker pool and the results are
    returned **in call order** (``Pool.map`` semantics), so merging is
    deterministic no matter which worker finishes first.
    """
    calls = list(calls)
    if jobs is None:
        jobs = default_jobs()
    if jobs <= 1 or len(calls) <= 1:
        return [fn(*args, **kwargs) for args, kwargs in calls]
    # fork (where available) shares the already-imported tree with the
    # workers; spawn re-imports it.  Point outputs do not depend on
    # inherited process state, so both start methods merge identically.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")
    payloads = [(fn, args, kwargs) for args, kwargs in calls]
    with ctx.Pool(processes=min(jobs, len(calls))) as pool:
        return pool.map(_invoke, payloads)
