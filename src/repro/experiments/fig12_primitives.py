"""Fig. 12 — Selection of RDMA primitives for the zero-copy data plane.

Two DNEs on different worker nodes act as an echo client/server pair,
one DPU core each (§4.1.2).  Four variants:

* ``two-sided``   — Palladium's choice: SEND/RECV with posted buffers.
* ``owrc-best``   — one-sided write + receiver-side copy, artificially
  cache-hot copies (the paper's OWRC-Best).
* ``owrc-worst``  — same with forced main-memory copies / TLB flush.
* ``owdl``        — one-sided write coordinated by a distributed lock.

Paper anchors (4 KB): 11.6 us / 15 us / 16.7 us / 26.1 us mean RTT;
two-sided RPS up to 1.3x / 1.4x / >2.1x the alternatives.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..config import CostModel
from ..dataplane import Message
from ..hw import build_cluster
from ..memory import MemoryPool
from ..rdma import (
    ConnectionManager,
    DistributedLock,
    Opcode,
    RdmaFabric,
    WorkRequest,
)
from ..sim import Environment, LatencyStats

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run_fig12", "VARIANTS"]

VARIANTS = ("two-sided", "owrc-best", "owrc-worst", "owdl")

_rids = itertools.count(1)


class _EchoBench:
    """Shared scaffold: cluster, RNICs, pools, pinned DNE cores."""

    def __init__(self, cost: CostModel, pool_buffers: int = 256,
                 buffer_bytes: int = 8192):
        self.env = Environment()
        self.cost = cost
        self.cluster = build_cluster(self.env, cost)
        self.fabric = RdmaFabric(self.env, self.cluster, cost)
        self.rnic0 = self.fabric.install_rnic("worker0")
        self.rnic1 = self.fabric.install_rnic("worker1")
        self.p0 = MemoryPool(self.env, "bench", pool_buffers, buffer_bytes, name="p0")
        self.p1 = MemoryPool(self.env, "bench", pool_buffers, buffer_bytes, name="p1")
        self.rnic0.register_pool(self.p0)
        self.rnic1.register_pool(self.p1)
        self.c0 = self.cluster.node("worker0").dpu.allocate_pinned("dne0")
        self.c1 = self.cluster.node("worker1").dpu.allocate_pinned("dne1")
        self.cm0 = ConnectionManager(self.env, self.fabric, "worker0", cost)
        self.cm1 = ConnectionManager(self.env, self.fabric, "worker1", cost)
        self.latency = LatencyStats()
        self.completed = 0
        self.qp = None
        self.qp_back = None

    def setup(self):
        """Generator: warm one RC connection pair."""
        yield from self.cm0.warm_up("worker1", "bench", 1)
        self.qp = yield from self.cm0.get_connection("worker1", "bench")
        self.qp_back = self.qp.peer
        yield from self.cm1._activate(self.qp_back)


def _run_two_sided(cost: CostModel, size: int, concurrency: int,
                   duration_us: float) -> _EchoBench:
    bench = _EchoBench(cost)
    env = bench.env
    pending: Dict[int, object] = {}

    def setup_and_drive():
        yield from bench.setup()
        # Post initial receive buffers both ways.
        for _ in range(concurrency * 2):
            bench.rnic1.post_recv("bench", bench.p1.get("dne1"), "dne1")
            bench.rnic0.post_recv("bench", bench.p0.get("dne0"), "dne0")
        env.process(_replenisher(), name="replenish")
        env.process(_server(), name="server")
        env.process(_client_dispatch(), name="cdisp")
        for i in range(concurrency):
            env.process(_driver(i), name=f"driver{i}")

    def _replenisher():
        while True:
            yield env.timeout(20.0)
            for rnic, pool, agent in ((bench.rnic1, bench.p1, "dne1"),
                                      (bench.rnic0, bench.p0, "dne0")):
                srq = rnic.srq("bench")
                n, srq.consumed_since_replenish = srq.consumed_since_replenish, 0
                for _ in range(n):
                    if pool.free_count == 0:
                        break
                    rnic.post_recv("bench", pool.get(agent), agent)

    def _server():
        # Batched CQ draining: one wakeup per burst, not per CQE.
        cq = bench.rnic1.cq
        while True:
            completions = yield cq.poll_batch()
            for completion in completions:
                if completion.is_recv:
                    # RX + TX stage of the echo on the wimpy core.
                    yield from bench.c1.work(
                        cost.dne_rx_proc_us + cost.dne_tx_proc_us)
                    buffer = completion.buffer
                    buffer.transfer("rnic:worker1", "dne1")
                    message = completion.message
                    message.transfer("rnic:worker1", "dne1")
                    wr = WorkRequest(opcode=Opcode.SEND, buffer=buffer,
                                     length=completion.length,
                                     message=message)
                    message.transfer("dne1", "rnic:worker1")
                    bench.rnic1.post_send(bench.qp_back, wr)
                elif completion.opcode == Opcode.SEND:
                    completion.buffer.pool.put(completion.buffer, "dne1")

    def _client_dispatch():
        cq = bench.rnic0.cq
        while True:
            completions = yield cq.poll_batch()
            for completion in completions:
                if completion.is_recv:
                    yield from bench.c0.work(cost.dne_rx_proc_us)
                    event = pending.pop(completion.message.rid, None)
                    buffer = completion.buffer
                    buffer.transfer("rnic:worker0", "dne0")
                    completion.message.transfer("rnic:worker0", "dne0")
                    completion.message.retire("dne0")
                    buffer.pool.put(buffer, "dne0")
                    if event is not None:
                        event.succeed()
                elif completion.opcode == Opcode.SEND:
                    completion.buffer.pool.put(completion.buffer, "dne0")

    def _driver(i: int):
        while True:
            t0 = env.now
            buffer = yield from bench.p0.get_wait("dne0")
            buffer.write("dne0", "x" * 4, size)
            yield from bench.c0.work(cost.dne_tx_proc_us)
            rid = next(_rids)
            event = env.event()
            pending[rid] = event
            wr = WorkRequest(opcode=Opcode.SEND, buffer=buffer, length=size,
                             message=Message(rid=rid))
            bench.rnic0.post_send(bench.qp, wr)
            yield event
            bench.latency.record(env.now - t0)
            bench.completed += 1

    env.process(setup_and_drive(), name="setup")
    env.run(until=duration_us)
    return bench


def _run_onesided(cost: CostModel, size: int, concurrency: int,
                  duration_us: float, variant: str) -> _EchoBench:
    """OWRC (best/worst) and OWDL echo benches."""
    bench = _EchoBench(cost)
    env = bench.env
    use_lock = variant == "owdl"
    cached = variant != "owrc-worst"
    # Dedicated RDMA-only pools for OWRC (Fig. 2 (2)); for OWDL the
    # writes land straight in the target pool, guarded by the lock.
    rp0 = MemoryPool(env, "bench", concurrency * 2, 8192, name="rdma-p0")
    rp1 = MemoryPool(env, "bench", concurrency * 2, 8192, name="rdma-p1")
    bench.rnic0.register_pool(rp0)
    bench.rnic1.register_pool(rp1)

    def setup_and_drive():
        yield from bench.setup()
        for i in range(concurrency):
            env.process(_driver(i), name=f"driver{i}")

    def _driver(i: int):
        # Per-driver slots and (for OWDL) per-slot distributed locks.
        req_slot = rp1.get(f"slot{i}")
        resp_slot = rp0.get(f"slot{i}")
        req_lock = DistributedLock(env, bench.fabric, "worker1", cost) if use_lock else None
        resp_lock = DistributedLock(env, bench.fabric, "worker0", cost) if use_lock else None
        holder = i + 1
        while True:
            t0 = env.now
            # --- request: client -> server -------------------------------
            buffer = yield from bench.p0.get_wait("dne0")
            buffer.write("dne0", "x" * 4, size)
            yield from bench.c0.work(cost.dne_tx_proc_us)
            if use_lock:
                yield from req_lock.acquire(bench.qp, holder)
            wr = WorkRequest(opcode=Opcode.WRITE, buffer=buffer, length=size,
                             remote_buffer=req_slot, signaled=False,
                             expected_owner=f"slot{i}")
            yield from bench.rnic0.execute(bench.qp, wr)
            bench.p0.put(buffer, "dne0")
            if use_lock:
                env.process(resp_release(req_lock, bench.qp, holder), name="rel")
            # receiver-side polling notices the write one interval later
            yield env.timeout(cost.onesided_poll_interval_us)
            # --- server processing ------------------------------------------
            # One-sided receivers skip CQE/RBR handling: poll-detect (a
            # fraction of the RX stage) plus the TX stage of the echo.
            yield from bench.c1.work(0.3 + cost.dne_tx_proc_us)
            if not use_lock:
                # OWRC: copy out of the dedicated pool into the local pool
                yield from bench.c1.work(cost.copy_time(size, cached=cached))
            # --- response: server -> client -----------------------------------
            rbuf = yield from bench.p1.get_wait("dne1")
            rbuf.write("dne1", "y" * 4, size)
            if use_lock:
                yield from resp_lock.acquire(bench.qp_back, holder)
            wr2 = WorkRequest(opcode=Opcode.WRITE, buffer=rbuf, length=size,
                              remote_buffer=resp_slot, signaled=False,
                              expected_owner=f"slot{i}")
            yield from bench.rnic1.execute(bench.qp_back, wr2)
            bench.p1.put(rbuf, "dne1")
            if use_lock:
                env.process(resp_release(resp_lock, bench.qp_back, holder), name="rel")
            yield env.timeout(cost.onesided_poll_interval_us)
            yield from bench.c0.work(0.3)
            if not use_lock:
                yield from bench.c0.work(cost.copy_time(size, cached=cached))
            bench.latency.record(env.now - t0)
            bench.completed += 1

    def resp_release(lock, qp, holder):
        yield from lock.release(qp, holder)

    env.process(setup_and_drive(), name="setup")
    env.run(until=duration_us)
    return bench


def run_variant(variant: str, cost: CostModel, size: int, concurrency: int,
                duration_us: float) -> _EchoBench:
    """Run one Fig. 12 variant and return the populated bench."""
    if variant == "two-sided":
        return _run_two_sided(cost, size, concurrency, duration_us)
    if variant in ("owrc-best", "owrc-worst", "owdl"):
        return _run_onesided(cost, size, concurrency, duration_us, variant)
    raise ValueError(f"unknown variant {variant!r}")


def _fig12_cell(variant: str, size: int, concurrency: int,
                duration_us: float, cost: CostModel) -> dict:
    """One (variant, size) cell: latency run + throughput run.

    Module-level and returning a plain dict so the sweep can fan cells
    out to worker processes (:mod:`repro.experiments.parallel`).
    """
    warm = 21_000.0  # RC setup happens once at t=0 (20 ms)
    lat_bench = run_variant(variant, cost, size, 1, warm + duration_us)
    thr_bench = run_variant(variant, cost, size, concurrency,
                            warm + duration_us)
    return {
        "mean_rtt_us": lat_bench.latency.mean(),
        "completed": thr_bench.completed,
    }


def run_fig12(
    sizes=(64, 1024, 4096),
    concurrency: int = 8,
    duration_us: float = 40_000.0,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Fig. 12: latency (concurrency=1) and RPS per variant."""
    cost = cost or CostModel()
    result = ExperimentResult(
        "Fig 12 - RDMA primitive selection",
        columns=["variant", "size_bytes", "mean_rtt_us", "rps"],
    )
    grid = [(variant, size) for variant in VARIANTS for size in sizes]
    cells = parallel_map(
        _fig12_cell,
        [((variant, size, concurrency, duration_us, cost), {})
         for variant, size in grid],
        jobs=jobs,
    )
    for (variant, size), cell in zip(grid, cells):
        rps = cell["completed"] / (duration_us / 1e6)
        result.add_row(variant, size, round(cell["mean_rtt_us"], 2),
                       round(rps))
    result.note(
        "paper anchors @4KB RTT: two-sided 11.6, OWRC-Best 15, "
        "OWRC-Worst 16.7, OWDL 26.1 us"
    )
    return result
