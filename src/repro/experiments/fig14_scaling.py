"""Fig. 14 — Horizontal scaling of the cluster ingress (§4.1.3).

Load ramps up: a new client joins every 10 (paper-)seconds, each client
saturating its connections (wrk pinned to a core with multiple
connections).  Compared designs:

* **Palladium** ingress with the hysteresis autoscaler (spawn >60 %,
  reap <30 % mean useful utilization; scale events briefly interrupt
  service — the dips of Fig. 14 (2));
* **F-Ingress** with the same autoscaler adapted to it;
* **K-Ingress**, interrupt-driven: takes cores as load arrives until
  the node is saturated, then collapses and sheds clients.

The paper's multi-minute experiment is compressed two ways, neither of
which changes the scaling dynamics:

* ``time_scale`` compresses the schedule (ramp interval, autoscaler
  period, scale-event pause, sampling period) uniformly;
* ``cost_scale`` inflates per-message processing costs so the absolute
  request rate — and hence the event count — shrinks while per-core
  utilization, the autoscaler's input, is unchanged.

Outputs time series of ingress CPU cores in use and RPS, indexed by
*paper* seconds.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..config import CostModel, SEC
from ..platform import ServerlessPlatform
from ..sim import Environment, TimeSeries
from ..workloads import ClientFleet, deploy_http_echo

from .fig13_ingress import build_ingress
from .runner import ExperimentResult

__all__ = ["run_fig14"]


def _cpu_series(env: Environment, pools, series: TimeSeries, period_us: float):
    """Sample ingress CPU usage (cores) across pools once per period."""
    prev = 0.0
    while True:
        yield env.timeout(period_us)
        busy = sum(pool.total_busy_time() for pool in pools)
        series.record(env.now, (busy - prev) / period_us)
        prev = busy


def run_fig14(
    kind: str = "palladium",
    steps: int = 10,
    step_paper_s: float = 10.0,
    time_scale: float = 0.05,
    cost_scale: float = 6.0,
    connections_per_client: int = 12,
    max_workers: int = 8,
    kernel_cores: int = 8,
    cost: Optional[CostModel] = None,
    timeout_paper_s: float = 0.5,
) -> ExperimentResult:
    """One ingress design under the ramp; returns CPU & RPS time series."""
    base = (cost or CostModel()).scaled(cost_scale)
    cost = replace(
        base,
        ingress_autoscale_period_us=base.ingress_autoscale_period_us * time_scale,
        ingress_scale_event_pause_us=base.ingress_scale_event_pause_us * time_scale,
    )
    step_us = step_paper_s * SEC * time_scale
    sample_us = 1 * SEC * time_scale
    env = Environment()
    plat = ServerlessPlatform(env, cost=cost)
    resolver = deploy_http_echo(plat)
    if kind == "k-ingress":
        ingress = build_ingress(kind, plat, resolver, cores=kernel_cores)
    else:
        ingress = build_ingress(kind, plat, resolver, cores=1,
                                autoscale=True, max_workers=max_workers)
    ingress.start()
    plat.start()
    fleet = ClientFleet(env, plat.cluster, ingress, path="/echo",
                        body_bytes=256, payload="x",
                        timeout_us=timeout_paper_s * SEC * time_scale,
                        stats_bucket_us=sample_us)
    cpu_series = TimeSeries("ingress-cores")
    pools = [plat.cluster.ingress_node.cpu]
    if getattr(ingress, "cpu", None) is not None:
        pools.append(ingress.cpu)  # K-Ingress private kernel cores
    env.process(
        _cpu_series(env, pools, cpu_series, sample_us),
        name="cpu-sampler",
    )

    warm_us = 30_000.0

    def ramp():
        yield env.timeout(warm_us)
        yield from fleet.ramp(step_us, clients_per_step=1,
                              connections_per_client=connections_per_client,
                              steps=steps)

    env.process(ramp(), name="ramp")
    horizon = warm_us + (steps + 1) * step_us
    env.run(until=horizon)

    result = ExperimentResult(
        f"Fig 14 - ingress horizontal scaling ({kind})",
        columns=["paper_s", "cpu_cores", "rps", "clients", "disconnected"],
    )
    rps_series = fleet.throughput.series()
    rps_by_tick = {int(t // sample_us): v * 1e6 for t, v in rps_series}
    for t, cores in cpu_series:
        tick = int(t // sample_us)
        paper_s = (t - warm_us) / time_scale / SEC
        clients_now = max(0, min(steps, int(paper_s // step_paper_s) + 1))
        result.add_row(
            round(paper_s, 1),
            round(cores, 2),
            round(rps_by_tick.get(tick - 1, 0.0)),
            clients_now,
            fleet.disconnected_count(),
        )
    result.add_series("cpu", list(cpu_series))
    result.add_series("rps", [(t, v * 1e6) for t, v in rps_series])
    if getattr(ingress, "autoscaler", None) is not None:
        result.add_series("workers", list(ingress.autoscaler.worker_series))
        result.note(f"scale events: {ingress.autoscaler.scale_events}")
    result.note(f"disconnected clients: {fleet.disconnected_count()}")
    result.note(f"time_scale={time_scale}, cost_scale={cost_scale}")
    return result
