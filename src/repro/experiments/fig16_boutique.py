"""Fig. 16 + Table 2 — Online Boutique across six data planes (§4.3).

The full system evaluation: the ten-function Online Boutique deployed
with the paper's placement (hotspots on worker0, the rest on worker1 —
except NightCore, which cannot cross nodes and runs everything on
worker0), driven by wrk-style closed-loop clients through each design's
cluster ingress.

Configurations (Fig. 16 / Table 2):

==================  ==========================================================
palladium-dne       DNE on the DPU, Comch-E, DWRR, Palladium ingress
palladium-cne       same engine on a host core, SK_MSG (apples-to-apples)
fuyao-f             FUYAO one-sided engine + F-Ingress (+ F-stack adapter)
fuyao-k             FUYAO one-sided engine + K-Ingress (+ kernel adapter)
spright             SPRIGHT kernel-TCP engine + F-Ingress (+ F-stack adapter)
nightcore           single node, built-in kernel gateway + kernel adapter
==================  ==========================================================

Paper anchors: Palladium-DNE 5.1-20.9x NightCore, 2.1-4.1x FUYAO-F,
2.4-4.1x SPRIGHT, and 1.3-1.8x CNE beyond 20 clients; Table 2 mean
latencies (e.g. Home Query @20/80 clients: 1.12/3.19 ms for DNE,
10.77/42.8 ms for NightCore).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..baselines import (
    NIGHTCORE_IPC_US,
    build_cne,
    build_dne,
    build_fuyao,
    build_spright,
    nightcore_engine_builder,
)
from ..config import CostModel, SEC
from ..ingress import FIngress, KIngress, PalladiumIngress, TcpWorkerAdapter
from ..platform import ServerlessPlatform, Tenant
from ..sim import Environment
from ..telemetry import Telemetry
from ..workloads import (
    BOUTIQUE_TENANT,
    CHAIN_PATHS,
    ClientFleet,
    boutique_resolver,
    deploy_boutique,
    path_payload,
)

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["run_fig16", "run_table2", "run_boutique_point", "CONFIGS", "EVAL_CHAINS"]

EVAL_CHAINS = ("Home Query", "View Cart", "Product Query")

#: the six evaluated data-plane configurations
CONFIGS = ("palladium-dne", "palladium-cne", "fuyao-f", "fuyao-k",
           "spright", "nightcore")

#: extra per-request cost of NightCore's built-in kernel gateway beyond
#: plain kernel NGINX (its gateway threads + internal dispatch queues).
#: Calibrated from the throughput Table 2 implies (NightCore saturates
#: around 2-4 K RPS: 20 clients / 10.77 ms ~ 1.9 K).
NIGHTCORE_GATEWAY_US = 100.0


def _build_platform(config: str, env: Environment, cost: CostModel,
                    placement=None, sidecar_us=None, single_node=None):
    """Assemble platform + ingress + adapters for one configuration."""
    if single_node is None:
        single_node = config == "nightcore"
    builders = {
        "palladium-dne": build_dne,
        "palladium-cne": build_cne,
        "fuyao-f": build_fuyao,
        "fuyao-k": build_fuyao,
        "spright": build_spright,
        "nightcore": nightcore_engine_builder,
    }
    plat = ServerlessPlatform(
        env, cost=cost,
        engine_builder=builders[config],
        intra_ipc_us=NIGHTCORE_IPC_US if config == "nightcore" else None,
        sidecar_us=sidecar_us,
    )
    plat.add_tenant(Tenant(BOUTIQUE_TENANT, pool_buffers=4096))
    deploy_boutique(plat, single_node=single_node, placement=placement)

    adapters: Dict[str, TcpWorkerAdapter] = {}
    if config in ("palladium-dne", "palladium-cne"):
        ingress = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                   boutique_resolver, min_workers=2,
                                   recv_buffers=256)
        ingress.add_tenant(BOUTIQUE_TENANT, buffers=2048)
        plat.coordinator.subscribe(ingress.routes)
        plat.register_external(ingress.AGENT, "ingress")
    else:
        stack = (TcpWorkerAdapter.KERNEL
                 if config in ("fuyao-k", "nightcore")
                 else TcpWorkerAdapter.FSTACK)
        adapter = TcpWorkerAdapter(env, plat.runtimes["worker0"], cost,
                                   stack_kind=stack)
        adapters["worker0"] = adapter
        entry_node = lambda fn: "worker0"
        if config in ("fuyao-k", "nightcore"):
            kcost = cost
            if config == "nightcore":
                # NightCore's own gateway is heavier than kernel NGINX.
                from dataclasses import replace
                kcost = replace(cost,
                                proxy_overhead_us=cost.proxy_overhead_us
                                + NIGHTCORE_GATEWAY_US)
            ingress = KIngress(env, plat.cluster, kcost, boutique_resolver,
                               adapters, entry_node, cores=1)
        else:
            ingress = FIngress(env, plat.cluster, cost, boutique_resolver,
                               adapters, entry_node, cores=2)
    return plat, ingress


def run_boutique_point(
    config: str,
    chain: str,
    clients: int,
    duration_us: float = 250_000.0,
    warmup_us: float = 80_000.0,
    cost: Optional[CostModel] = None,
    with_telemetry: bool = False,
) -> Dict[str, float]:
    """One Fig. 16 / Table 2 cell.

    Returns rps, mean latency (ms), engine CPU% (both workers), worker
    adapter CPU%, and DPU core%.  With ``with_telemetry`` the run is
    instrumented (spans + metrics + cycle ledger) and the
    :class:`~repro.telemetry.Telemetry` bundle is attached under the
    extra ``"telemetry"`` key; telemetry never perturbs the simulation,
    so all other keys are identical either way.
    """
    cost = cost or CostModel()
    env = Environment()
    telemetry = Telemetry.install(env) if with_telemetry else None
    plat, ingress = _build_platform(config, env, cost)
    ingress.start()
    plat.start()
    path = CHAIN_PATHS[chain]
    fleet = ClientFleet(env, plat.cluster, ingress, path=path,
                        body_bytes=256, payload=path_payload(path),
                        timeout_us=5 * SEC)

    def kickoff():
        yield env.timeout(warmup_us)
        fleet.spawn(clients)

    env.process(kickoff(), name="kickoff")
    measure_from = warmup_us + duration_us * 0.3
    baseline = {}
    env.defer(measure_from, lambda: baseline.update(plat.usage_snapshot()))
    env.run(until=warmup_us + duration_us)

    engine_pct = sum(
        e.engine_cpu_pct(measure_from, baseline.get(f"engine:{name}", 0.0))
        for name, e in plat.engines.items()
    )
    adapter_pct = 0.0
    for runtime in plat.runtimes.values():
        for pinned in runtime.node.cpu.pinned:
            if "tcpgw" in pinned.name:
                adapter_pct += 100.0
    metrics = {
        "rps": fleet.rps(measure_from, env.now),
        "latency_ms": fleet.mean_latency_us() / 1000.0,
        "engine_cpu_pct": engine_pct,
        "adapter_cpu_pct": adapter_pct,
        "dpu_pct": plat.dpu_cpu_pct(measure_from, baseline),
        "errors": fleet.total_errors(),
    }
    if telemetry is not None:
        plat.export_metrics(telemetry)
        metrics["telemetry"] = telemetry
    return metrics


def run_fig16(
    chains=EVAL_CHAINS,
    client_counts=(20, 60, 80),
    configs=CONFIGS,
    duration_us: float = 250_000.0,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Fig. 16: RPS + utilization per chain/config/clients."""
    cost = cost or CostModel()
    result = ExperimentResult(
        "Fig 16 - Online Boutique",
        columns=["chain", "config", "clients", "rps", "latency_ms",
                 "engine_cpu_pct", "adapter_cpu_pct", "dpu_pct"],
    )
    grid = [(chain, config, clients)
            for chain in chains
            for config in configs
            for clients in client_counts]
    points = parallel_map(
        run_boutique_point,
        [((config, chain, clients, duration_us), {"cost": cost})
         for chain, config, clients in grid],
        jobs=jobs,
    )
    for (chain, config, clients), m in zip(grid, points):
        result.add_row(chain, config, clients, round(m["rps"]),
                       round(m["latency_ms"], 2),
                       round(m["engine_cpu_pct"]),
                       round(m["adapter_cpu_pct"]),
                       round(m["dpu_pct"]))
    result.note(
        "paper: DNE 5.1-20.9x NightCore, 2.1-4.1x FUYAO-F, 2.4-4.1x "
        "SPRIGHT, 1.3-1.8x CNE (>20 clients); FUYAO engine CPU >500%"
    )
    return result


def run_table2(
    client_counts=(20, 60, 80),
    configs=CONFIGS,
    chains=EVAL_CHAINS,
    duration_us: float = 250_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Table 2: mean latency (ms) per chain / config / client count."""
    cost = cost or CostModel()
    result = ExperimentResult(
        "Table 2 - mean latency (ms) of Online Boutique chains",
        columns=["config"] + [
            f"{chain}@{n}" for chain in chains for n in client_counts
        ],
    )
    for config in configs:
        row = [config]
        for chain in chains:
            for clients in client_counts:
                m = run_boutique_point(config, chain, clients,
                                       duration_us, cost=cost)
                row.append(round(m["latency_ms"], 2))
        result.add_row(*row)
    result.note("paper Table 2: e.g. Home@20/60/80 = DNE 1.12/2.55/3.19, "
                "CNE 1.43/4.39/5.62, NightCore 10.77/32.4/42.8 ms")
    return result
