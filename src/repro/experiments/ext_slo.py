"""Extension — SLO monitoring sweeps + critical-path attribution.

Three monitored views over existing experiments, all built on the
:mod:`repro.telemetry.monitor` burn-rate engine and the
:mod:`repro.telemetry.critpath` analyzer:

* :func:`run_slo_overload` — the overload sweep with the standard SLO
  bundle attached.  The acceptance shape: the tail-drop baselines'
  first burn-rate firing coincides with the sweep point where their
  goodput collapses, while palladium-dne (which sheds at the edge)
  stays alert-free across the whole sweep.
* :func:`run_slo_fault` — the node-crash runs with the availability
  SLO attached: the no-recovery configuration pages during the outage
  window, every recovering configuration stays quiet.
* :func:`run_critpath` — "where did my p99 go": per-stage latency
  attribution for Online Boutique at increasing client counts, plus
  the dominant-stage shift between sweep points (compute-bound at low
  load, queueing-bound past saturation).

Monitored points run through :func:`parallel_map` like every other
sweep, so each worker extracts a JSON-safe summary before returning —
the :class:`Telemetry` bundle itself (it holds the live simulation
graph) never crosses a process boundary.

:func:`build_dashboard_bundle` packages a small set of monitored runs
into one JSON-safe dict for ``tools/dashboard.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import CostModel
from ..telemetry import analyze

from .ext_fault_recovery import run_fault_point
from .ext_overload import OVERLOAD_CONFIGS, run_overload_point
from .fig16_boutique import run_boutique_point
from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = [
    "build_dashboard_bundle",
    "run_critpath",
    "run_slo_fault",
    "run_slo_overload",
]

#: sweep points for the monitored overload run — brackets the collapse
#: (baselines hold at 0.8/1.0, collapse by 1.5)
SLO_MULTIPLIERS = (0.8, 1.0, 1.5, 2.0)

#: the monitored sweeps keep the calibrated default warmup (shrinking
#: it moves every configuration's saturation point) and arm the
#: monitor one slow-long-window after traffic starts
SLO_WARMUP_US = 160_000.0

#: monitored points need enough armed time to observe: the monitor
#: arms 60 ms after traffic starts, so anything under ~100 ms of
#: driven time would leave the alert engine almost no armed window
SLO_DURATION_US = 100_000.0


def _span_counts(spans: List[Dict[str, Any]]) -> Tuple[int, int]:
    pages = sum(1 for s in spans if s["severity"] == "page")
    tickets = sum(1 for s in spans if s["severity"] == "ticket")
    return pages, tickets


def _monitored_overload_cell(config: str, multiplier: float,
                             duration_us: float, warmup_us: float,
                             cost: Optional[CostModel] = None,
                             ) -> Dict[str, Any]:
    """One monitored sweep cell, reduced to a JSON-safe summary."""
    point = run_overload_point(config, multiplier, duration_us=duration_us,
                               warmup_us=warmup_us, cost=cost,
                               with_monitor=True)
    monitor = point.pop("telemetry").monitor
    return {
        "config": config,
        "multiplier": multiplier,
        "offered_rps": point["offered_rps"],
        "goodput_rps": point["goodput_rps"],
        "rejected": point["rejected"],
        "timeline": list(monitor.timeline),
        "alert_spans": monitor.alert_spans(),
        "first_firing_us": monitor.first_firing_us(),
        "snapshot": monitor.snapshot(),
    }


def run_slo_overload(
    configs: Sequence[str] = OVERLOAD_CONFIGS,
    multipliers: Sequence[float] = SLO_MULTIPLIERS,
    duration_us: float = SLO_DURATION_US,
    warmup_us: float = SLO_WARMUP_US,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Burn-rate alerts across the overload sweep, per data plane."""
    result = ExperimentResult(
        "EXT - SLO burn-rate alerts under overload",
        columns=["config", "multiplier", "goodput_rps", "pct_peak",
                 "pages", "tickets", "first_alert_ms"],
    )
    configs = tuple(configs)
    multipliers = tuple(multipliers)
    cells = parallel_map(
        _monitored_overload_cell,
        [((config, m, duration_us, warmup_us), {"cost": cost})
         for config in configs for m in multipliers],
        jobs=jobs,
    )
    collapse_vs_alert: List[str] = []
    for ci, config in enumerate(configs):
        points = cells[ci * len(multipliers):(ci + 1) * len(multipliers)]
        peak = max(p["goodput_rps"] for p in points) or 1.0
        collapse_mult = alert_mult = None
        for m, p in zip(multipliers, points):
            pages, tickets = _span_counts(p["alert_spans"])
            first = p["first_firing_us"]
            pct = 100.0 * p["goodput_rps"] / peak
            if collapse_mult is None and pct < 50.0:
                collapse_mult = m
            if alert_mult is None and first is not None:
                alert_mult = m
            result.add_row(config, m, round(p["goodput_rps"]),
                           round(pct, 1), pages, tickets,
                           round(first / 1000.0, 1)
                           if first is not None else -1.0)
            result.attach_alerts(p["timeline"], config=config, multiplier=m)
        collapse_vs_alert.append(
            f"{config}: collapse at "
            f"{collapse_mult if collapse_mult is not None else 'never'}x, "
            f"first alert at "
            f"{alert_mult if alert_mult is not None else 'never'}x")
    result.note(
        "multi-window burn-rate alerts (page 5ms/1ms, ticket 60ms/5ms) "
        "on per-tenant latency + availability SLOs; first_alert_ms=-1 "
        "means no alert fired at that point"
    )
    result.note("; ".join(collapse_vs_alert))
    return result


def _monitored_fault_cell(config: str, **kwargs: Any) -> Dict[str, Any]:
    """One monitored crash run, reduced to a JSON-safe summary."""
    point = run_fault_point(config, with_monitor=True, **kwargs)
    monitor = point.pop("telemetry").monitor
    return {
        "config": config,
        "restored_pct": point["restored_pct"],
        "recover_ms": point["recover_ms"],
        "timeline": list(monitor.timeline),
        "alert_spans": monitor.alert_spans(),
        "first_firing_us": monitor.first_firing_us(),
        "snapshot": monitor.snapshot(),
    }


def run_slo_fault(
    configs: Sequence[str] = ("palladium-dne", "palladium-dne-no-recovery",
                              "spright"),
    clients: int = 8,
    crash_at_us: float = 140_000.0,
    down_us: float = 80_000.0,
    post_us: float = 60_000.0,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Availability burn-rate alerts through a worker-node crash."""
    result = ExperimentResult(
        "EXT - SLO alerts through a node crash",
        columns=["config", "restored_pct", "recover_ms", "pages",
                 "tickets", "first_alert_ms", "crash_ms"],
    )
    configs = tuple(configs)
    cells = parallel_map(
        _monitored_fault_cell,
        [((config,), dict(clients=clients, crash_at_us=crash_at_us,
                          down_us=down_us, post_us=post_us, cost=cost))
         for config in configs],
        jobs=jobs,
    )
    for p in cells:
        pages, tickets = _span_counts(p["alert_spans"])
        first = p["first_firing_us"]
        result.add_row(p["config"], round(p["restored_pct"], 1),
                       round(p["recover_ms"], 1), pages, tickets,
                       round(first / 1000.0, 1)
                       if first is not None else -1.0,
                       round(crash_at_us / 1000.0, 1))
        result.attach_alerts(p["timeline"], config=p["config"])
    result.note(
        "the no-recovery configuration should page shortly after the "
        "crash (clients surface failures after their 30 ms timeout) "
        "and resolve once the node restarts; every recovering "
        "configuration stays alert-free"
    )
    return result


def _critpath_cell(config: str, chain: str, clients: int,
                   duration_us: float,
                   cost: Optional[CostModel] = None) -> Dict[str, Any]:
    """One instrumented boutique run reduced to its critpath report."""
    point = run_boutique_point(config, chain, clients,
                               duration_us=duration_us, cost=cost,
                               with_telemetry=True)
    telemetry = point.pop("telemetry")
    report = analyze(telemetry.tracer, label=f"{clients} clients")
    summary = report.to_dict()
    summary["rps"] = point["rps"]
    return summary


def run_critpath(
    config: str = "palladium-dne",
    chain: str = "Home Query",
    client_counts: Sequence[int] = (20, 80),
    duration_us: float = 120_000.0,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Per-stage latency attribution across a client-count sweep."""
    result = ExperimentResult(
        f"EXT - critical path ({config}, {chain})",
        columns=["clients", "stage", "p50_us", "p50_share", "p99_us",
                 "p99_share", "mean_share"],
    )
    client_counts = tuple(client_counts)
    cells = parallel_map(
        _critpath_cell,
        [((config, chain, clients, duration_us), {"cost": cost})
         for clients in client_counts],
        jobs=jobs,
    )
    shift_rows: List[Dict[str, Any]] = []
    prev_stage: Optional[str] = None
    for clients, summary in zip(client_counts, cells):
        for row in summary["table"]:
            result.add_row(clients, row["stage"], row["p50_us"],
                           row["p50_share"], row["p99_us"],
                           row["p99_share"], row["mean_share"])
        stage = summary["dominant_stage_p99"]
        shift_rows.append({
            "point": f"{clients} clients",
            "dominant_stage": stage,
            "share": summary["dominant_share_p99"],
            "p99_total_us": summary["p99_total_us"],
            "named_coverage": summary["named_coverage_p99"],
            "shifted": prev_stage is not None and stage != prev_stage,
        })
        prev_stage = stage
    result.add_series("dominant_shift", shift_rows)
    shifts = " -> ".join(
        f"{r['point']}: {r['dominant_stage']} ({r['share']:.0%} of "
        f"p99={r['p99_total_us'] / 1000.0:.2f}ms)" for r in shift_rows)
    result.note(f"dominant p99 stage {shifts}")
    coverage = min((r["named_coverage"] for r in shift_rows), default=0.0)
    result.note(f"named-stage coverage of p99 >= {coverage:.1%} "
                "(acceptance floor: 90%)")
    return result


def build_dashboard_bundle(
    overload_configs: Sequence[str] = ("palladium-dne", "spright"),
    overload_multiplier: float = 2.0,
    critpath_clients: Sequence[int] = (20, 80),
    duration_us: float = SLO_DURATION_US,
    cost: Optional[CostModel] = None,
    jobs: Optional[int] = None,
) -> Dict[str, Any]:
    """Everything ``tools/dashboard.py`` renders, as one JSON-safe dict.

    A couple of monitored overload runs at a collapsing multiplier
    (rule series + alert timelines + SLO states) and a critical-path
    client sweep.  Keep the run list small — this backs the CI smoke
    job as well as the human-facing dashboard.
    """
    overload = parallel_map(
        _monitored_overload_cell,
        [((config, overload_multiplier, duration_us, SLO_WARMUP_US),
          {"cost": cost}) for config in overload_configs],
        jobs=jobs,
    )
    critpath = parallel_map(
        _critpath_cell,
        [(("palladium-dne", "Home Query", clients, 120_000.0),
          {"cost": cost}) for clients in critpath_clients],
        jobs=jobs,
    )
    shift_rows: List[Dict[str, Any]] = []
    prev_stage: Optional[str] = None
    for clients, summary in zip(critpath_clients, critpath):
        stage = summary["dominant_stage_p99"]
        shift_rows.append({
            "point": f"{clients} clients",
            "dominant_stage": stage,
            "share": summary["dominant_share_p99"],
            "p99_total_us": summary["p99_total_us"],
            "shifted": prev_stage is not None and stage != prev_stage,
        })
        prev_stage = stage
    return {
        "title": "Palladium repro - SLO dashboard",
        "overload": overload,
        "critpath": {"points": critpath, "shift": shift_rows},
    }
