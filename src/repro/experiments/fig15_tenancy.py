"""Fig. 15 — Multi-tenant RDMA bandwidth sharing at the DNE (§4.2).

Three tenants (weights 6 : 1 : 2), each an echo client/server pair
across the two workers, contend for a DNE configured to sustain about
110 K RPS on its single DPU core.  Palladium's DWRR scheduler is
compared against an FCFS DNE with no tenancy awareness.

Paper anchors: with DWRR, when Tenant-2 joins, Tenant-1 drops from
115 K to 90 K while Tenant-2 gets 15 K (exactly 6:1); with Tenant-3
active the split becomes 65/11/22 K (6:1:2).  Under FCFS the bursty
tenants starve Tenant-1.

The paper's four-minute trace is compressed by ``time_scale`` (default
1/120, i.e. a two-second simulation) — pure clock compression; rates
are unchanged.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..baselines import build_dne, build_dne_fcfs
from ..config import CostModel, SEC
from ..platform import ServerlessPlatform, Tenant
from ..sim import Environment
from ..workloads import DirectDriver, TenantTrace, deploy_echo_pair, fig15_traces

from .runner import ExperimentResult

__all__ = ["run_fig15", "run_tenancy"]

SCHEDULERS = {"dwrr": build_dne, "fcfs": build_dne_fcfs}

#: scales the DNE's per-message costs so one DPU core saturates at
#: roughly the paper's configured 110 K RPS
DNE_THROTTLE = 2.36


def _throttled(cost: CostModel) -> CostModel:
    """The paper 'configures the DNE to sustain ~110K RPS' (§4.2)."""
    return replace(
        cost,
        dne_tx_proc_us=cost.dne_tx_proc_us * DNE_THROTTLE,
        dne_rx_proc_us=cost.dne_rx_proc_us * DNE_THROTTLE,
        comch_e_cpu_us=cost.comch_e_cpu_us * DNE_THROTTLE,
    )


def run_tenancy(
    scheduler: str = "dwrr",
    time_scale: float = 1.0 / 120.0,
    traces: Optional[List[TenantTrace]] = None,
    cost: Optional[CostModel] = None,
    bucket_us: Optional[float] = None,
    concurrency_scale: Dict[str, int] = None,
) -> ExperimentResult:
    """Run the three-tenant contention trace under one scheduler."""
    cost = _throttled(cost or CostModel())
    traces = traces or fig15_traces()
    # Bursty tenants offer more load than their fair share (that is
    # what lets FCFS starve Tenant-1).
    concurrency = concurrency_scale or {
        "tenant-1": 48, "tenant-2": 64, "tenant-3": 96,
    }
    env = Environment()
    plat = ServerlessPlatform(env, cost=cost,
                              engine_builder=SCHEDULERS[scheduler])
    total_us = 240 * SEC * time_scale
    bucket = bucket_us or max(10_000.0, total_us / 48)
    clients = {}
    for idx, trace in enumerate(traces):
        plat.add_tenant(Tenant(trace.tenant, weight=trace.weight,
                               pool_buffers=1024))
        client, server = deploy_echo_pair(
            plat, tenant=trace.tenant, weight=trace.weight, suffix=f"-{idx}"
        )
        clients[trace.tenant] = (client, server)
    for engine in plat.engines.values():
        engine.stats.bucket_us = bucket
    plat.start()

    warm = 30_000.0

    def driver_proc(trace: TenantTrace, index: int, client, server):
        while True:
            now = (env.now - warm) / time_scale
            if now < 0 or index >= trace.drivers_at(now):
                yield env.timeout(bucket / 4)
                continue
            yield from client.invoke(server, "p", 256)

    for trace in traces:
        client, server = clients[trace.tenant]
        n = concurrency[trace.tenant]
        for i in range(n):
            env.process(driver_proc(trace, i, client, server),
                        name=f"{trace.tenant}-drv{i}")

    env.run(until=warm + total_us)

    engine0 = plat.engines["worker0"]
    result = ExperimentResult(
        f"Fig 15 - tenant bandwidth sharing ({scheduler})",
        columns=["paper_time_s", "tenant-1_rps", "tenant-2_rps", "tenant-3_rps"],
    )
    series = {
        t.tenant: dict(engine0.stats.tenant_meter(t.tenant).series())
        for t in traces
    }
    ticks = sorted({tick for s in series.values() for tick in s})
    for tick in ticks:
        paper_time = (tick - warm) / time_scale / SEC
        result.add_row(
            round(paper_time, 1),
            *(round(series[t.tenant].get(tick, 0.0) * 1e6)
              for t in traces),
        )
        result.series.setdefault("ticks", []).append(tick)
    result.note(f"scheduler={scheduler}, time_scale={time_scale:.5f}")
    return result


def run_fig15(time_scale: float = 1.0 / 120.0,
              cost: Optional[CostModel] = None) -> Dict[str, ExperimentResult]:
    """Both panels of Fig. 15: FCFS (1) and Palladium's DWRR (2)."""
    return {
        "fcfs": run_tenancy("fcfs", time_scale, cost=cost),
        "dwrr": run_tenancy("dwrr", time_scale, cost=cost),
    }
