"""Extension ablations for design choices DESIGN.md calls out.

Beyond the paper's own figures, three of its design arguments are
directly measurable in this reproduction:

* **Sidecar placement** (§3.1): the classic container sidecar costs
  "as high as 30 %" vs Palladium's consolidated/eBPF sidecars.
* **Placement sensitivity** (§2): RDMA-based zero-copy makes
  locality-aware placement much less critical than for kernel-stack
  data planes — the motivation for scaling shared-memory processing
  across nodes.
* **Multi-instance ingress** (§4.1.3): load balancing across several
  Palladium ingress instances hides the scale-event service dips of
  Fig. 14 (2).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import CostModel
from ..ingress import IngressLoadBalancer, PalladiumIngress
from ..platform import ServerlessPlatform
from ..sim import Environment
from ..workloads import ClientFleet, deploy_http_echo, path_payload

from .fig16_boutique import _build_platform
from .runner import ExperimentResult

__all__ = ["run_sidecar_ablation", "run_placement_ablation", "run_multi_ingress"]


def _boutique_run(config, clients, duration_us, cost,
                  placement=None, sidecar_us=None, single_node=None):
    """One boutique measurement using a config's own ingress wiring."""
    env = Environment()
    plat, ingress = _build_platform(config, env, cost, placement=placement,
                                    sidecar_us=sidecar_us,
                                    single_node=single_node)
    ingress.start()
    plat.start()
    fleet = ClientFleet(env, plat.cluster, ingress, path="/home",
                        body_bytes=256, payload=path_payload("/home"))

    def kickoff():
        yield env.timeout(80_000)
        fleet.spawn(clients)

    env.process(kickoff())
    measure_from = 80_000 + duration_us * 0.3
    env.run(until=80_000 + duration_us)
    return fleet.rps(measure_from, env.now), fleet.mean_latency_us() / 1000


def run_sidecar_ablation(
    clients: int = 40,
    duration_us: float = 120_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Sidecar variants on the Palladium data plane (§3.1)."""
    cost = cost or CostModel()
    variants = {
        "container-sidecar": cost.container_sidecar_us,
        "ebpf-sidecar": cost.ebpf_sidecar_us,
        "shared-sidecar": cost.shared_sidecar_us,
    }
    result = ExperimentResult(
        "Ablation - service mesh sidecar",
        columns=["sidecar", "per_hop_us", "rps", "latency_ms"],
    )
    for name, per_hop in variants.items():
        rps, latency = _boutique_run("palladium-dne", clients, duration_us,
                                     cost, sidecar_us=per_hop)
        result.add_row(name, per_hop, round(rps), round(latency, 2))
    result.note("paper (§3.1): container sidecar overhead 'as high as 30%'")
    return result


def run_placement_ablation(
    clients: int = 40,
    duration_us: float = 120_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Placement sensitivity: Palladium vs a kernel-stack data plane.

    The interesting number is each data plane's *own* degradation from
    best (co-located hotspots) to worst (everything remote): RDMA keeps
    the penalty small, which is why Palladium can skip locality-aware
    placement (§2).
    """
    cost = cost or CostModel()
    result = ExperimentResult(
        "Ablation - placement sensitivity",
        columns=["data_plane", "placement", "rps", "latency_ms"],
    )
    degradation: Dict[str, float] = {}
    for plane, config in (("palladium", "palladium-dne"),
                          ("spright", "spright")):
        lat = {}
        for name, single in (("co-located", True), ("split", False)):
            rps, latency = _boutique_run(config, clients, duration_us, cost,
                                         single_node=single)
            lat[name] = latency
            result.add_row(plane, name, round(rps), round(latency, 2))
        degradation[plane] = lat["split"] / max(1e-9, lat["co-located"])
    result.note(
        f"latency hit co-located->split: palladium "
        f"{degradation['palladium']:.2f}x, spright {degradation['spright']:.2f}x "
        f"(RDMA makes placement far less critical, §2)"
    )
    return result


def run_multi_ingress(
    instances: int = 2,
    clients: int = 24,
    duration_us: float = 300_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Scale-event dips with 1 vs N load-balanced ingress instances.

    Each instance is forced through a worker-process restart mid-run;
    with a single instance the whole service pauses, with a balancer
    only the restarting instance's connections stall.
    """
    cost = cost or CostModel()
    result = ExperimentResult(
        "Extension - multi-instance ingress load balancing",
        columns=["instances", "rps", "worst_gap_ms", "completed"],
    )
    for n in (1, instances):
        env = Environment()
        plat = ServerlessPlatform(env, cost=cost)
        resolver = deploy_http_echo(plat)
        gateways = []
        for i in range(n):
            gw = PalladiumIngress(env, plat.cluster, plat.fabric, cost,
                                  resolver, min_workers=2)
            gw.add_tenant("echo", buffers=512)
            plat.coordinator.subscribe(gw.routes)
            gateways.append(gw)
        plat.register_external(gateways[0].AGENT, "ingress")
        balancer = IngressLoadBalancer(gateways)
        balancer.start()
        plat.start()
        fleet = ClientFleet(env, plat.cluster, balancer, path="/echo",
                            body_bytes=128, payload="x",
                            stats_bucket_us=5_000.0)

        def kickoff():
            yield env.timeout(60_000)
            fleet.spawn(clients)

        def restart_events():
            # force a staggered scale-event pause on every instance
            yield env.timeout(150_000)
            for i, gw in enumerate(gateways):
                for worker in gw.workers:
                    worker.pause(cost.ingress_scale_event_pause_us / 10)
                yield env.timeout(50_000)

        env.process(kickoff())
        env.process(restart_events())
        env.run(until=60_000 + duration_us)
        rps = fleet.rps(100_000, env.now)
        # Worst service interruption: longest run of empty fine-grained
        # throughput buckets inside the restart window.
        meter = fleet.throughput
        lo = int(150_000 // meter.resolution)
        hi = int((60_000 + duration_us) // meter.resolution)
        longest = current = 0
        for idx in range(lo, hi):
            if meter._fine.get(idx, 0) == 0:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        worst_gap_ms = longest * meter.resolution / 1000.0
        result.add_row(n, round(rps), round(worst_gap_ms, 1),
                       fleet.total_completed())
    result.note("paper (§4.1.3): scale-event interruption 'can be avoided by "
                "load balancing across multiple Palladium ingress instances'")
    return result
