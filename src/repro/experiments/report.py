"""Result persistence: JSON / CSV export and import of experiment tables.

The benchmarks print human tables; this module gives the same results a
machine-readable form so EXPERIMENTS.md deltas, plots, or regression
checks can be produced without re-running the simulations.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Union

from .runner import ExperimentResult

__all__ = ["to_json", "from_json", "to_csv", "save", "load"]

_FORMAT_VERSION = 1


def to_json(result: ExperimentResult) -> str:
    """Serialize a result (table + series + notes) to a JSON string."""
    payload = {
        "version": _FORMAT_VERSION,
        "name": result.name,
        "columns": result.columns,
        "rows": result.rows,
        "series": {key: list(map(list, points))
                   for key, points in result.series.items()},
        "notes": result.notes,
    }
    if result.metrics:
        payload["metrics"] = result.metrics
    if result.alerts:
        payload["alerts"] = result.alerts
    return json.dumps(payload, indent=2, sort_keys=True)


def from_json(text: str) -> ExperimentResult:
    """Reconstruct a result from :func:`to_json` output."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported result format version: {version!r}")
    result = ExperimentResult(payload["name"], columns=list(payload["columns"]))
    for row in payload["rows"]:
        result.add_row(*row)
    for key, points in payload.get("series", {}).items():
        result.add_series(key, [tuple(p) if isinstance(p, list) else p
                                for p in points])
    for note in payload.get("notes", []):
        result.note(note)
    result.metrics = payload.get("metrics", {})
    result.alerts = payload.get("alerts", [])
    return result


def to_csv(result: ExperimentResult) -> str:
    """The result's table as CSV (series/notes are JSON-only)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(result.columns)
    writer.writerows(result.rows)
    return out.getvalue()


def save(result: ExperimentResult, directory: Union[str, Path],
         stem: str = "") -> Path:
    """Write ``<stem>.json`` (and ``.csv``) under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = stem or result.name.lower().replace(" ", "_").replace("/", "-")
    json_path = directory / f"{stem}.json"
    json_path.write_text(to_json(result))
    (directory / f"{stem}.csv").write_text(to_csv(result))
    return json_path


def load(path: Union[str, Path]) -> ExperimentResult:
    """Read a result previously written by :func:`save`."""
    return from_json(Path(path).read_text())
