"""Fig. 9 — Viable DPU <-> host communication channels (§3.5.4).

Multiple host functions issue back-to-back 16-byte buffer-descriptor
sends to a single-core DNE on the DPU and await replies.  Three channel
implementations are compared:

* kernel **TCP** — highest latency (kernel + protocol overhead);
* **Comch-P** — producer/consumer ring with busy polling: >8x lower
  latency than TCP but one DPU core per function; overloads beyond 6
  functions (the DPU's spare-core budget);
* **Comch-E** — event-driven epoll: 2.7-3.8x better than TCP, stable
  as function density grows.  Palladium's choice.
"""

from __future__ import annotations

from typing import Optional, Type

from ..config import CostModel
from ..dne import ComchE, ComchP, DescriptorChannel, TcpChannel
from ..hw import build_cluster
from ..memory import Buffer, BufferDescriptor
from ..sim import Environment, LatencyStats

from .runner import ExperimentResult

__all__ = ["run_fig09", "CHANNELS", "run_channel"]

CHANNELS = {
    "tcp": TcpChannel,
    "comch-p": ComchP,
    "comch-e": ComchE,
}


def run_channel(
    channel_cls: Type[DescriptorChannel],
    functions: int,
    duration_us: float = 50_000.0,
    cost: Optional[CostModel] = None,
):
    """One Fig. 9 cell: N functions ping one single-core DNE echo loop.

    Returns ``(mean_rtt_us, total_rps)``.
    """
    cost = cost or CostModel()
    env = Environment()
    cluster = build_cluster(env, cost)
    node = cluster.node("worker0")
    channel = channel_cls(env, cost)
    dne_core = node.dpu.allocate_pinned("dne-core")
    latency = LatencyStats()
    completed = [0]

    # single-core DNE echo loop: ingest each descriptor, send it back
    def dne_loop():
        while True:
            fn_id, descriptor = yield channel.server_inbox.get()
            yield from dne_core.work(channel.ingest_cost_us() * 2)
            channel.dne_send(fn_id, descriptor)

    def function(i: int):
        fn_id = f"fn{i}"
        endpoint = channel.attach(fn_id)
        # a placeholder 16-byte descriptor (no pool needed here)
        buffer = Buffer(64)
        buffer.owner = f"fn:{fn_id}"
        descriptor = BufferDescriptor(buffer=buffer, length=16)
        while True:
            t0 = env.now
            yield from channel.function_send(node.cpu, fn_id, descriptor)
            yield endpoint.recv()
            yield from node.cpu.execute(channel.fn_cpu_us)
            latency.record(env.now - t0)
            completed[0] += 1

    env.process(dne_loop(), name="dne")
    for i in range(functions):
        env.process(function(i), name=f"fn{i}")
    env.run(until=duration_us)
    rps = completed[0] / (duration_us / 1e6)
    return latency.mean(), rps


def run_fig09(
    function_counts=(1, 2, 4, 6, 8, 10),
    duration_us: float = 50_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Reproduce Fig. 9: RTT and descriptor RPS vs function count."""
    cost = cost or CostModel()
    result = ExperimentResult(
        "Fig 9 - DPU/host descriptor channels",
        columns=["channel", "functions", "mean_rtt_us", "rps"],
    )
    for name, cls in CHANNELS.items():
        for n in function_counts:
            rtt, rps = run_channel(cls, n, duration_us, cost)
            result.add_row(name, n, round(rtt, 2), round(rps))
    result.note(
        "paper: Comch-P >8x lower RTT than TCP but overloads beyond 6 "
        "functions; Comch-E 2.7-3.8x better than TCP and stable"
    )
    return result
