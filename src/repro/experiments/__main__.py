"""Command-line reproduction runner.

Regenerate any (or every) figure/table of the paper's evaluation:

    python -m repro.experiments --list
    python -m repro.experiments fig12 fig13
    python -m repro.experiments --all
    python -m repro.experiments --quick fig16

``--quick`` shrinks parameters for a fast sanity pass; the defaults
match the benchmark harness (and EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from . import (
    run_critpath,
    run_ext_conn_churn,
    run_ext_cycle_breakdown,
    run_ext_fault_recovery,
    run_ext_gateway_scale,
    run_ext_migration,
    run_ext_overload,
    run_overload_isolation,
    run_fig09,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
    run_fig16,
    run_multi_ingress,
    run_placement_ablation,
    run_sidecar_ablation,
    run_slo_fault,
    run_slo_overload,
    run_table1,
    run_table2,
)
from .report import save  # noqa: F401  (used when --json is given)


def _fig14_all(**kwargs):
    return [run_fig14(kind, **kwargs)
            for kind in ("palladium", "f-ingress", "k-ingress")]


#: experiment id -> (full-run callable, quick-run callable)
EXPERIMENTS = {
    "fig09": (
        lambda: run_fig09(duration_us=40_000),
        lambda: run_fig09(function_counts=(1, 6, 10), duration_us=15_000),
    ),
    "fig11": (
        lambda: run_fig11(duration_us=60_000),
        lambda: run_fig11(payload_sizes=(64, 4096), concurrencies=(1, 32),
                          duration_us=30_000),
    ),
    "fig12": (
        lambda jobs=None: run_fig12(duration_us=40_000, jobs=jobs),
        lambda jobs=None: run_fig12(sizes=(64, 4096), duration_us=20_000,
                                    jobs=jobs),
    ),
    "fig13": (
        lambda: run_fig13(duration_us=150_000),
        lambda: run_fig13(client_counts=(1, 16), duration_us=60_000),
    ),
    "fig14": (
        lambda: _fig14_all(steps=10),
        lambda: _fig14_all(steps=5),
    ),
    "fig15": (
        lambda: list(run_fig15(time_scale=1 / 120.0).values()),
        lambda: list(run_fig15(time_scale=1 / 480.0).values()),
    ),
    "fig16": (
        lambda jobs=None: run_fig16(client_counts=(20, 80),
                                    duration_us=120_000, jobs=jobs),
        lambda jobs=None: run_fig16(chains=("Home Query",),
                                    client_counts=(20,),
                                    configs=("palladium-dne", "spright"),
                                    duration_us=80_000, jobs=jobs),
    ),
    "table1": (run_table1, run_table1),
    "table2": (
        lambda: run_table2(chains=("Home Query",), duration_us=120_000),
        lambda: run_table2(client_counts=(20,), chains=("Home Query",),
                           configs=("palladium-dne", "nightcore"),
                           duration_us=80_000),
    ),
    "sidecar": (
        lambda: run_sidecar_ablation(duration_us=100_000),
        lambda: run_sidecar_ablation(clients=20, duration_us=60_000),
    ),
    "placement": (
        lambda: run_placement_ablation(duration_us=100_000),
        lambda: run_placement_ablation(clients=20, duration_us=60_000),
    ),
    "multi-ingress": (
        lambda: run_multi_ingress(duration_us=250_000),
        lambda: run_multi_ingress(duration_us=150_000),
    ),
    "fault-recovery": (
        lambda jobs=None: run_ext_fault_recovery(jobs=jobs),
        lambda jobs=None: run_ext_fault_recovery(
            configs=("palladium-dne", "palladium-dne-no-recovery"),
            clients=8, down_us=80_000.0, post_us=60_000.0, jobs=jobs),
    ),
    "migration": (
        lambda jobs=None: run_ext_migration(jobs=jobs),
        lambda jobs=None: run_ext_migration(
            state_kbs=(64, 4096), clients=6,
            move_at_us=80_000.0, disruption_us=50_000.0,
            post_us=80_000.0, jobs=jobs),
    ),
    "gateway-scale": (
        lambda jobs=None: run_ext_gateway_scale(jobs=jobs),
        lambda jobs=None: run_ext_gateway_scale(
            gateway_counts=(1, 2, 4), scale=0.02,
            duration_us=200_000.0, crash_post_us=100_000.0,
            table_capacity=8_192, jobs=jobs),
    ),
    "conn-churn": (
        lambda jobs=None: run_ext_conn_churn(jobs=jobs),
        lambda jobs=None: run_ext_conn_churn(
            scenarios=("cold", "warm-fixed", "shared"),
            multipliers=(0.5, 2.0), day_us=600_000.0,
            max_instances=400, jobs=jobs),
    ),
    "cycle-breakdown": (
        run_ext_cycle_breakdown,
        lambda: run_ext_cycle_breakdown(
            configs=("spright", "palladium-dne"),
            clients=8, duration_us=60_000.0),
    ),
    "slo": (
        lambda jobs=None: [run_slo_overload(jobs=jobs),
                           run_slo_fault(jobs=jobs)],
        lambda jobs=None: [
            run_slo_overload(configs=("palladium-dne", "spright"),
                             multipliers=(0.8, 2.0), jobs=jobs),
            run_slo_fault(configs=("palladium-dne",
                                   "palladium-dne-no-recovery"),
                          jobs=jobs),
        ],
    ),
    "critpath": (
        lambda jobs=None: run_critpath(client_counts=(20, 40, 80),
                                       jobs=jobs),
        lambda jobs=None: run_critpath(client_counts=(20, 80),
                                       duration_us=60_000.0, jobs=jobs),
    ),
    "overload": (
        lambda jobs=None: [run_ext_overload(jobs=jobs),
                           run_overload_isolation()],
        lambda jobs=None: [
            run_ext_overload(multipliers=(0.8, 2.0),
                             duration_us=80_000.0, jobs=jobs),
            run_overload_isolation(duration_us=80_000.0),
        ],
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument("experiments", nargs="*",
                        help=f"one of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--all", action="store_true",
                        help="run every experiment")
    parser.add_argument("--quick", action="store_true",
                        help="smaller parameters for a fast pass")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also write results as JSON/CSV under DIR")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep experiments "
                             "(default: $REPRO_JOBS or 1 = serial; the "
                             "merged output is byte-identical either way)")
    args = parser.parse_args(argv)

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    names = list(EXPERIMENTS) if args.all else args.experiments
    if not names:
        parser.print_help()
        return 2
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    for name in names:
        full, quick = EXPERIMENTS[name]
        started = time.time()
        print(f"\n### {name} {'(quick)' if args.quick else ''}")
        chosen = quick if args.quick else full
        if "jobs" in inspect.signature(chosen).parameters:
            outcome = chosen(jobs=args.jobs)
        else:  # experiments without a sweep ignore --jobs
            outcome = chosen()
        results = outcome if isinstance(outcome, list) else [outcome]
        for index, result in enumerate(results):
            print(result)
            print()
            if args.json:
                suffix = f"-{index}" if len(results) > 1 else ""
                save(result, args.json, stem=f"{name}{suffix}")
        print(f"[{name} took {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
