"""Extension — gateway-tier scale-out under O(10^6) modeled clients.

Not a figure from the paper: this experiment drives the hierarchical
ingress tier (:mod:`repro.ingress.tier`) with the flow-aggregate
workload frontend (:mod:`repro.workloads.aggregate`).  Client
populations are modeled as aggregate streams — client classes with an
arrival rate, payload mix, tenant, and Zipf popularity skew — rather
than per-client simulation objects, so a single host sweeps a million
modeled clients per point in well under a second of wall time.

The sweep grows the L1 spray layer from 1 to 16 Palladium gateways
under a fixed 2 M rps offered load (1 M clients at 2 rps across three
client classes).  Two effects compound as gateways are added:

* **fast-path capacity** grows linearly (each DPU serves hot flows at
  ``fastpath_rps``), and
* **flow-table coverage** grows with the aggregate table capacity, so
  the hot-path hit ratio climbs and the expensive slow-path punt rate
  collapses.

At the largest point the run also fail-stops one gateway mid-sweep:
the consistent-hash ring re-sprays only the dead gateway's flows, its
flow-table entries are shipped to the successors (misses during the
sync window pay the cold-punt cost, they never error), and any
backlog is redirected.  The conservation ledger is exact integers —
``admitted == completed + rejected`` after drain, so ``lost`` is
structurally observable (and must be 0).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..config import CostModel
from ..workloads import ClientClass, FlowAggregateModel

from .parallel import parallel_map
from .runner import ExperimentResult

__all__ = ["gateway_scale_classes", "run_gateway_scale_point",
           "run_ext_gateway_scale", "GATEWAY_COUNTS"]

#: the evaluated spray-layer widths
GATEWAY_COUNTS = (1, 2, 4, 8, 16)

#: fraction of the run spent warming the flow tables before measuring
WARMUP_FRAC = 0.625


def gateway_scale_classes(scale: float = 1.0) -> list:
    """The three-class client mix (1 M clients at ``scale=1``).

    web/mobile/iot at 600k/300k/100k clients, 2 rps each — 2 M rps
    offered in total.  ``scale`` shrinks every class proportionally
    (used by the quick/CI variants); rates per client are unchanged.
    """
    def n(clients: int) -> int:
        return max(1, int(clients * scale))

    return [
        ClientClass("web", "tenant-a", clients=n(600_000),
                    rps_per_client=2.0, body_bytes=512, zipf_s=0.8),
        ClientClass("mobile", "tenant-b", clients=n(300_000),
                    rps_per_client=2.0, body_bytes=256, zipf_s=0.8),
        ClientClass("iot", "tenant-c", clients=n(100_000),
                    rps_per_client=2.0, body_bytes=64, zipf_s=0.8),
    ]


def run_gateway_scale_point(
    gateways: int,
    *,
    scale: float = 1.0,
    duration_us: float = 400_000.0,
    warmup_us: Optional[float] = None,
    crash: bool = False,
    crash_post_us: float = 150_000.0,
    table_capacity: int = 131_072,
    tenant_quota: Optional[int] = None,
    classes: Optional[Sequence[ClientClass]] = None,
    cost: Optional[CostModel] = None,
) -> Dict[str, object]:
    """One sweep point; optionally fail-stop a gateway at the end.

    Timeline: the tier runs ``duration_us`` with goodput/p99 measured
    over ``[warmup_us, duration_us]`` (flow tables warm during the
    warmup).  With ``crash=True`` (requires >= 2 gateways) one
    mid-ring gateway fail-stops at ``duration_us`` and the run
    continues ``crash_post_us`` more; the post window starts 30 ms
    after the crash so it measures the re-sprayed steady state, and
    the blip window covers the 30 ms right after the crash.
    """
    cost = cost or CostModel()
    model = FlowAggregateModel(
        classes if classes is not None else gateway_scale_classes(scale),
        gateways,
        table_capacity=table_capacity,
        tenant_quota=tenant_quota,
        hot_us=cost.tier_fastpath_us,
        cold_us=cost.tier_slowpath_us,
        sync_us=cost.tier_flow_sync_us,
    )
    if crash and gateways < 2:
        raise ValueError("crash point needs at least 2 gateways")
    if warmup_us is None:
        warmup_us = WARMUP_FRAC * duration_us

    model.run(duration_us, drain=not crash)
    metrics: Dict[str, object] = {
        "gateways": gateways,
        "clients": model.modeled_clients,
        "offered_rps": model.offered_rps,
        "goodput_rps": model.goodput_rps(warmup_us, duration_us),
        "p99_us": model.percentile(99.0, warmup_us, duration_us),
        "hot_ratio": model.hot_ratio(),
        "crashed": 0,
        "post_rps": 0.0,
        "blip_p99_us": 0.0,
        "flows_synced": 0,
    }

    if crash:
        victim = f"gw{gateways // 2}"
        end = duration_us + crash_post_us
        model.run(crash_post_us,
                  events=[(duration_us, "crash", victim)], drain=True)
        metrics["crashed"] = 1
        metrics["post_rps"] = model.goodput_rps(duration_us + 30_000.0, end)
        metrics["blip_p99_us"] = model.percentile(
            99.0, duration_us, duration_us + 30_000.0)
        metrics["flows_synced"] = model.flows_synced

    # Ledger totals (exact integers; lost must be 0 — drained runs
    # have no inflight, so admitted fully decomposes).
    # Fluid sections process zero kernel events; benches report model
    # epochs instead so their throughput is still attributable.
    metrics["epochs"] = model.epochs
    metrics["admitted"] = model.admitted
    metrics["completed"] = model.completed
    metrics["rejected"] = model.rejected
    metrics["redirected"] = model.redirected
    metrics["lost"] = (model.admitted - model.completed
                       - model.rejected - model.inflight())
    metrics["conserved"] = model.conserved()
    return metrics


def run_ext_gateway_scale(
    gateway_counts: Sequence[int] = GATEWAY_COUNTS,
    *,
    scale: float = 1.0,
    duration_us: float = 400_000.0,
    crash_post_us: float = 150_000.0,
    table_capacity: int = 131_072,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Aggregate goodput and p99 vs gateway count, crash at the top.

    Every row is an independent run; the largest gateway count also
    takes the mid-sweep fail-stop so the failover path is exercised
    at full scale.  Rows merge deterministically under ``--jobs``.
    """
    counts = tuple(gateway_counts)
    if not counts:
        raise ValueError("need at least one gateway count")
    crash_n = max(counts)
    result = ExperimentResult(
        "EXT - gateway-tier scale-out (flow-aggregate clients)",
        columns=["gateways", "clients", "goodput_rps", "p99_us",
                 "hot_pct", "rejected", "crashed", "post_rps",
                 "blip_p99_us", "flows_synced", "lost"],
    )
    points = parallel_map(
        run_gateway_scale_point,
        [((n,), dict(scale=scale, duration_us=duration_us,
                     crash=(n == crash_n and n >= 2),
                     crash_post_us=crash_post_us,
                     table_capacity=table_capacity))
         for n in counts],
        jobs=jobs,
    )
    for m in points:
        result.add_row(
            int(m["gateways"]), int(m["clients"]),
            round(m["goodput_rps"]), round(m["p99_us"], 1),
            round(100.0 * m["hot_ratio"], 1), int(m["rejected"]),
            int(m["crashed"]), round(m["post_rps"]),
            round(m["blip_p99_us"], 1), int(m["flows_synced"]),
            int(m["lost"]))
    result.note(
        "goodput scales with the spray width as DPU fast-path capacity "
        "and flow-table coverage both grow; the largest point "
        "fail-stops one gateway mid-run — the ring re-sprays only its "
        "flows, synced table entries punt cold during the sync window, "
        "and the exact ledger shows lost == 0"
    )
    return result
