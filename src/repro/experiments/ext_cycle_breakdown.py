"""Extension — Fig. 4/5-style CPU cycle breakdown via the profiler.

Not a figure reproduction in the throughput sense: this experiment
reproduces the *motivating measurement* of the paper.  Fig. 4/5 argue
that SPRIGHT-style data planes burn most of their CPU cycles on data
copies and kernel protocol processing, while Palladium's DNE spends
host cycles on application work and cheap descriptor handling.

The run instruments the Online Boutique testbed with the telemetry
subsystem (:mod:`repro.telemetry`): every component charges its core
time to one of the :data:`~repro.telemetry.CYCLE_CATEGORIES` and the
:class:`~repro.telemetry.CycleLedger` reports the per-category split.

Expected contrast (the acceptance anchor):

* ``spright`` — copy + protocol dominate the non-application cycles
  (two kernel TCP traversals plus serialize/deserialize copies on
  every inter-node hop);
* ``palladium-dne`` / ``palladium-cne`` — zero copy cycles; overhead
  is mostly descriptor handling, which the paper counts as the cheap
  cost of doing business.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config import CostModel
from ..telemetry import CYCLE_CATEGORIES, validate_chrome_trace

from .fig16_boutique import run_boutique_point
from .runner import ExperimentResult

__all__ = ["run_cycle_point", "run_ext_cycle_breakdown", "run_trace_smoke",
           "CYCLE_CONFIGS"]

#: the compared data planes: the paper's motivation target (SPRIGHT)
#: against the DNE and its host-core twin
CYCLE_CONFIGS = ("spright", "palladium-cne", "palladium-dne")


def run_cycle_point(
    config: str,
    chain: str = "Home Query",
    clients: int = 20,
    duration_us: float = 150_000.0,
    cost: Optional[CostModel] = None,
) -> Dict[str, object]:
    """One instrumented boutique run; returns the cycle attribution.

    The returned dict carries the per-category fractions (keys of
    :data:`CYCLE_CATEGORIES`), the overhead fraction, total attributed
    core-microseconds, the run's rps, and the live ``telemetry``
    bundle for drill-down (spans, metrics, per-site cycle charges).
    """
    m = run_boutique_point(config, chain, clients, duration_us,
                           cost=cost, with_telemetry=True)
    telemetry = m["telemetry"]
    ledger = telemetry.cycles
    point: Dict[str, object] = dict(ledger.fractions())
    point.update(
        overhead_fraction=ledger.overhead_fraction(),
        total_core_us=ledger.total_us(),
        rps=m["rps"],
        telemetry=telemetry,
    )
    return point


def run_ext_cycle_breakdown(
    configs: Tuple[str, ...] = CYCLE_CONFIGS,
    chain: str = "Home Query",
    clients: int = 20,
    duration_us: float = 150_000.0,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """The Fig. 4/5-style breakdown table across data planes."""
    result = ExperimentResult(
        "Ext - CPU cycle breakdown (Fig 4/5 motivation)",
        columns=["config"] + [f"{c}_pct" for c in CYCLE_CATEGORIES]
                + ["overhead_pct", "total_core_us", "rps"],
    )
    last_telemetry = None
    for config in configs:
        point = run_cycle_point(config, chain, clients, duration_us,
                                cost=cost)
        last_telemetry = point["telemetry"]
        result.add_row(
            config,
            *(round(100.0 * point[c], 1) for c in CYCLE_CATEGORIES),
            round(100.0 * point["overhead_fraction"], 1),
            round(point["total_core_us"]),
            round(point["rps"]),
        )
    if last_telemetry is not None:
        result.attach_metrics(last_telemetry.metrics)
    result.note(
        "paper Fig. 4/5: SPRIGHT's cycles go mostly to copies + kernel "
        "protocol; the DNE eliminates copies and leaves descriptor work"
    )
    return result


def run_trace_smoke(
    path: Optional[str] = None,
    config: str = "palladium-dne",
    chain: str = "Home Query",
    clients: int = 8,
    duration_us: float = 60_000.0,
) -> Dict[str, object]:
    """CI smoke: run instrumented, export + validate the Chrome trace.

    Returns a summary dict (span/trace counts, integrity and schema
    violation lists — both empty on success) and, when ``path`` is
    given, writes the Chrome trace-event JSON there for loading into
    Perfetto / ``chrome://tracing``.
    """
    point = run_cycle_point(config, chain, clients, duration_us)
    tracer = point["telemetry"].tracer
    trace = tracer.to_chrome()
    errors = validate_chrome_trace(trace)
    violations = tracer.check_integrity()
    if path:
        with open(path, "w") as fh:
            fh.write(tracer.to_chrome_json())
    return {
        "spans": len(tracer.spans),
        "traces": len(tracer.trace_ids()),
        "events": len(trace["traceEvents"]),
        "schema_errors": errors,
        "integrity_violations": violations,
        "rps": point["rps"],
    }
