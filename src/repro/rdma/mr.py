"""Memory regions and the RNIC's translation-table (MTT) cache.

Before the RNIC may DMA into a pool, the pool must be registered as a
memory region.  Palladium registers each tenant's unified pool exactly
once, from the DNE, via the cross-processor map (§3.4.2).  Hugepage
backing keeps the number of MTT entries small (§3.4); when the working
set of registered translations exceeds the on-NIC cache, per-op cost
inflates — the same effect that motivates the paper's shadow-QP cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..memory import Buffer, MemoryPool, RemoteMap

__all__ = ["MemoryRegion", "MemoryRegionTable", "RegistrationError"]


class RegistrationError(PermissionError):
    """An RNIC operation referenced unregistered memory."""


@dataclass
class MemoryRegion:
    """One registered memory region (a tenant pool or a raw range).

    ``pool`` is None for standalone regions — e.g. the staging image a
    live migration restores into before the instance resumes.
    """

    pool: Optional[MemoryPool]
    tenant: str
    mtt_entries: int
    #: lkey/rkey stand-in
    key: int


class MemoryRegionTable:
    """Registered regions of one RNIC + a simple MTT cache model."""

    def __init__(self, mtt_cache_entries: int = 2048):
        self._regions: Dict[int, MemoryRegion] = {}  # pool id -> region
        self._raw_regions: Dict[int, MemoryRegion] = {}  # key -> region
        self._next_key = 1
        self.mtt_cache_entries = mtt_cache_entries
        #: running sum over regions; queried on every RNIC op, so it
        #: must not be recomputed per call
        self._total_mtt = 0

    def register_pool(self, pool: MemoryPool, remote_map: Optional[RemoteMap] = None) -> MemoryRegion:
        """Register ``pool`` (optionally via a cross-processor map).

        When the registration comes from the DPU side — the Palladium
        path — the caller must hold a :class:`~repro.memory.RemoteMap`
        with the RDMA grant, which we verify, reproducing the DOCA
        permission model.
        """
        if remote_map is not None:
            if remote_map.pool is not pool:
                raise RegistrationError("remote map does not describe this pool")
            remote_map.require_rdma()
            remote_map.registered_with_rnic = True
        if id(pool) in self._regions:
            return self._regions[id(pool)]
        region = MemoryRegion(
            pool=pool, tenant=pool.tenant, mtt_entries=pool.mtt_entries,
            key=self._next_key,
        )
        self._next_key += 1
        self._regions[id(pool)] = region
        self._total_mtt += region.mtt_entries
        return region

    def deregister_pool(self, pool: MemoryPool) -> None:
        region = self._regions.pop(id(pool), None)
        if region is not None:
            self._total_mtt -= region.mtt_entries

    def register_region(self, tenant: str, mtt_entries: int) -> MemoryRegion:
        """Register a standalone (pool-less) region.

        Live migration restores the checkpoint image into such a
        region so the RNIC can DMA it; the entries count toward the
        MTT cache like any pool's.  The *time* cost of the ibv_reg_mr
        call is charged by the node's control plane
        (:meth:`repro.rdma.controlplane.RdmaControlPlane.register_region`)
        — never ad-hoc by callers (the dataplane lint enforces this).
        """
        if mtt_entries < 0:
            raise RegistrationError("mtt_entries must be >= 0")
        region = MemoryRegion(pool=None, tenant=tenant,
                              mtt_entries=mtt_entries, key=self._next_key)
        self._next_key += 1
        self._raw_regions[region.key] = region
        self._total_mtt += region.mtt_entries
        return region

    def deregister_region(self, region: MemoryRegion) -> None:
        """Release a standalone region registered via ``register_region``."""
        if self._raw_regions.pop(region.key, None) is not None:
            self._total_mtt -= region.mtt_entries

    def lookup_buffer(self, buffer: Buffer) -> MemoryRegion:
        """Find the region covering ``buffer`` or raise."""
        region = self._regions.get(id(buffer.pool))
        if region is None:
            raise RegistrationError(
                f"buffer {buffer.buffer_id} is not in any registered memory region"
            )
        return region

    @property
    def total_mtt_entries(self) -> int:
        return self._total_mtt

    @property
    def mtt_thrashing(self) -> bool:
        """True when translations exceed the on-NIC cache."""
        return self._total_mtt > self.mtt_cache_entries
