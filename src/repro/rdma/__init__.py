"""RDMA substrate: verbs, queue pairs, RNIC model, connections, locks."""

from .connection import ConnectionManager
from .fabric import RdmaFabric
from .locks import DistributedLock, LockStats, Rendezvous
from .mr import MemoryRegion, MemoryRegionTable, RegistrationError
from .qp import QPState, QpError, QueuePair, ReceiveBufferRegistry, SharedReceiveQueue
from .rnic import AtomicWord, Rnic
from .verbs import Completion, Opcode, RDMA_HEADER_BYTES, WorkRequest

__all__ = [
    "AtomicWord",
    "Completion",
    "ConnectionManager",
    "DistributedLock",
    "LockStats",
    "MemoryRegion",
    "MemoryRegionTable",
    "Opcode",
    "QPState",
    "QpError",
    "QueuePair",
    "RDMA_HEADER_BYTES",
    "RdmaFabric",
    "ReceiveBufferRegistry",
    "RegistrationError",
    "Rendezvous",
    "Rnic",
    "SharedReceiveQueue",
    "WorkRequest",
]
