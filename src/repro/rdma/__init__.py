"""RDMA substrate: verbs, queue pairs, RNIC model, connections, locks,
and the explicit control plane (QP setup, MR lifecycle, pre-warming)."""

from .connection import ConnectionManager
from .controlplane import (
    ControlPlaneConfig,
    DemandPredictivePrewarm,
    FixedFloorPrewarm,
    MrHandle,
    PrewarmPolicy,
    RdmaControlPlane,
    make_prewarm_policy,
)
from .fabric import RdmaFabric
from .locks import DistributedLock, LockStats, Rendezvous
from .mr import MemoryRegion, MemoryRegionTable, RegistrationError
from .qp import (
    IllegalTransition,
    LEGAL_TRANSITIONS,
    QPState,
    QpError,
    QueuePair,
    ReceiveBufferRegistry,
    SharedReceiveQueue,
)
from .rnic import AtomicWord, Rnic
from .verbs import Completion, Opcode, RDMA_HEADER_BYTES, WorkRequest

__all__ = [
    "AtomicWord",
    "Completion",
    "ConnectionManager",
    "ControlPlaneConfig",
    "DemandPredictivePrewarm",
    "DistributedLock",
    "FixedFloorPrewarm",
    "IllegalTransition",
    "LEGAL_TRANSITIONS",
    "LockStats",
    "MemoryRegion",
    "MemoryRegionTable",
    "MrHandle",
    "Opcode",
    "PrewarmPolicy",
    "QPState",
    "QpError",
    "QueuePair",
    "RDMA_HEADER_BYTES",
    "RdmaControlPlane",
    "RdmaFabric",
    "ReceiveBufferRegistry",
    "RegistrationError",
    "Rendezvous",
    "Rnic",
    "SharedReceiveQueue",
    "WorkRequest",
    "make_prewarm_policy",
]
