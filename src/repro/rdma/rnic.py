"""The RNIC device model: executes posted verbs over the fabric.

Each fabric endpoint (two workers' Bluefield-integrated ConnectX-6s and
the ingress node's standalone ConnectX-6) owns one :class:`Rnic`.  The
model executes one transfer per posted work request:

* sender-side NIC pipeline time (WQE fetch + per-byte host DMA, which
  is the "RNIC DMA at line rate" of §2.1),
* wire serialization + switch latency on the directed fabric link,
* receiver-side pipeline, and per-opcode semantics:

  - ``SEND`` consumes a buffer from the destination tenant's shared RQ
    (blocking when empty, the RNR condition) and raises a receive CQE;
  - ``WRITE``/``READ`` touch the remote buffer directly with *no*
    receiver-side notification — including the data-race window that
    §2.1 warns about, which we detect and count;
  - ``CAS`` atomically updates a remote 8-byte word (lock primitive).

Verbs can be *posted* (``post_send`` — asynchronous, completion
surfaces on the node's CQ for the polling engine) or *executed inline*
(``execute`` — a generator that returns the initiator-side completion,
used by components that block on their own operation, e.g. the
distributed-lock protocol).

Shadow-QP economics (§3.3): only *active* QPs occupy RNIC state; when a
node's active-QP count exceeds ``max_active_qps``, every operation pays
the cache-thrash penalty.  The same penalty applies when registered
translations overflow the MTT cache (§3.4).
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..config import CostModel
from ..memory import Buffer, BufferState, MemoryPool, RemoteMap
from ..sim import Environment, FilterStore, Process, Resource

from .mr import MemoryRegionTable
from .qp import QPState, QpError, QueuePair, SharedReceiveQueue
from .verbs import Completion, Opcode, RDMA_HEADER_BYTES, WorkRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fabric import RdmaFabric

__all__ = ["Rnic", "AtomicWord"]

#: Sentinel granted to an uncontended NIC pipeline instead of a full
#: Request event (the ``not users`` guard means at most one copy can
#: ever sit in a given resource's user list, so a shared sentinel is
#: safe — ``release`` removes it from that list by identity).
_TOKEN = object()
_QP_ERROR = QPState.ERROR


class AtomicWord:
    """A remotely addressable 8-byte word (CAS target, lock word)."""

    def __init__(self, node: str, value: int = 0, name: str = ""):
        self.node = node
        self.value = value
        self.name = name or "word"


class Rnic:
    """One RDMA NIC attached to the fabric."""

    def __init__(
        self,
        env: Environment,
        fabric: "RdmaFabric",
        node: str,
        cost: CostModel,
    ):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.cost = cost
        self.mrt = MemoryRegionTable()
        #: the node's single completion queue (§3.3); FilterStore so a
        #: consumer can also wait for a specific completion.
        self.cq: FilterStore = FilterStore(env, name=f"cq:{node}")
        #: per-tenant shared receive queues
        self.srqs: Dict[str, SharedReceiveQueue] = {}
        #: serializes the NIC's host-DMA/WQE pipelines
        self._tx_pipe = Resource(env, capacity=1, name=f"rnic:{node}:tx")
        self._rx_pipe = Resource(env, capacity=1, name=f"rnic:{node}:rx")
        #: number of currently active QPs on this node
        self.active_qps = 0
        #: one-sided writes that landed on a buffer an agent was using
        self.potential_races = 0
        self.ops_completed = 0
        #: fault state: a dead RNIC (node crash) errors every operation
        #: touching it; the no-fault path is one attribute check.
        self.dead = False
        self.flushed_cqes = 0

    # -- fault injection --------------------------------------------------------
    def fail(self) -> None:
        """Node/NIC death: stalled senders targeting this NIC error out."""
        if self.dead:
            return
        self.dead = True
        # Senders blocked in RNR on our shared RQs will never be
        # replenished; flush them out of their (now errored) QPs.
        for srq in self.srqs.values():
            srq.fail_pending(QpError(cause=f"nic {self.node} died"))

    def recover(self) -> None:
        """Bring the NIC back (node restart); QPs stay errored."""
        self.dead = False

    def flush_qp(self, qp: QueuePair, cause: str = "qp-error") -> None:
        """Move a QP to the ERROR state (idempotent).

        In-flight WRs observe the state at their next pipeline stage
        and flush to failed CQEs; WRs posted afterwards flush
        immediately.  An errored QP can never be reactivated — the
        connection manager must evict and replace it.
        """
        if qp.state == QPState.ERROR:
            return
        if qp.is_active:
            self.active_qps -= 1
        qp.fail(cause)

    # -- setup ----------------------------------------------------------------
    def register_pool(self, pool: MemoryPool, remote_map: Optional[RemoteMap] = None):
        """Register a tenant pool as a memory region (DNE core thread)."""
        return self.mrt.register_pool(pool, remote_map)

    def srq(self, tenant: str) -> SharedReceiveQueue:
        """The tenant's shared receive queue, created on first use."""
        if tenant not in self.srqs:
            self.srqs[tenant] = SharedReceiveQueue(self.env, self.node, tenant)
        return self.srqs[tenant]

    def post_recv(self, tenant: str, buffer: Buffer, owner: str) -> int:
        """Post a receive buffer to the tenant's shared RQ."""
        self.mrt.lookup_buffer(buffer)
        return self.srq(tenant).post(buffer, owner)

    # -- cost helpers ----------------------------------------------------------
    def _op_penalty(self) -> float:
        penalized = (
            self.active_qps > self.cost.max_active_qps or self.mrt.mtt_thrashing
        )
        return self.cost.qp_thrash_penalty if penalized else 1.0

    def _pipe_time(self, payload_bytes: int) -> float:
        # Flattened hot path (one call per RNIC pipeline stage): the
        # thrash test and byte cost are computed inline.
        cost = self.cost
        mrt = self.mrt
        op = cost.rnic_op_us
        if self.active_qps > cost.max_active_qps \
                or mrt._total_mtt > mrt.mtt_cache_entries:
            op *= cost.qp_thrash_penalty
        return op + payload_bytes * cost.endhost_per_byte_us

    # -- posting -----------------------------------------------------------------
    def post_send(self, qp: QueuePair, wr: WorkRequest) -> Process:
        """Post a WR asynchronously; its completion lands on the CQ."""
        self._validate(qp, wr)
        qp.pending_wrs += 1
        qp.sends_posted += 1
        span = None
        tel = self.env.telemetry
        if tel is not None and wr.message is not None \
                and wr.message.trace is not None:
            # The transfer span: post to completion, child of whatever
            # posted the WR.  For two-sided SENDs the receive side
            # chains off it through the context re-stamped into the
            # travelling message; one-sided ops are receiver-oblivious,
            # so their message context is left untouched.
            span = tel.tracer.start_span(
                f"rdma.{wr.opcode}", parent=wr.message.trace,
                category="rdma", node=self.node, actor=f"rnic:{self.node}",
                tenant=qp.tenant, dst=qp.remote_node, bytes=wr.length)
            if wr.opcode == Opcode.SEND:
                wr.message.trace = span.context
        return self.env.process(self._run_posted(qp, wr, span),
                                name=f"wr{wr.wr_id}")

    def execute(self, qp: QueuePair, wr: WorkRequest):
        """Generator: run a WR inline, returning the local completion.

        Unlike :meth:`post_send`, a QP error propagates as
        :class:`QpError` to the (blocking) caller instead of flushing
        to the CQ — the caller is waiting on this very operation.
        """
        self._validate(qp, wr)
        qp.pending_wrs += 1
        try:
            completion = yield from self._execute(qp, wr)
        finally:
            qp.pending_wrs -= 1
        self.ops_completed += 1
        if wr.signaled:
            self.cq.put_nowait(completion)
        return completion

    def _validate(self, qp: QueuePair, wr: WorkRequest) -> None:
        if qp.local_node != self.node:
            raise ValueError(f"QP {qp.qp_id} does not belong to RNIC {self.node}")
        if wr.buffer is not None:
            self.mrt.lookup_buffer(wr.buffer)

    def _run_posted(self, qp: QueuePair, wr: WorkRequest, span=None):
        try:
            try:
                completion = yield from self._execute(qp, wr)
            except QpError as exc:
                # Flush-to-CQE: the buffer rides the failed completion
                # back to the polling engine for reclamation.
                self.flush_qp(qp, exc.cause)
                self.flushed_cqes += 1
                completion = Completion(
                    opcode=wr.opcode, wr_id=wr.wr_id, ok=False,
                    buffer=wr.buffer, length=wr.length, message=wr.message,
                    tenant=qp.tenant, flushed=True, error=exc.cause,
                )
        finally:
            qp.pending_wrs -= 1
        self.ops_completed += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "rnic_ops_total", "Work requests completed by an RNIC.",
                labels=("node", "opcode", "ok")).labels(
                    self.node, wr.opcode, completion.ok).inc()
            if span is not None:
                tel.tracer.end_span(
                    span, status="ok" if completion.ok else "flushed")
        if wr.signaled:
            self.cq.put_nowait(completion)
        return completion

    def _check_qp(self, qp: QueuePair) -> None:
        """Stage-boundary fault check (free when no faults are active)."""
        if qp.state == QPState.ERROR:
            raise QpError(qp, qp.error_cause or "qp-error")
        if self.dead:
            raise QpError(qp, f"nic {self.node} died")

    # -- execution ------------------------------------------------------------------
    def _execute(self, qp: QueuePair, wr: WorkRequest):
        # The per-WR hot path: every message of every experiment runs
        # through this generator once, so the pipeline-time computation,
        # the uncontended-pipe token grant (same discipline as
        # ``sim.resources.Resource.use``) and the short one-sided
        # completions (WRITE/CAS) are all flattened into this frame —
        # each removed delegation level is paid again on every resume.
        if self.dead or qp.state == _QP_ERROR:
            self._check_qp(qp)
        fabric = self.fabric
        remote = fabric.rnic(qp.remote_node)
        link = fabric.link(self.node, qp.remote_node)
        env = self.env
        opcode = wr.opcode

        # Sender NIC pipeline: WQE fetch + host-memory DMA at line rate,
        # and the wire bytes for the frame that follows it.
        cost = self.cost
        mrt = self.mrt
        op_us = cost.rnic_op_us
        if self.active_qps > cost.max_active_qps \
                or mrt._total_mtt > mrt.mtt_cache_entries:
            op_us *= cost.qp_thrash_penalty
        if opcode == Opcode.SEND or opcode == Opcode.WRITE:
            op_us += wr.length * cost.endhost_per_byte_us
            wire = RDMA_HEADER_BYTES + wr.length
        elif opcode == Opcode.CAS:
            wire = RDMA_HEADER_BYTES + 16
        else:  # READ: request only; the response carries the data
            wire = RDMA_HEADER_BYTES
        pipe = self._tx_pipe
        users = pipe.users
        if not users and not pipe.queue:
            pipe._last_change = env._now
            users.append(_TOKEN)
            try:
                yield env.timeout(op_us)
            finally:
                pipe.release(_TOKEN)
        else:
            yield from pipe.use(op_us)

        # Wire.
        yield from link.transmit(wire)
        if self.dead or qp.state == _QP_ERROR:
            self._check_qp(qp)
        if remote.dead:
            raise QpError(qp, f"peer nic {remote.node} died")

        if opcode == Opcode.WRITE:
            # One-sided write: receiver-oblivious, lands regardless of
            # who is using the buffer (the §2.1 race window).
            target = wr.remote_buffer
            if target is None:
                raise ValueError("one-sided WRITE requires a remote buffer")
            remote.mrt.lookup_buffer(target)
            length = wr.length
            rcost = remote.cost
            rmrt = remote.mrt
            op_us = rcost.rnic_op_us
            if remote.active_qps > rcost.max_active_qps \
                    or rmrt._total_mtt > rmrt.mtt_cache_entries:
                op_us *= rcost.qp_thrash_penalty
            op_us += length * rcost.endhost_per_byte_us
            pipe = remote._rx_pipe
            users = pipe.users
            if not users and not pipe.queue:
                pipe._last_change = env._now
                users.append(_TOKEN)
                try:
                    yield env.timeout(op_us)
                finally:
                    pipe.release(_TOKEN)
            else:
                yield from pipe.use(op_us)
            if target.state == BufferState.IN_USE and target.owner is not None:
                expected = wr.expected_owner
                if expected is None or target.owner != expected:
                    remote.potential_races += 1
            target.payload = wr.buffer.payload if wr.buffer else wr.inline_payload
            target.length = length
            return Completion(opcode=Opcode.WRITE, wr_id=wr.wr_id, ok=True,
                              buffer=wr.buffer, length=length,
                              tenant=qp.tenant)
        if opcode == Opcode.CAS:
            word: AtomicWord = wr.word
            if word.node != qp.remote_node:
                raise ValueError(
                    f"CAS target word lives on {word.node}, "
                    f"QP goes to {qp.remote_node}"
                )
            # Atomic execution in the remote NIC (serialized by its
            # pipeline; 16 operand bytes through the rx stage).
            rcost = remote.cost
            rmrt = remote.mrt
            op_us = rcost.rnic_op_us
            if remote.active_qps > rcost.max_active_qps \
                    or rmrt._total_mtt > rmrt.mtt_cache_entries:
                op_us *= rcost.qp_thrash_penalty
            op_us += 16 * rcost.endhost_per_byte_us
            pipe = remote._rx_pipe
            users = pipe.users
            if not users and not pipe.queue:
                pipe._last_change = env._now
                users.append(_TOKEN)
                try:
                    yield env.timeout(op_us)
                finally:
                    pipe.release(_TOKEN)
            else:
                yield from pipe.use(op_us)
            old = word.value
            if old == wr.compare:
                word.value = wr.swap
            back = fabric.link(qp.remote_node, self.node)
            yield from back.transmit(RDMA_HEADER_BYTES + 8)
            return Completion(opcode=Opcode.CAS, wr_id=wr.wr_id, ok=True,
                              old_value=old, tenant=qp.tenant)
        if opcode == Opcode.SEND:
            return (yield from self._complete_send(qp, wr, remote))
        if opcode == Opcode.READ:
            return (yield from self._complete_read(qp, wr, remote))
        raise ValueError(f"unknown opcode {wr.opcode!r}")

    def _complete_send(self, qp: QueuePair, wr: WorkRequest, remote: "Rnic"):
        srq = remote.srq(qp.tenant)
        # RNR when the shared RQ is empty: stall until replenished.
        recv_wr_id, recv_buffer = yield srq.take()
        # Receiver NIC pipeline: DMA into the posted buffer (host memory
        # for off-path Palladium — the RNIC writes straight into the
        # tenant's unified pool via the cross-processor registration).
        # Uncontended pipes grant a bare token (see ``_execute``).
        pipe = remote._rx_pipe
        if not pipe.users and not pipe.queue:
            pipe._last_change = self.env._now
            pipe.users.append(_TOKEN)
            try:
                yield self.env.timeout(remote._pipe_time(wr.length))
            finally:
                pipe.release(_TOKEN)
        else:
            yield from pipe.use(remote._pipe_time(wr.length))
        rbr_buffer = srq.rbr.consume(recv_wr_id)
        assert rbr_buffer is recv_buffer, "RBR table out of sync with shared RQ"
        agent = f"rnic:{remote.node}"
        # The application header crosses with the payload: ownership
        # moves from the sending NIC's domain to the receiving NIC's.
        if wr.message is not None:
            wr.message.transfer(f"rnic:{self.node}", agent)
        if wr.length > recv_buffer.capacity:
            # Message too large for the posted buffer: local length error.
            recv_buffer.owner = agent
            recv_buffer.state = BufferState.IN_USE
            remote.cq.put_nowait(Completion(
                opcode=Opcode.RECV, wr_id=recv_wr_id, ok=False,
                buffer=recv_buffer, message=wr.message, tenant=qp.tenant,
                is_recv=True,
            ))
        else:
            recv_buffer.write(agent, wr.buffer.payload if wr.buffer else None, wr.length)
            recv_buffer.state = BufferState.IN_USE
            srq.consumed_since_replenish += 1
            remote.cq.put_nowait(Completion(
                opcode=Opcode.RECV, wr_id=recv_wr_id, ok=True,
                buffer=recv_buffer, length=wr.length, message=wr.message,
                tenant=qp.tenant, is_recv=True,
            ))
        # The local completion carries the source buffer so the polling
        # engine can recycle it to the tenant pool; the message rides as
        # a reference only (it is owned by the receive side now) so the
        # sender can settle a reliability ack.
        return Completion(opcode=Opcode.SEND, wr_id=wr.wr_id, ok=True,
                          buffer=wr.buffer, length=wr.length,
                          message=wr.message, tenant=qp.tenant)

    def _complete_read(self, qp: QueuePair, wr: WorkRequest, remote: "Rnic"):
        source = wr.remote_buffer
        if source is None:
            raise ValueError("one-sided READ requires a remote buffer")
        remote.mrt.lookup_buffer(source)
        length = wr.length or source.length
        # Remote NIC reads host memory and streams the response back.
        # Uncontended pipes grant a bare token (see ``_execute``).
        env = self.env
        pipe = remote._rx_pipe
        if not pipe.users and not pipe.queue:
            pipe._last_change = env._now
            pipe.users.append(_TOKEN)
            try:
                yield env.timeout(remote._pipe_time(length))
            finally:
                pipe.release(_TOKEN)
        else:
            yield from pipe.use(remote._pipe_time(length))
        back = self.fabric.link(qp.remote_node, self.node)
        yield from back.transmit(RDMA_HEADER_BYTES + length)
        pipe = self._rx_pipe
        if not pipe.users and not pipe.queue:
            pipe._last_change = env._now
            pipe.users.append(_TOKEN)
            try:
                yield env.timeout(self._pipe_time(length))
            finally:
                pipe.release(_TOKEN)
        else:
            yield from pipe.use(self._pipe_time(length))
        return Completion(opcode=Opcode.READ, wr_id=wr.wr_id, ok=True,
                          length=length, payload=source.payload,
                          tenant=qp.tenant)
