"""The explicit RDMA control plane: QP setup, MR lifecycle, pre-warming.

Swift (arXiv 2501.19051) measures that for elastic RDMA computing the
*control plane* — QP creation and the ``ibv_modify_qp`` ladder, CM
round-trips, MR registration — is the bottleneck, not the data plane.
This module makes those costs first-class instead of the historical
one-flat-timeout model scattered across call sites:

* :class:`RdmaControlPlane` is the **single place simulated time is
  charged** for RC setup and ``ibv_reg_mr`` (the dataplane lint bans
  ``cost.rc_setup_us`` / ``cost.mr_register_time`` elsewhere).  One
  instance per fabric endpoint, shared by every connection manager on
  that node, so the per-node ops/sec ceiling is global to the node.
* :class:`ControlPlaneConfig` selects between the **flat
  compatibility path** (default: one ``rc_setup_us`` timeout, byte-
  identical to the historical model) and the **explicit path**: per-
  transition ``ibv_modify_qp`` costs plus CM round-trips that ride the
  simulated fabric links, so setup latency depends on RTT, link
  health, and the node's control-plane ops/sec ceiling.
* The MR lifecycle (:meth:`RdmaControlPlane.mr_handle`) supports eager
  vs lazy registration and hugepage MTT compaction: hugepage-backed
  regions need ~512x fewer MTT entries, which is both cheaper to
  register and kinder to the on-NIC translation cache.
* :class:`PrewarmPolicy` and friends decide how many shadow QPs a
  connection manager keeps pre-established per (peer, scope) — none,
  a fixed floor, or a demand-predictive target sized from the recent
  cold-connect rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..config import CostModel
from ..sim import Environment

from .mr import MemoryRegion
from .qp import QPState, QueuePair

__all__ = [
    "CM_FRAME_BYTES",
    "ControlPlaneConfig",
    "DemandPredictivePrewarm",
    "FixedFloorPrewarm",
    "MrHandle",
    "PrewarmPolicy",
    "RdmaControlPlane",
    "make_prewarm_policy",
]

#: one CM MAD datagram (REQ/REP/RTU are 256-byte management frames)
CM_FRAME_BYTES = 256


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Knobs of the explicit control plane.

    The default (``explicit=False``) is the flat compatibility path:
    every RC handshake is exactly one ``rc_setup_us`` timeout and MR
    registration is one ``mr_register_time`` charge — byte-identical
    to the historical model, which the seed experiments' determinism
    gates pin.  ``explicit=True`` decomposes the handshake into the
    verbs ladder plus CM round-trips on the real fabric links; the
    per-edge defaults are calibrated so the total at LAN RTT lands
    near ``rc_setup_us`` (~19.8 ms + 3 RTTs).
    """

    explicit: bool = False
    # -- explicit-handshake decomposition -------------------------------
    #: CM REQ/REP/RTU exchanges riding the fabric (3 = full CM dance)
    cm_round_trips: int = 3
    #: CM listener processing per round trip (mlx-style firmware path)
    cm_processing_us: float = 3_200.0
    #: ibv_modify_qp RESET->INIT (access flags, pkey)
    reset_to_init_us: float = 1_400.0
    #: ibv_modify_qp INIT->RTR (path MTU, remote QPN, PSNs, MRA)
    init_to_rtr_us: float = 5_200.0
    #: ibv_modify_qp RTR->RTS (timeouts, retry counts, SQ PSN)
    rtr_to_rts_us: float = 3_600.0
    #: per-node control-plane verbs ops/sec ceiling (None = unlimited).
    #: Real RNIC firmware serializes QP/MR commands; past the ceiling,
    #: setup requests queue FIFO and latency grows with load.
    ops_per_sec: Optional[float] = None
    # -- MR lifecycle ---------------------------------------------------
    #: "eager": register at provision time; "lazy": first-use
    mr_policy: str = "eager"
    #: hugepage MTT compaction (§3.4): one entry per 2 MB instead of 4 KB
    huge_pages: bool = True
    page_bytes: int = 4096
    hugepage_bytes: int = 2 * 1024 * 1024
    # -- shadow-pool pre-warming ---------------------------------------
    #: "none" | "fixed" | "predictive"
    prewarm: str = "none"
    prewarm_floor: int = 0
    #: demand-predictive window & sizing headroom
    predictive_window_us: float = 250_000.0
    predictive_headroom: float = 1.5
    predictive_ceiling: int = 32
    # -- connection sharing --------------------------------------------
    #: "tenant": all functions of a tenant multiplex one QP pool per
    #: peer (Palladium's DNE proxy model); "function": each function
    #: gets a private pool (the churn experiment's cold baseline)
    share_scope: str = "tenant"

    def __post_init__(self):
        if self.mr_policy not in ("eager", "lazy"):
            raise ValueError(f"unknown mr_policy {self.mr_policy!r}")
        if self.prewarm not in ("none", "fixed", "predictive"):
            raise ValueError(f"unknown prewarm policy {self.prewarm!r}")
        if self.share_scope not in ("tenant", "function"):
            raise ValueError(f"unknown share_scope {self.share_scope!r}")


# -- pre-warming policies ----------------------------------------------------

class PrewarmPolicy:
    """Decides the pre-established shadow-pool floor per (peer, scope).

    ``active`` gates the maintenance loop entirely: the default "none"
    policy never runs it, keeping the pre-policy platforms event-for-
    event identical.
    """

    name = "none"
    active = False

    def target(self, now_us: float, pool_size: int,
               demand_times: List[float]) -> int:
        return 0


class FixedFloorPrewarm(PrewarmPolicy):
    """Keep at least ``floor`` shadow QPs established per pool."""

    name = "fixed"
    active = True

    def __init__(self, floor: int):
        if floor < 0:
            raise ValueError("floor must be >= 0")
        self.floor = floor

    def target(self, now_us: float, pool_size: int,
               demand_times: List[float]) -> int:
        return self.floor


class DemandPredictivePrewarm(PrewarmPolicy):
    """Size the pool from the recent cold-connect rate.

    Counts cold connects observed in the trailing window, scales by a
    headroom factor, and clamps to ``[floor, ceiling]`` — a stand-in
    for the predictive pre-provisioning knee autoscalers chase.
    """

    name = "predictive"
    active = True

    def __init__(self, window_us: float = 250_000.0, headroom: float = 1.5,
                 floor: int = 1, ceiling: int = 32):
        self.window_us = window_us
        self.headroom = headroom
        self.floor = floor
        self.ceiling = ceiling

    def target(self, now_us: float, pool_size: int,
               demand_times: List[float]) -> int:
        horizon = now_us - self.window_us
        recent = sum(1 for t in demand_times if t >= horizon)
        want = int(recent * self.headroom + 0.999999) if recent else self.floor
        return max(self.floor, min(want, self.ceiling))


def make_prewarm_policy(config: ControlPlaneConfig) -> PrewarmPolicy:
    """The policy named by ``config`` (the pluggable default wiring)."""
    if config.prewarm == "fixed":
        return FixedFloorPrewarm(config.prewarm_floor)
    if config.prewarm == "predictive":
        return DemandPredictivePrewarm(
            window_us=config.predictive_window_us,
            headroom=config.predictive_headroom,
            floor=max(1, config.prewarm_floor),
            ceiling=config.predictive_ceiling,
        )
    return PrewarmPolicy()


# -- MR lifecycle ------------------------------------------------------------

class MrHandle:
    """One registerable region with policy-deferred registration.

    Eager callers drive :meth:`acquire` at provision time; lazy
    callers at first use.  ``acquire`` is idempotent, so the two call
    sites can coexist — whoever gets there first pays.
    """

    def __init__(self, cp: "RdmaControlPlane", tenant: str, nbytes: int,
                 hugepage_bytes: Optional[int] = None):
        self.cp = cp
        self.tenant = tenant
        self.nbytes = nbytes
        self.hugepage_bytes = hugepage_bytes
        self.region: Optional[MemoryRegion] = None

    def acquire(self, cpu=None):
        """Generator: register the region unless already registered."""
        if self.region is None:
            self.region = yield from self.cp.register_region(
                self.tenant, self.nbytes, cpu=cpu,
                hugepage_bytes=self.hugepage_bytes)
        return self.region

    @property
    def registered(self) -> bool:
        return self.region is not None

    def release(self) -> None:
        if self.region is not None:
            self.cp.deregister_region(self.region)
            self.region = None


# -- the control plane -------------------------------------------------------

class RdmaControlPlane:
    """Per-node RDMA control plane: the only charger of setup costs.

    One instance per fabric endpoint (see
    :meth:`repro.rdma.fabric.RdmaFabric.control_plane`); every
    connection manager and provisioning path on that node shares it,
    so the ops/sec ceiling and the setup ledgers are node-global.
    """

    def __init__(self, env: Environment, fabric, node: str, cost: CostModel,
                 config: Optional[ControlPlaneConfig] = None):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.cost = cost
        self.config = config or ControlPlaneConfig()
        #: mutable ceiling (fault injection can throttle it at runtime)
        self.ops_per_sec = self.config.ops_per_sec
        #: virtual-time FIFO server for the verbs-command ceiling
        self._free_at = 0.0
        # -- ledgers -------------------------------------------------------
        self.ops_admitted = 0
        self.throttle_wait_us = 0.0
        self.qps_established = 0
        self.connect_failures = 0
        self.setup_time_spent = 0.0
        self.mr_registered_bytes = 0
        self.mr_regions_registered = 0

    # -- ops/sec ceiling ---------------------------------------------------
    def set_ceiling(self, ops_per_sec: Optional[float]) -> None:
        """Change the verbs-command ceiling (cp-throttle fault hook)."""
        self.ops_per_sec = ops_per_sec

    def _admit(self, ops: int = 1):
        """Generator: wait for ``ops`` slots of the node's command queue.

        Models RNIC firmware serializing QP/MR commands as a
        deterministic virtual-time FIFO: each op books ``1e6/rate`` µs
        of server time starting at ``max(now, free_at)``.  Unlimited
        ceilings (the default) yield no events at all — the flat
        compatibility path stays event-for-event identical.
        """
        self.ops_admitted += ops
        rate = self.ops_per_sec
        if not rate:
            return 0.0
        service = ops * 1e6 / rate
        start = self._free_at if self._free_at > self.env.now else self.env.now
        queued = start - self.env.now
        self._free_at = start + service
        wait = self._free_at - self.env.now
        self.throttle_wait_us += queued
        if wait > 0:
            yield self.env.timeout(wait)
        return queued

    # -- QP establishment --------------------------------------------------
    def connect(self, remote_node: str, tenant: str,
                peer_alive: Optional[Callable[[str], bool]] = None):
        """Generator: one full RC handshake; returns the local QP.

        The QP comes back RTS and INACTIVE (a shadow QP, §3.3), with
        its remote end wired, or in ERROR when the peer is dead — the
        handshake toward a dead peer still burns the full setup time
        (the CM retries its REQ until the timeout budget is spent),
        and posting on the errored QP flushes, surfacing the failure.
        """
        alive = peer_alive if peer_alive is not None else (lambda remote: True)
        t0 = self.env.now
        if not self.config.explicit:
            # Flat compatibility path: exactly one timeout event, as
            # the historical ConnectionManager._establish charged.
            yield self.env.timeout(self.cost.rc_setup_us)
            local = QueuePair(self.env, self.node, remote_node, tenant)
            local.transition(QPState.INIT)
            local.transition(QPState.RTR)
        else:
            local = QueuePair(self.env, self.node, remote_node, tenant)
            # All four verbs commands (create + three modifies) are
            # reserved on the command queue up-front — one handshake is
            # one FIFO admission, so a backlog delays whole handshakes
            # instead of starving in-flight ones of their later stages.
            yield from self._admit(4)
            yield self.env.timeout(self.config.reset_to_init_us)
            local.transition(QPState.INIT)
            # CM REQ/REP(/RTU): management datagrams on the real links,
            # so setup latency tracks RTT, link health and contention.
            fwd = self.fabric.link(self.node, remote_node)
            rev = self.fabric.link(remote_node, self.node)
            for _ in range(self.config.cm_round_trips):
                yield from fwd.transmit(CM_FRAME_BYTES)
                yield self.env.timeout(self.config.cm_processing_us)
                yield from rev.transmit(CM_FRAME_BYTES)
            # modify INIT->RTR then RTR->RTS (admitted above)
            yield self.env.timeout(self.config.init_to_rtr_us)
            local.transition(QPState.RTR)
            yield self.env.timeout(self.config.rtr_to_rts_us)
        local.setup_us = self.env.now - t0
        self.setup_time_spent += local.setup_us
        if not alive(remote_node):
            local.fail(f"connect to {remote_node} failed")
            self.connect_failures += 1
            self._observe_setup(local, outcome="error")
            return local
        local.transition(QPState.RTS)
        peer = QueuePair(self.env, remote_node, self.node, tenant)
        peer.transition(QPState.INIT)
        peer.transition(QPState.RTR)
        peer.transition(QPState.RTS)
        peer.setup_us = local.setup_us
        local.peer, peer.peer = peer, local
        self.qps_established += 1
        self._observe_setup(local, outcome="ok")
        return local

    def bootstrap(self):
        """Generator: one CM bootstrap round (ring/credit setup).

        Baseline engines (e.g. Fuyao's ring setup) pay one full
        connection-setup round before exchanging credits; routing the
        charge through the control plane keeps the cost model in one
        place without changing the amount charged.
        """
        yield self.env.timeout(self.cost.rc_setup_us)
        self.setup_time_spent += self.cost.rc_setup_us

    def _observe_setup(self, qp: QueuePair, outcome: str) -> None:
        tel = self.env.telemetry
        if tel is None:
            return
        tel.metrics.histogram(
            "cp_setup_latency_us", "RC handshake wall-clock, with QP-id "
            "exemplars.", labels=("node", "outcome"),
            low=1.0, high=10_000_000.0).labels(
                self.node, outcome).observe(qp.setup_us, trace_id=qp.qp_id)

    # -- MR lifecycle ------------------------------------------------------
    def entries_for(self, nbytes: int,
                    hugepage_bytes: Optional[int] = None) -> int:
        """MTT entries a region of ``nbytes`` needs under the paging
        policy: hugepage compaction divides the count by ~512."""
        if self.config.huge_pages:
            page = hugepage_bytes or self.config.hugepage_bytes
        else:
            page = self.config.page_bytes
        return max(1, -(-int(nbytes) // page))

    def register_region(self, tenant: str, nbytes: int, cpu=None,
                        hugepage_bytes: Optional[int] = None):
        """Generator: charge one ``ibv_reg_mr`` and install the region.

        The time cost is proportional to the MTT entry count (pinning
        + translation-table writes); ``cpu`` optionally binds the
        charge to a host core (the registration is a syscall on the
        caller's CPU) instead of a bare timeout.  Returns the
        :class:`MemoryRegion`, whose entries count toward the MTT
        cache thrash model like any pool's.
        """
        entries = self.entries_for(nbytes, hugepage_bytes)
        yield from self._admit(1)
        register_us = self.cost.mr_register_time(entries)
        if cpu is not None:
            yield from cpu.execute(register_us)
        else:
            yield self.env.timeout(register_us)
        region = self.fabric.rnic(self.node).mrt.register_region(
            tenant, entries)
        self.mr_registered_bytes += int(nbytes)
        self.mr_regions_registered += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "mr_registered_bytes", "Bytes registered as memory "
                "regions.", labels=("node", "tenant")).labels(
                    self.node, tenant).inc(int(nbytes))
        return region

    def deregister_region(self, region: MemoryRegion) -> None:
        """Release a standalone region (dereg is cheap: no MTT writes)."""
        self.fabric.rnic(self.node).mrt.deregister_region(region)

    def mr_handle(self, tenant: str, nbytes: int,
                  hugepage_bytes: Optional[int] = None) -> MrHandle:
        """A region handle honouring the eager/lazy registration policy."""
        return MrHandle(self, tenant, nbytes, hugepage_bytes=hugepage_bytes)

    @property
    def wants_eager_mr(self) -> bool:
        return self.config.mr_policy == "eager"
