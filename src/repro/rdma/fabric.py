"""The RDMA fabric: RNIC registry over the cluster's switch links."""

from __future__ import annotations

from typing import Dict, Optional

from ..config import CostModel
from ..hw import Cluster, Link
from ..sim import Environment

from .controlplane import ControlPlaneConfig, RdmaControlPlane
from .rnic import Rnic

__all__ = ["RdmaFabric"]


class RdmaFabric:
    """Holds one :class:`Rnic` per fabric endpoint of a cluster."""

    def __init__(self, env: Environment, cluster: Cluster, cost: CostModel):
        self.env = env
        self.cluster = cluster
        self.cost = cost
        self._rnics: Dict[str, Rnic] = {}
        self._control_planes: Dict[str, RdmaControlPlane] = {}

    def install_rnic(self, node: str) -> Rnic:
        """Attach an RNIC to ``node`` (idempotent)."""
        if node not in self._rnics:
            if node not in self.cluster.nodes:
                raise KeyError(f"unknown node {node!r}")
            self._rnics[node] = Rnic(self.env, self, node, self.cost)
        return self._rnics[node]

    def control_plane(self, node: str,
                      config: Optional[ControlPlaneConfig] = None
                      ) -> RdmaControlPlane:
        """The node's :class:`RdmaControlPlane` (created on first use).

        One instance per endpoint: every connection manager and
        provisioning path on a node shares its ops/sec ceiling and
        setup ledgers.  ``config`` applies only on first creation
        (first caller wins); platforms pre-register configs before
        building engines to override the flat default.
        """
        cp = self._control_planes.get(node)
        if cp is None:
            cp = RdmaControlPlane(self.env, self, node, self.cost,
                                  config=config)
            self._control_planes[node] = cp
        return cp

    def rnic(self, node: str) -> Rnic:
        try:
            return self._rnics[node]
        except KeyError:
            raise KeyError(f"node {node!r} has no RNIC installed") from None

    def link(self, src: str, dst: str) -> Link:
        return self.cluster.fabric_link(src, dst)

    @property
    def nodes(self):
        return list(self._rnics)
