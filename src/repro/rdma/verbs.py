"""RDMA verbs vocabulary: opcodes, work requests, completions.

Mirrors the IB-verbs objects the paper manipulates (§2.1, §3.5.2):
work requests (WRs) are posted to a queue pair's send queue; receive
buffers are posted to a (per-tenant, shared) receive queue; completion
queue entries (CQEs) surface finished work to the polling engine.

Both per-op classes are slotted — they are allocated on every message
of every experiment, and the application header they carry is a typed
:class:`~repro.dataplane.Message` handed off by ownership, not copied.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..dataplane import Message
from ..memory import Buffer

__all__ = ["Opcode", "WorkRequest", "Completion", "RDMA_HEADER_BYTES"]

#: Transport header bytes added to every RDMA message on the wire
#: (BTH + RETH-ish overhead; only affects serialization time).
RDMA_HEADER_BYTES = 38

_wr_ids = itertools.count(1)


class Opcode:
    """RDMA operation codes used in the reproduction."""

    SEND = "send"  # two-sided: consumes a posted receive buffer
    RECV = "recv"  # receive-buffer post
    WRITE = "write"  # one-sided write: receiver CPU/NIC not notified
    READ = "read"  # one-sided read
    CAS = "cas"  # atomic compare-and-swap (lock building block)

    TWO_SIDED = frozenset({SEND})
    ONE_SIDED = frozenset({WRITE, READ, CAS})


class WorkRequest:
    """One unit of work posted to a queue pair.

    ``message`` carries the application header (tenant, destination
    function, request id) which the real system encodes in the payload
    header / immediate data; for two-sided SENDs the RNIC hands the
    very same instance to the receiver.
    """

    __slots__ = ("opcode", "buffer", "length", "message", "remote_buffer",
                 "compare", "swap", "signaled", "wr_id", "expected_owner",
                 "word", "inline_payload")

    def __init__(
        self,
        opcode: str,
        buffer: Optional[Buffer] = None,
        length: int = 0,
        message: Optional[Message] = None,
        remote_buffer: Optional[Buffer] = None,
        compare: int = 0,
        swap: int = 0,
        signaled: bool = True,
        wr_id: Optional[int] = None,
        expected_owner: Optional[str] = None,
        word=None,
        inline_payload: Any = None,
    ):
        self.opcode = opcode
        self.buffer = buffer
        self.length = length
        self.message = message
        #: one-sided targets
        self.remote_buffer = remote_buffer
        #: CAS operands
        self.compare = compare
        self.swap = swap
        self.signaled = signaled
        self.wr_id = next(_wr_ids) if wr_id is None else wr_id
        #: one-sided WRITE: the agent expected to hold the target slot
        #: (suppresses the §2.1 race detector for ring-owned slots)
        self.expected_owner = expected_owner
        #: CAS target (an :class:`~repro.rdma.rnic.AtomicWord`)
        self.word = word
        #: WRITE without a local buffer: the inline payload to land
        self.inline_payload = inline_payload

    def wire_bytes(self) -> int:
        """Bytes this WR puts on the fabric (payload + header)."""
        if self.opcode == Opcode.CAS:
            return RDMA_HEADER_BYTES + 16
        if self.opcode == Opcode.READ:
            return RDMA_HEADER_BYTES  # request; response carries data
        return RDMA_HEADER_BYTES + self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WorkRequest {self.opcode} wr_id={self.wr_id} "
                f"len={self.length}>")


class Completion:
    """A completion queue entry (CQE)."""

    __slots__ = ("opcode", "wr_id", "ok", "buffer", "length", "message",
                 "tenant", "old_value", "payload", "is_recv", "flushed",
                 "error")

    def __init__(
        self,
        opcode: str,
        wr_id: int,
        ok: bool = True,
        buffer: Optional[Buffer] = None,
        length: int = 0,
        message: Optional[Message] = None,
        tenant: Optional[str] = None,
        old_value: int = 0,
        payload: Any = None,
        is_recv: bool = False,
        flushed: bool = False,
        error: str = "",
    ):
        self.opcode = opcode
        self.wr_id = wr_id
        self.ok = ok
        #: For receive completions: the buffer the RNIC delivered into.
        self.buffer = buffer
        self.length = length
        #: The travelling application header.  For receive completions
        #: it is owned by the receiving RNIC; for flushed completions it
        #: never left and must be reclaimed (retired) by the poller.
        self.message = message
        #: Tenant whose (shared) receive queue satisfied this arrival.
        self.tenant = tenant
        #: For CAS: the original value read from the remote word.
        self.old_value = old_value
        #: For READ: the payload streamed back from the remote buffer.
        self.payload = payload
        #: is this the receiver-side completion of a two-sided SEND?
        self.is_recv = is_recv
        #: True when this CQE was flushed out of an errored QP (the
        #: IBV_WC_WR_FLUSH_ERR analogue); ``ok`` is False for these.
        self.flushed = flushed
        #: short cause string for failed completions (debug/telemetry)
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Completion {self.opcode} wr_id={self.wr_id} ok={self.ok} "
                f"recv={self.is_recv} flushed={self.flushed}>")
