"""RDMA verbs vocabulary: opcodes, work requests, completions.

Mirrors the IB-verbs objects the paper manipulates (§2.1, §3.5.2):
work requests (WRs) are posted to a queue pair's send queue; receive
buffers are posted to a (per-tenant, shared) receive queue; completion
queue entries (CQEs) surface finished work to the polling engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..memory import Buffer

__all__ = ["Opcode", "WorkRequest", "Completion", "RDMA_HEADER_BYTES"]

#: Transport header bytes added to every RDMA message on the wire
#: (BTH + RETH-ish overhead; only affects serialization time).
RDMA_HEADER_BYTES = 38

_wr_ids = itertools.count(1)


class Opcode:
    """RDMA operation codes used in the reproduction."""

    SEND = "send"  # two-sided: consumes a posted receive buffer
    RECV = "recv"  # receive-buffer post
    WRITE = "write"  # one-sided write: receiver CPU/NIC not notified
    READ = "read"  # one-sided read
    CAS = "cas"  # atomic compare-and-swap (lock building block)

    TWO_SIDED = frozenset({SEND})
    ONE_SIDED = frozenset({WRITE, READ, CAS})


@dataclass
class WorkRequest:
    """One unit of work posted to a queue pair.

    ``meta`` carries the application header (tenant, destination
    function, request id) which the real system encodes in the payload
    header / immediate data.
    """

    opcode: str
    buffer: Optional[Buffer] = None
    length: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    #: one-sided targets
    remote_buffer: Optional[Buffer] = None
    #: CAS operands
    compare: int = 0
    swap: int = 0
    signaled: bool = True
    wr_id: int = field(default_factory=lambda: next(_wr_ids))

    def wire_bytes(self) -> int:
        """Bytes this WR puts on the fabric (payload + header)."""
        if self.opcode == Opcode.CAS:
            return RDMA_HEADER_BYTES + 16
        if self.opcode == Opcode.READ:
            return RDMA_HEADER_BYTES  # request; response carries data
        return RDMA_HEADER_BYTES + self.length


@dataclass
class Completion:
    """A completion queue entry (CQE)."""

    opcode: str
    wr_id: int
    ok: bool = True
    #: For receive completions: the buffer the RNIC delivered into.
    buffer: Optional[Buffer] = None
    length: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Tenant whose (shared) receive queue satisfied this arrival.
    tenant: Optional[str] = None
    #: For CAS: the original value read from the remote word.
    old_value: int = 0
    #: is this the receiver-side completion of a two-sided SEND?
    is_recv: bool = False
    #: True when this CQE was flushed out of an errored QP (the
    #: IBV_WC_WR_FLUSH_ERR analogue); ``ok`` is False for these.
    flushed: bool = False
    #: short cause string for failed completions (debug/telemetry)
    error: str = ""
