"""Queue pairs, shared receive queues, and the receive-buffer registry.

Palladium's QP layout (§3.3, §3.5.2):

* RC QPs give dedicated point-to-point reliable connections between
  peer nodes; a tenant may own several (proxied by the DNE).
* All of a tenant's RCQPs on a node share a **single receive queue**
  posted exclusively with buffers from that tenant's pool, so the RNIC
  always lands incoming data in the right pool.
* All RCQPs on a node share one **completion queue**.
* The **receive buffer registry (RBR)** maps posted WRs to their
  buffers so the RX stage can recover the buffer from a CQE.
* QPs are *active* while they have WRs queued, otherwise *inactive*;
  inactive QPs consume no RNIC resources (shadow-QP scheme of RoGUE).

A QP carries **two orthogonal state dimensions**:

* the **verbs state machine** (``verbs_state``): RESET → INIT → RTR →
  RTS, with ERROR reachable from every state and terminal.  Each
  forward edge corresponds to one ``ibv_modify_qp`` round the control
  plane charges for (:mod:`repro.rdma.controlplane`);
* the **shadow-activity state** (``state``): ACTIVE / INACTIVE /
  ERROR.  Only RTS QPs are ever activated; the RNIC thrash model
  watches the node-wide active count.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..memory import Buffer, BufferState
from ..sim import Environment, Store

__all__ = ["QueuePair", "QPState", "QpError", "IllegalTransition",
           "SharedReceiveQueue", "ReceiveBufferRegistry"]


def _next_qp_id(env: Environment) -> int:
    """Per-Environment QP id sequence.

    A process-global ``itertools.count`` would leak ids across
    simulations sharing one worker process — the same latent
    parallel-runner determinism bug PR 5 fixed for conn/request ids in
    ``ingress/gateway.py``.  Scoping the counter to the Environment
    keeps ids (and anything derived from them) a pure function of the
    run.
    """
    n = getattr(env, "_qp_id_seq", 0) + 1
    env._qp_id_seq = n
    return n


class QPState:
    # shadow-activity dimension (RoGUE's scheme)
    ACTIVE = "active"
    INACTIVE = "inactive"
    #: terminal error state: posted WRs flush to failed CQEs and the QP
    #: can never carry work again (it must be evicted and replaced).
    ERROR = "error"
    # verbs state machine (ibv_modify_qp ladder)
    RESET = "reset"
    INIT = "init"
    RTR = "rtr"
    RTS = "rts"


#: legal verbs-state edges; ERROR is reachable from everywhere and
#: terminal (there is no modify-to-RESET recovery in this model — an
#: errored QP is evicted and replaced).
LEGAL_TRANSITIONS = frozenset({
    (QPState.RESET, QPState.INIT),
    (QPState.INIT, QPState.RTR),
    (QPState.RTR, QPState.RTS),
    (QPState.RESET, QPState.ERROR),
    (QPState.INIT, QPState.ERROR),
    (QPState.RTR, QPState.ERROR),
    (QPState.RTS, QPState.ERROR),
})


class IllegalTransition(RuntimeError):
    """A verbs-state transition that the RC state machine forbids."""


class QpError(Exception):
    """Raised inside a work-request execution when its QP errors out.

    The RNIC converts this into a *flushed* CQE (``ok=False,
    flushed=True``) so the polling engine can reclaim the buffer — the
    flush-to-CQE semantics of real RC QPs.
    """

    def __init__(self, qp: Optional["QueuePair"] = None, cause: str = "qp-error"):
        ident = (f"QP {qp.qp_id} {qp.local_node}->{qp.remote_node}"
                 if qp is not None else "QP")
        super().__init__(f"{ident}: {cause}")
        self.qp = qp
        self.cause = cause


class QueuePair:
    """One RC queue pair (one end of a reliable connection)."""

    def __init__(self, env: Environment, local_node: str, remote_node: str,
                 tenant: str):
        self.env = env
        self.qp_id = _next_qp_id(env)
        self.local_node = local_node
        self.remote_node = remote_node
        self.tenant = tenant
        self.state = QPState.INACTIVE
        #: verbs state; the control plane walks it RESET→INIT→RTR→RTS
        self.verbs_state = QPState.RESET
        #: every (from, to) edge this QP ever took, in order — the
        #: property tests assert each one is in LEGAL_TRANSITIONS
        self.transitions: List[Tuple[str, str]] = []
        #: WRs posted but not yet completed (drives shadow activation).
        self.pending_wrs = 0
        self.sends_posted = 0
        self.peer: Optional["QueuePair"] = None
        #: why the QP entered the ERROR state (fault telemetry)
        self.error_cause: str = ""
        #: wall-clock the control plane spent establishing this QP
        self.setup_us: float = 0.0

    @property
    def is_active(self) -> bool:
        return self.state == QPState.ACTIVE

    @property
    def is_errored(self) -> bool:
        return self.state == QPState.ERROR

    @property
    def is_rts(self) -> bool:
        return self.verbs_state == QPState.RTS

    def transition(self, new_state: str, cause: str = "") -> None:
        """Take one verbs-state edge; illegal edges raise.

        Transitions are bookkeeping only — the *time* each
        ``ibv_modify_qp`` round takes is charged by the control plane
        (:class:`repro.rdma.controlplane.RdmaControlPlane`).
        """
        edge = (self.verbs_state, new_state)
        if edge not in LEGAL_TRANSITIONS:
            raise IllegalTransition(
                f"QP {self.qp_id}: {self.verbs_state} -> {new_state}"
            )
        self.transitions.append(edge)
        self.verbs_state = new_state
        if new_state == QPState.ERROR and cause and not self.error_cause:
            self.error_cause = cause
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "qp_transitions_total", "Verbs state-machine edges taken.",
                labels=("node", "from", "to")).labels(
                    self.local_node, edge[0], new_state).inc()

    def fail(self, cause: str) -> None:
        """Move both state dimensions to ERROR (idempotent)."""
        if self.verbs_state != QPState.ERROR:
            self.transition(QPState.ERROR, cause)
        self.state = QPState.ERROR
        if not self.error_cause:
            self.error_cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QP {self.qp_id} {self.local_node}->{self.remote_node} "
            f"tenant={self.tenant} {self.verbs_state}/{self.state} "
            f"pending={self.pending_wrs}>"
        )


class ReceiveBufferRegistry:
    """The RBR table: WR id -> posted receive buffer (§3.5.2)."""

    def __init__(self):
        self._table: Dict[int, Buffer] = {}
        self.posted = 0
        self.consumed = 0

    def insert(self, wr_id: int, buffer: Buffer) -> None:
        if wr_id in self._table:
            raise KeyError(f"duplicate RBR entry for WR {wr_id}")
        self._table[wr_id] = buffer
        self.posted += 1

    def consume(self, wr_id: int) -> Buffer:
        try:
            buffer = self._table.pop(wr_id)
        except KeyError:
            raise KeyError(f"no RBR entry for WR {wr_id}") from None
        self.consumed += 1
        return buffer

    def __len__(self) -> int:
        return len(self._table)


class SharedReceiveQueue:
    """Per-tenant shared RQ on one node.

    The DNE posts receive buffers (from the tenant's pool) keyed by a
    fresh WR id; arriving SENDs consume them in FIFO order.  The
    ``consumed`` counter is what the DNE core thread monitors to
    replenish buffers (§3.5.2, red arrows in Fig. 7).
    """

    def __init__(self, env: Environment, node: str, tenant: str):
        self.env = env
        self.node = node
        self.tenant = tenant
        #: FIFO of (wr_id, buffer) available for arrivals
        self._queue: Store = Store(env, name=f"srq:{node}:{tenant}")
        self.rbr = ReceiveBufferRegistry()
        self._wr_seq = itertools.count(1)
        #: completions consumed since last replenish check
        self.consumed_since_replenish = 0
        #: arrivals that found the RQ empty (RNR back-pressure events)
        self.rnr_stalls = 0

    def post(self, buffer: Buffer, owner: str) -> int:
        """Post one receive buffer; ownership moves to the RNIC."""
        buffer.check_owner(owner)
        wr_id = next(self._wr_seq)
        buffer.owner = f"rnic:{self.node}"
        buffer.state = BufferState.POSTED
        self.rbr.insert(wr_id, buffer)
        self._queue.put_nowait((wr_id, buffer))
        return wr_id

    def take(self):
        """Event yielding the next ``(wr_id, buffer)``; blocks if empty.

        An empty shared RQ corresponds to an RNR condition on real
        hardware — the sender stalls until the receiver replenishes.
        """
        if not self._queue.items:
            self.rnr_stalls += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.metrics.counter(
                    "srq_rnr_stalls_total", "Senders that found an empty "
                    "shared RQ (RNR condition).",
                    labels=("node", "tenant")).labels(
                        self.node, self.tenant).inc()
        return self._queue.get()

    @property
    def depth(self) -> int:
        return len(self._queue.items)

    def fail_pending(self, exc: BaseException) -> int:
        """Abort senders blocked on this RQ (receiver died mid-RNR)."""
        return self._queue.fail_getters(exc)
