"""Queue pairs, shared receive queues, and the receive-buffer registry.

Palladium's QP layout (§3.3, §3.5.2):

* RC QPs give dedicated point-to-point reliable connections between
  peer nodes; a tenant may own several (proxied by the DNE).
* All of a tenant's RCQPs on a node share a **single receive queue**
  posted exclusively with buffers from that tenant's pool, so the RNIC
  always lands incoming data in the right pool.
* All RCQPs on a node share one **completion queue**.
* The **receive buffer registry (RBR)** maps posted WRs to their
  buffers so the RX stage can recover the buffer from a CQE.
* QPs are *active* while they have WRs queued, otherwise *inactive*;
  inactive QPs consume no RNIC resources (shadow-QP scheme of RoGUE).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..memory import Buffer, BufferState
from ..sim import Environment, Store

__all__ = ["QueuePair", "QPState", "QpError", "SharedReceiveQueue",
           "ReceiveBufferRegistry"]

_qp_ids = itertools.count(1)


class QPState:
    ACTIVE = "active"
    INACTIVE = "inactive"
    #: terminal error state: posted WRs flush to failed CQEs and the QP
    #: can never carry work again (it must be evicted and replaced).
    ERROR = "error"


class QpError(Exception):
    """Raised inside a work-request execution when its QP errors out.

    The RNIC converts this into a *flushed* CQE (``ok=False,
    flushed=True``) so the polling engine can reclaim the buffer — the
    flush-to-CQE semantics of real RC QPs.
    """

    def __init__(self, qp: Optional["QueuePair"] = None, cause: str = "qp-error"):
        ident = (f"QP {qp.qp_id} {qp.local_node}->{qp.remote_node}"
                 if qp is not None else "QP")
        super().__init__(f"{ident}: {cause}")
        self.qp = qp
        self.cause = cause


class QueuePair:
    """One RC queue pair (one end of a reliable connection)."""

    def __init__(self, local_node: str, remote_node: str, tenant: str):
        self.qp_id = next(_qp_ids)
        self.local_node = local_node
        self.remote_node = remote_node
        self.tenant = tenant
        self.state = QPState.INACTIVE
        #: WRs posted but not yet completed (drives shadow activation).
        self.pending_wrs = 0
        self.sends_posted = 0
        self.peer: Optional["QueuePair"] = None
        #: why the QP entered the ERROR state (fault telemetry)
        self.error_cause: str = ""

    @property
    def is_active(self) -> bool:
        return self.state == QPState.ACTIVE

    @property
    def is_errored(self) -> bool:
        return self.state == QPState.ERROR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QP {self.qp_id} {self.local_node}->{self.remote_node} "
            f"tenant={self.tenant} {self.state} pending={self.pending_wrs}>"
        )


class ReceiveBufferRegistry:
    """The RBR table: WR id -> posted receive buffer (§3.5.2)."""

    def __init__(self):
        self._table: Dict[int, Buffer] = {}
        self.posted = 0
        self.consumed = 0

    def insert(self, wr_id: int, buffer: Buffer) -> None:
        if wr_id in self._table:
            raise KeyError(f"duplicate RBR entry for WR {wr_id}")
        self._table[wr_id] = buffer
        self.posted += 1

    def consume(self, wr_id: int) -> Buffer:
        try:
            buffer = self._table.pop(wr_id)
        except KeyError:
            raise KeyError(f"no RBR entry for WR {wr_id}") from None
        self.consumed += 1
        return buffer

    def __len__(self) -> int:
        return len(self._table)


class SharedReceiveQueue:
    """Per-tenant shared RQ on one node.

    The DNE posts receive buffers (from the tenant's pool) keyed by a
    fresh WR id; arriving SENDs consume them in FIFO order.  The
    ``consumed`` counter is what the DNE core thread monitors to
    replenish buffers (§3.5.2, red arrows in Fig. 7).
    """

    def __init__(self, env: Environment, node: str, tenant: str):
        self.env = env
        self.node = node
        self.tenant = tenant
        #: FIFO of (wr_id, buffer) available for arrivals
        self._queue: Store = Store(env, name=f"srq:{node}:{tenant}")
        self.rbr = ReceiveBufferRegistry()
        self._wr_seq = itertools.count(1)
        #: completions consumed since last replenish check
        self.consumed_since_replenish = 0
        #: arrivals that found the RQ empty (RNR back-pressure events)
        self.rnr_stalls = 0

    def post(self, buffer: Buffer, owner: str) -> int:
        """Post one receive buffer; ownership moves to the RNIC."""
        buffer.check_owner(owner)
        wr_id = next(self._wr_seq)
        buffer.owner = f"rnic:{self.node}"
        buffer.state = BufferState.POSTED
        self.rbr.insert(wr_id, buffer)
        self._queue.put_nowait((wr_id, buffer))
        return wr_id

    def take(self):
        """Event yielding the next ``(wr_id, buffer)``; blocks if empty.

        An empty shared RQ corresponds to an RNR condition on real
        hardware — the sender stalls until the receiver replenishes.
        """
        if not self._queue.items:
            self.rnr_stalls += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.metrics.counter(
                    "srq_rnr_stalls_total", "Senders that found an empty "
                    "shared RQ (RNR condition).",
                    labels=("node", "tenant")).labels(
                        self.node, self.tenant).inc()
        return self._queue.get()

    @property
    def depth(self) -> int:
        return len(self._queue.items)

    def fail_pending(self, exc: BaseException) -> int:
        """Abort senders blocked on this RQ (receiver died mid-RNR)."""
        return self._queue.fail_getters(exc)
