"""Distributed synchronization for the one-sided baselines (§2.1, Fig. 2).

The paper's OWDL baseline coordinates one-sided writes with either a
distributed lock or MPI-style rendezvous.  Both are implemented here so
Fig. 12 can benchmark them against two-sided RDMA:

* :class:`DistributedLock` — spin on a remote 8-byte word with RDMA
  CAS; release with a CAS back to 0.  Each acquire attempt costs a full
  fabric round trip, which is exactly why OWDL loses.
* :class:`Rendezvous` — the receiver announces a ready buffer, the
  sender waits for that announcement before writing (RDMA-read-based
  rendezvous of Sur et al.), costing an extra control round trip.
"""

from __future__ import annotations

import itertools
from typing import Dict

from ..config import CostModel
from ..sim import Environment, FilterStore

from .fabric import RdmaFabric
from .qp import QueuePair
from .rnic import AtomicWord
from .verbs import Opcode, WorkRequest

__all__ = ["DistributedLock", "Rendezvous", "LockStats"]


class LockStats:
    """Counters describing distributed-lock behaviour."""

    def __init__(self):
        self.acquires = 0
        self.cas_attempts = 0
        self.contended_retries = 0


class DistributedLock:
    """A CAS-based spin lock on a remote lock word."""

    _ids = itertools.count(1)

    def __init__(
        self,
        env: Environment,
        fabric: RdmaFabric,
        home_node: str,
        cost: CostModel,
        name: str = "",
    ):
        self.env = env
        self.fabric = fabric
        self.cost = cost
        self.word = AtomicWord(home_node, 0, name or f"dlock{next(self._ids)}")
        self.stats = LockStats()

    def _cas(self, qp: QueuePair, holder_id: int, compare: int, swap: int):
        """Generator: one CAS round trip, returns the old value."""
        rnic = self.fabric.rnic(qp.local_node)
        wr = WorkRequest(opcode=Opcode.CAS, compare=compare, swap=swap,
                         signaled=False, word=self.word)
        completion = yield from rnic.execute(qp, wr)
        self.stats.cas_attempts += 1
        return completion.old_value

    def acquire(self, qp: QueuePair, holder_id: int):
        """Generator: spin until the lock word is ours."""
        backoff = self.cost.dist_lock_overhead_us
        while True:
            old = yield from self._cas(qp, holder_id, 0, holder_id)
            if old == 0:
                self.stats.acquires += 1
                # protocol bookkeeping beyond the raw CAS round trips
                yield self.env.timeout(self.cost.dist_lock_overhead_us)
                return
            self.stats.contended_retries += 1
            yield self.env.timeout(backoff)
            backoff = min(backoff * 2, 64.0)

    def release(self, qp: QueuePair, holder_id: int):
        """Generator: CAS the word back to free."""
        old = yield from self._cas(qp, holder_id, holder_id, 0)
        if old != holder_id:
            raise RuntimeError(
                f"lock {self.word.name} released by non-holder {holder_id} (word={old})"
            )


class Rendezvous:
    """Receiver-announced buffer readiness for one-sided transfers.

    The receiver calls :meth:`announce` when a buffer is safe to write;
    the sender's :meth:`await_ready` blocks until an announcement for
    its flow arrives (carried over the fabric as a small control
    message, one extra one-way latency).
    """

    def __init__(self, env: Environment, fabric: RdmaFabric, cost: CostModel):
        self.env = env
        self.fabric = fabric
        self.cost = cost
        self._ready: Dict[str, FilterStore] = {}

    def _store(self, node: str) -> FilterStore:
        if node not in self._ready:
            self._ready[node] = FilterStore(self.env, name=f"rendezvous:{node}")
        return self._ready[node]

    def announce(self, sender_node: str, receiver_node: str, flow: str, buffer):
        """Generator: receiver tells the sender ``buffer`` is writable."""
        link = self.fabric.link(receiver_node, sender_node)
        yield from link.transmit(32)
        self._store(sender_node).put({"flow": flow, "buffer": buffer})

    def await_ready(self, sender_node: str, flow: str):
        """Generator: sender waits for a writable remote buffer."""
        item = yield self._store(sender_node).get(lambda m: m["flow"] == flow)
        return item["buffer"]
