"""RC connection management with pooling and shadow QPs (§3.3).

Establishing an RC connection costs tens of milliseconds, so the DNE
keeps a pool of pre-established connections per (remote node, scope)
and only *activates* them when they carry work.  Inactive (shadow) QPs
consume no RNIC resources; the node-wide count of active QPs is what
the RNIC's thrash model watches.  Activation needs no cross-node state
synchronization (RoGUE's scheme), only a small local cost.

All simulated *time* for establishment and MR registration is charged
by the node's :class:`~repro.rdma.controlplane.RdmaControlPlane` — the
manager here owns pooling, sharing scope, pre-warm policy, and fault
recovery, never the raw costs.  Pool scope is the tenant by default
(every function of a tenant multiplexes the same QPs through the DNE
proxy); ``share_scope="function"`` in the control-plane config gives
each function a private pool instead, the cold-start baseline the
connection-churn experiment measures against.

Failure handling: a QP that errors out (peer crash, injected QP error)
is *terminal* — it is evicted from the pool on the next touch and never
handed to a caller again.  Re-establishment happens off the critical
path via :meth:`schedule_reconnect`, which retries with capped
exponential backoff under an optional per-tenant retry budget.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import CostModel
from ..sim import Environment

from .controlplane import (
    ControlPlaneConfig,
    PrewarmPolicy,
    make_prewarm_policy,
)
from .fabric import RdmaFabric
from .qp import QPState, QueuePair

__all__ = ["ConnectionManager"]

#: cold-connect timestamps kept per pool for the predictive policy
_DEMAND_HISTORY = 64


class ConnectionManager:
    """Per-node manager of the pooled RC connections (lives in the DNE)."""

    def __init__(
        self,
        env: Environment,
        fabric: RdmaFabric,
        node: str,
        cost: CostModel,
        conns_per_peer: int = 4,
        tenant_active_quota: Optional[int] = None,
        reconnect_base_us: float = 1_000.0,
        reconnect_cap_us: float = 64_000.0,
        tenant_retry_budget: Optional[int] = None,
        config: Optional[ControlPlaneConfig] = None,
        prewarm: Optional[PrewarmPolicy] = None,
    ):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.cost = cost
        #: the node-global control plane charging all setup costs
        self.cp = fabric.control_plane(node, config)
        self.config = self.cp.config
        #: pluggable shadow-pool pre-warm policy; the default "none"
        #: policy keeps the maintenance loop entirely inert
        self.prewarm = prewarm or make_prewarm_policy(self.config)
        self.conns_per_peer = conns_per_peer
        #: maximum *active* QPs a single tenant may hold node-wide.
        #: The DNE's answer to the rogue tenant of §2.1 that "could
        #: occupy a set of QPs for a long time, starving other tenants":
        #: past the quota, the tenant multiplexes its existing active
        #: QPs instead of activating more.
        self.tenant_active_quota = tenant_active_quota
        #: liveness oracle for handshake targets; the platform wires
        #: this to the remote node runtime's ``alive`` flag.  A
        #: handshake toward a dead peer still pays the full RC setup
        #: time (the timeout) but yields an errored QP.
        self.peer_alive: Callable[[str], bool] = lambda remote: True
        self.reconnect_base_us = reconnect_base_us
        self.reconnect_cap_us = reconnect_cap_us
        #: per-tenant cap on reconnect attempts (None = unlimited).
        self.tenant_retry_budget = tenant_retry_budget
        self.reconnect_attempts: Dict[str, int] = {}
        self._reconnecting: set = set()
        #: backoff delays actually slept per (peer, tenant) reconnect
        #: loop, in order — the cap-saturation tests read this
        self.backoff_delays: Dict[Tuple[str, str], List[float]] = {}
        self._pool: Dict[Tuple[str, str], List[QueuePair]] = {}
        #: cold-connect timestamps per pool key (predictive pre-warm)
        self._demand: Dict[Tuple[str, str], List[float]] = {}
        self.connections_established = 0
        self.setup_time_spent = 0.0
        self.quota_denials = 0
        self.connect_failures = 0
        self.evicted_qps = 0
        self.reconnects_scheduled = 0
        self.reconnects_succeeded = 0
        self.budget_exhausted = 0

    # -- sharing scope -----------------------------------------------------
    def _scope(self, tenant: str, fn: Optional[str] = None) -> str:
        """Pool-scope id: the tenant, or tenant/function when sharing
        is disabled (``share_scope="function"``)."""
        if fn is not None and self.config.share_scope == "function":
            return f"{tenant}/{fn}"
        return tenant

    @staticmethod
    def _scope_tenant(scope: str) -> str:
        return scope.split("/", 1)[0]

    def _establish(self, remote_node: str, tenant: str):
        """Generator: full RC handshake (tens of milliseconds, §3.3).

        Delegates all timing to the control plane; this layer only
        keeps the manager's ledgers.  Toward a dead peer the handshake
        burns the full setup time and returns a QP already in the
        ERROR state — posting on it flushes immediately, surfacing the
        failure to the caller.
        """
        local = yield from self.cp.connect(remote_node, tenant,
                                           self.peer_alive)
        self.setup_time_spent += local.setup_us
        tel = self.env.telemetry
        if local.is_errored:
            self.connect_failures += 1
            if tel is not None:
                tel.metrics.counter(
                    "rc_connects_total", "RC handshakes by outcome.",
                    labels=("node", "ok")).labels(self.node, "false").inc()
            return local
        self.connections_established += 1
        if tel is not None:
            tel.metrics.counter(
                "rc_connects_total", "RC handshakes by outcome.",
                labels=("node", "ok")).labels(self.node, "true").inc()
        return local

    def _prune(self, key: Tuple[str, str]) -> List[QueuePair]:
        """Evict errored QPs from one pool; returns the live remainder."""
        pool = self._pool.setdefault(key, [])
        if any(qp.is_errored for qp in pool):
            kept = [qp for qp in pool if not qp.is_errored]
            self.evicted_qps += len(pool) - len(kept)
            self._pool[key] = pool = kept
        return pool

    def _note_demand(self, key: Tuple[str, str]) -> None:
        history = self._demand.setdefault(key, [])
        history.append(self.env.now)
        if len(history) > _DEMAND_HISTORY:
            del history[:len(history) - _DEMAND_HISTORY]

    def warm_up(self, remote_node: str, tenant: str, count: int = 0,
                fn: Optional[str] = None):
        """Generator: pre-establish the connection pool to a peer.

        Palladium does this off the critical path so data transfers
        never pay the RC handshake.  The handshakes proceed in
        parallel (they are independent QPs).
        """
        key = (remote_node, self._scope(tenant, fn))
        pool = self._prune(key)
        target = count or self.conns_per_peer
        needed = target - len(pool)
        if needed <= 0:
            return list(pool)
        procs = [
            self.env.process(self._establish(remote_node, tenant),
                             name=f"rc-setup:{self.node}->{remote_node}")
            for _ in range(needed)
        ]
        done = yield self.env.all_of(procs)
        pool.extend(proc.value for proc in procs
                    if not proc.value.is_errored)
        return list(pool)

    def maintain_pools(self):
        """Generator: top pools up to the pre-warm policy's target.

        Called from the engine core thread's periodic loop.  With the
        default "none" policy the loop guards on ``prewarm.active``
        and never gets here; active policies re-establish shadow QPs
        ahead of demand, off the critical path.
        """
        if not self.prewarm.active:
            return 0
        warmed = 0
        keys = set(self._pool) | set(self._demand)
        for key in sorted(keys):
            remote_node, scope = key
            target = self.prewarm.target(
                self.env.now, len(self._pool.get(key, [])),
                self._demand.get(key, []))
            if target <= 0:
                continue
            pool = self._prune(key)
            if len(pool) >= target:
                continue
            tenant = self._scope_tenant(scope)
            if not self.peer_alive(remote_node):
                continue
            procs = [
                self.env.process(self._establish(remote_node, tenant),
                                 name=f"rc-prewarm:{self.node}->{remote_node}")
                for _ in range(target - len(pool))
            ]
            yield self.env.all_of(procs)
            fresh = [p.value for p in procs if not p.value.is_errored]
            pool.extend(fresh)
            warmed += len(fresh)
        return warmed

    def get_connection(self, remote_node: str, tenant: str,
                       fn: Optional[str] = None):
        """Generator: return the least-congested usable QP to a peer.

        Prefers active QPs (no activation cost); activates a shadow QP
        when all active ones are loaded; establishes a brand-new
        connection only when the pool is empty (cold start).  Errored
        QPs are evicted first and never handed out from the pool.
        """
        key = (remote_node, self._scope(tenant, fn))
        pool = self._prune(key)
        if not pool:
            self._note_demand(key)
            qp = yield from self._establish(remote_node, tenant)
            if qp.is_errored:
                # Cold connect toward a dead peer: hand the errored QP
                # to the caller (posting on it flushes) but keep the
                # pool clean for the next attempt.
                return qp
            pool.append(qp)
        active = [qp for qp in pool if qp.is_active]
        if active:
            best = min(active, key=lambda qp: qp.pending_wrs)
            # Activate another shadow QP when existing ones are congested.
            if best.pending_wrs > 8:
                if not self._within_quota(tenant):
                    self.quota_denials += 1
                    return best  # multiplex: no more active QPs for you
                inactive = [qp for qp in pool if not qp.is_active]
                if inactive:
                    best = inactive[0]
                    yield from self._activate(best)
            return best
        best = pool[0]
        yield from self._activate(best)
        return best

    def ensure_active(self, remote_node: str, tenant: str,
                      fn: Optional[str] = None):
        """Generator: guarantee one ACTIVE QP toward a peer; returns it.

        The live-migration restore path: a migrated instance's traffic
        must flow the moment routes flip, so the target node promotes a
        pooled shadow QP up front (activation only, no cross-node sync,
        §3.3).  Falls back to a full RC handshake only when the pool is
        empty — the cold-start cost migration exists to avoid.
        """
        key = (remote_node, self._scope(tenant, fn))
        pool = self._prune(key)
        for qp in pool:
            if qp.is_active:
                return qp
        if pool:
            qp = pool[0]
            yield from self._activate(qp)
            return qp
        self._note_demand(key)
        qp = yield from self._establish(remote_node, tenant)
        if qp.is_errored:
            return qp
        pool.append(qp)
        yield from self._activate(qp)
        return qp

    def tenant_active_count(self, tenant: str) -> int:
        """Active QPs this tenant holds across all peers (all scopes)."""
        return sum(
            1 for (peer, scope), pool in self._pool.items()
            if self._scope_tenant(scope) == tenant
            for qp in pool if qp.is_active
        )

    def _within_quota(self, tenant: str) -> bool:
        if self.tenant_active_quota is None:
            return True
        return self.tenant_active_count(tenant) < self.tenant_active_quota

    def _activate(self, qp: QueuePair):
        """Generator: promote a shadow QP to active (local-only, cheap).

        An errored QP is never resurrected — it is returned untouched
        so the poster observes the flush.
        """
        if qp.state == QPState.INACTIVE:
            yield self.env.timeout(self.cost.qp_activate_us)
            if qp.state == QPState.INACTIVE:  # may have errored meanwhile
                qp.state = QPState.ACTIVE
                self.fabric.rnic(self.node).active_qps += 1
                tel = self.env.telemetry
                if tel is not None:
                    tel.metrics.counter(
                        "qp_activations_total", "Shadow QPs promoted to "
                        "active.", labels=("node",)).labels(self.node).inc()
        return qp

    def deactivate_idle(self) -> int:
        """Demote QPs with no pending work back to shadow state.

        Called periodically by the DNE core thread; returns the number
        of QPs deactivated.  Errored QPs are evicted as a side effect
        so the shadow pool never retains fault-torn connections.
        """
        demoted = 0
        rnic = self.fabric.rnic(self.node)
        for key in list(self._pool):
            for qp in self._prune(key):
                if qp.is_active and qp.pending_wrs == 0:
                    qp.state = QPState.INACTIVE
                    rnic.active_qps -= 1
                    demoted += 1
        return demoted

    # -- fault injection & recovery ---------------------------------------------
    def _fail_qp(self, qp: QueuePair, cause: str) -> None:
        self.fabric.rnic(qp.local_node).flush_qp(qp, cause)
        if qp.peer is not None:
            self.fabric.rnic(qp.remote_node).flush_qp(qp.peer, cause)

    def fail_connections(
        self,
        remote: Optional[str] = None,
        tenant: Optional[str] = None,
        count: Optional[int] = None,
        cause: str = "qp-error",
    ) -> int:
        """Force QPs into the ERROR state (both ends); returns the count.

        ``remote``/``tenant`` filter which pools are hit; ``count``
        bounds how many QPs error out (None = all matching).
        """
        failed = 0
        for (peer, scope), pool in self._pool.items():
            if remote is not None and peer != remote:
                continue
            if tenant is not None and self._scope_tenant(scope) != tenant:
                continue
            for qp in pool:
                if qp.is_errored:
                    continue
                if count is not None and failed >= count:
                    return failed
                self._fail_qp(qp, cause)
                failed += 1
        return failed

    def fail_peer(self, remote_node: str, cause: str = "peer-died") -> int:
        """Error every pooled QP toward one (crashed) peer node."""
        return self.fail_connections(remote=remote_node, cause=cause)

    def fail_all(self, cause: str = "engine-crash") -> int:
        """Error every pooled QP (local engine crash tears all state)."""
        return self.fail_connections(cause=cause)

    def evict_errored(self) -> int:
        """Drop all errored QPs from every pool; returns the count."""
        before = self.evicted_qps
        for key in list(self._pool):
            self._prune(key)
        return self.evicted_qps - before

    def schedule_reconnect(self, remote_node: str, tenant: str):
        """Start (at most one) background reconnect toward a peer.

        Returns the reconnect :class:`Process`, or None when one is
        already running for this (peer, tenant) or the tenant's retry
        budget is spent.
        """
        key = (remote_node, tenant)
        if key in self._reconnecting:
            return None
        if self._budget_spent(tenant):
            return None
        self._reconnecting.add(key)
        self.reconnects_scheduled += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "rc_reconnects_scheduled_total", "Background reconnect "
                "loops started.", labels=("node",)).labels(self.node).inc()
        return self.env.process(
            self._reconnect(remote_node, tenant),
            name=f"rc-reconnect:{self.node}->{remote_node}",
        )

    def _budget_spent(self, tenant: str) -> bool:
        if self.tenant_retry_budget is None:
            return False
        if self.reconnect_attempts.get(tenant, 0) >= self.tenant_retry_budget:
            self.budget_exhausted += 1
            return True
        return False

    def _reconnect(self, remote_node: str, tenant: str):
        """Generator: capped-exponential-backoff reconnect loop."""
        key = (remote_node, tenant)
        delay = self.reconnect_base_us
        history = self.backoff_delays.setdefault(key, [])
        try:
            while True:
                history.append(delay)
                yield self.env.timeout(delay)
                if self._budget_spent(tenant):
                    return False
                self.reconnect_attempts[tenant] = (
                    self.reconnect_attempts.get(tenant, 0) + 1
                )
                if self.peer_alive(remote_node):
                    pool = yield from self.warm_up(remote_node, tenant, count=1)
                    if pool:
                        self.reconnects_succeeded += 1
                        return True
                delay = min(delay * 2.0, self.reconnect_cap_us)
        finally:
            self._reconnecting.discard(key)

    def active_count(self) -> int:
        return sum(
            1 for pool in self._pool.values() for qp in pool if qp.is_active
        )

    def pooled_count(self) -> int:
        return sum(len(pool) for pool in self._pool.values())
