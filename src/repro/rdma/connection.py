"""RC connection management with pooling and shadow QPs (§3.3).

Establishing an RC connection costs tens of milliseconds, so the DNE
keeps a pool of pre-established connections per (remote node, tenant)
and only *activates* them when they carry work.  Inactive (shadow) QPs
consume no RNIC resources; the node-wide count of active QPs is what
the RNIC's thrash model watches.  Activation needs no cross-node state
synchronization (RoGUE's scheme), only a small local cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CostModel
from ..sim import Environment

from .fabric import RdmaFabric
from .qp import QPState, QueuePair

__all__ = ["ConnectionManager"]


class ConnectionManager:
    """Per-node manager of the pooled RC connections (lives in the DNE)."""

    def __init__(
        self,
        env: Environment,
        fabric: RdmaFabric,
        node: str,
        cost: CostModel,
        conns_per_peer: int = 4,
        tenant_active_quota: Optional[int] = None,
    ):
        self.env = env
        self.fabric = fabric
        self.node = node
        self.cost = cost
        self.conns_per_peer = conns_per_peer
        #: maximum *active* QPs a single tenant may hold node-wide.
        #: The DNE's answer to the rogue tenant of §2.1 that "could
        #: occupy a set of QPs for a long time, starving other tenants":
        #: past the quota, the tenant multiplexes its existing active
        #: QPs instead of activating more.
        self.tenant_active_quota = tenant_active_quota
        self._pool: Dict[Tuple[str, str], List[QueuePair]] = {}
        self.connections_established = 0
        self.setup_time_spent = 0.0
        self.quota_denials = 0

    def _establish(self, remote_node: str, tenant: str):
        """Generator: full RC handshake (tens of milliseconds, §3.3)."""
        yield self.env.timeout(self.cost.rc_setup_us)
        local = QueuePair(self.node, remote_node, tenant)
        peer = QueuePair(remote_node, self.node, tenant)
        local.peer, peer.peer = peer, local
        self.connections_established += 1
        self.setup_time_spent += self.cost.rc_setup_us
        return local

    def warm_up(self, remote_node: str, tenant: str, count: int = 0):
        """Generator: pre-establish the connection pool to a peer.

        Palladium does this off the critical path so data transfers
        never pay the RC handshake.  The handshakes proceed in
        parallel (they are independent QPs).
        """
        key = (remote_node, tenant)
        pool = self._pool.setdefault(key, [])
        target = count or self.conns_per_peer
        needed = target - len(pool)
        if needed <= 0:
            return list(pool)
        procs = [
            self.env.process(self._establish(remote_node, tenant),
                             name=f"rc-setup:{self.node}->{remote_node}")
            for _ in range(needed)
        ]
        done = yield self.env.all_of(procs)
        pool.extend(proc.value for proc in procs)
        return list(pool)

    def get_connection(self, remote_node: str, tenant: str):
        """Generator: return the least-congested usable QP to a peer.

        Prefers active QPs (no activation cost); activates a shadow QP
        when all active ones are loaded; establishes a brand-new
        connection only when the pool is empty (cold start).
        """
        key = (remote_node, tenant)
        pool = self._pool.setdefault(key, [])
        if not pool:
            qp = yield from self._establish(remote_node, tenant)
            pool.append(qp)
        active = [qp for qp in pool if qp.is_active]
        if active:
            best = min(active, key=lambda qp: qp.pending_wrs)
            # Activate another shadow QP when existing ones are congested.
            if best.pending_wrs > 8:
                if not self._within_quota(tenant):
                    self.quota_denials += 1
                    return best  # multiplex: no more active QPs for you
                inactive = [qp for qp in pool if not qp.is_active]
                if inactive:
                    best = inactive[0]
                    yield from self._activate(best)
            return best
        best = pool[0]
        yield from self._activate(best)
        return best

    def tenant_active_count(self, tenant: str) -> int:
        """Active QPs this tenant holds across all peers."""
        return sum(
            1 for (peer, t), pool in self._pool.items() if t == tenant
            for qp in pool if qp.is_active
        )

    def _within_quota(self, tenant: str) -> bool:
        if self.tenant_active_quota is None:
            return True
        return self.tenant_active_count(tenant) < self.tenant_active_quota

    def _activate(self, qp: QueuePair):
        """Generator: promote a shadow QP to active (local-only, cheap)."""
        if qp.state != QPState.ACTIVE:
            yield self.env.timeout(self.cost.qp_activate_us)
            qp.state = QPState.ACTIVE
            self.fabric.rnic(self.node).active_qps += 1
        return qp

    def deactivate_idle(self) -> int:
        """Demote QPs with no pending work back to shadow state.

        Called periodically by the DNE core thread; returns the number
        of QPs deactivated.
        """
        demoted = 0
        rnic = self.fabric.rnic(self.node)
        for pool in self._pool.values():
            for qp in pool:
                if qp.is_active and qp.pending_wrs == 0:
                    qp.state = QPState.INACTIVE
                    rnic.active_qps -= 1
                    demoted += 1
        return demoted

    def active_count(self) -> int:
        return sum(
            1 for pool in self._pool.values() for qp in pool if qp.is_active
        )

    def pooled_count(self) -> int:
        return sum(len(pool) for pool in self._pool.values())
