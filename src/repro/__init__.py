"""Palladium reproduction: a DPU-enabled multi-tenant serverless data plane
over a simulated zero-copy multi-node RDMA fabric.

Reproduces Qi et al., *Palladium* (SIGCOMM 2025) as a discrete-event
simulation calibrated against the paper's microbenchmarks.  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.

Quick start::

    from repro import Environment, ServerlessPlatform, Tenant, FunctionSpec

    env = Environment()
    plat = ServerlessPlatform(env)           # Palladium DNE data plane
    plat.add_tenant(Tenant("demo"))
    plat.deploy(FunctionSpec("server", "demo"), "worker1")
    plat.deploy(FunctionSpec("client", "demo"), "worker0")
    plat.start()
"""

from .config import (
    DEFAULT_COST_MODEL,
    MSEC,
    SEC,
    USEC,
    ClusterSpec,
    CostModel,
    NodeSpec,
    cost_model_overrides,
)
from .platform import (
    ChainSpec,
    FunctionContext,
    FunctionInstance,
    FunctionSpec,
    Message,
    ServerlessPlatform,
    Tenant,
)
from .sim import Environment

__version__ = "1.0.0"

__all__ = [
    "ChainSpec",
    "ClusterSpec",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Environment",
    "FunctionContext",
    "FunctionInstance",
    "FunctionSpec",
    "MSEC",
    "Message",
    "NodeSpec",
    "SEC",
    "ServerlessPlatform",
    "Tenant",
    "USEC",
    "cost_model_overrides",
    "__version__",
]
