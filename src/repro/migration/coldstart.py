"""Kill-and-cold-start: the baseline live migration competes against.

Instead of checkpointing the warm instance, tear it down and pay a
full container cold start on the target node — image pull + runtime
boot (``cost.cold_start_us``) and, implicitly, fresh RC connection
setup by the target engine when traffic resumes.  Requests in flight
at the old instance are simply lost (the platform's retry story, if
any, is the client's problem) — exactly the availability gap the
migration tentpole closes.
"""

from __future__ import annotations

__all__ = ["kill_and_cold_start"]


def kill_and_cold_start(platform, fn_id: str, dst_node: str):
    """Generator: relocate ``fn_id`` by killing it and cold-starting.

    Returns the replacement :class:`FunctionInstance`.  Downtime as
    seen by callers is the cold start plus however long the first
    request takes to find the re-published route.
    """
    env = platform.env
    instance = platform.functions.pop(fn_id)
    src_node = platform.coordinator.node_of(fn_id)
    platform.coordinator.function_terminated(fn_id)
    platform.runtimes[src_node].unregister_endpoint(fn_id)
    instance.crash()
    if env.telemetry is not None:
        env.telemetry.metrics.counter(
            "cold_relocations_total", "Kill-and-cold-start relocations.",
            labels=("fn",)).labels(fn_id).inc()
    yield env.timeout(platform.cost.cold_start_us)
    replacement = platform.deploy(instance.spec, dst_node)
    return replacement
