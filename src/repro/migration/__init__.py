"""Live function migration: checkpoint/restore + connection handover.

Opt-in subsystem — importing it costs nothing, and no migration state
exists until :meth:`ServerlessPlatform.migrate_function` (or a node
drain) is invoked, so un-migrated runs stay byte-identical.
"""

from .migrator import DEFAULT_STATE_BYTES, LiveMigrator, MigrationRecord
from .coldstart import kill_and_cold_start

__all__ = [
    "DEFAULT_STATE_BYTES",
    "LiveMigrator",
    "MigrationRecord",
    "kill_and_cold_start",
]
