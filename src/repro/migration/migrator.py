"""Live migration of a warm function instance (checkpoint/restore).

The CRIU-behind-a-reroutable-load-balancer pattern, rebuilt on
Palladium's control plane: freeze the instance, checkpoint its state
(plus every request parked in its queues) into an image, ship the
image over the RDMA fabric, restore on the target node — re-register
the staging memory region with the target RNIC (MTT cost included) and
promote pooled shadow QPs so traffic can flow immediately — then flip
routes atomically through the :class:`~repro.platform.Coordinator` and
thaw.  Swift (arXiv 2501.19051) observes that QP setup and MR
registration dominate RDMA elasticity events; reusing the shadow pool
and paying only registration keeps the blackout in the low
milliseconds, far under a container cold start.

Message accounting uses the dataplane's single-owner protocol
throughout: the migrator *takes ownership* of every drained message
(``transfer``), carries its payload in the checkpoint image, and hands
ownership back on redelivery — any slip (loss, double-retire) raises
``OwnershipViolation``.  Stragglers that arrive at the old node after
the flip land in a forwarder endpoint bound under the function's id
and are redirected to the new node with full copy + wire cost.

The subsystem is strictly opt-in: nothing here runs unless a migration
is requested, so platforms that never migrate are byte-for-byte
identical to the pre-migration simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..memory import BufferDescriptor
from ..sim import AnyOf, Store

__all__ = ["LiveMigrator", "MigrationRecord", "DEFAULT_STATE_BYTES"]

#: default checkpoint image size: a small warm runtime (64 KB of live
#: heap/registers; experiments sweep this up to tens of MB)
DEFAULT_STATE_BYTES = 64 * 1024


@dataclass
class MigrationRecord:
    """What one migration attempt did (returned by ``migrate``)."""

    fn_id: str
    src: str
    dst: str
    state_bytes: int
    ok: bool = False
    reason: str = ""
    #: freeze instant and thaw instant; their gap is the blackout
    t_freeze_us: float = 0.0
    t_thaw_us: float = 0.0
    downtime_us: float = 0.0
    #: checkpoint image + parked payloads + framing, over the fabric
    bytes_copied: int = 0
    #: messages carried in the checkpoint image (drained pre-copy)
    messages_checkpointed: int = 0
    #: total messages redirected to the new node: checkpointed cargo,
    #: blackout arrivals, and post-flip stragglers (forwarder keeps
    #: incrementing this after the record is returned)
    messages_redirected: int = 0
    #: MTT entries registered for the staging region on the target
    mtt_entries: int = 0
    #: shadow QPs promoted to ACTIVE during restore
    qps_activated: int = 0


class LiveMigrator:
    """Performs live migrations on one :class:`ServerlessPlatform`.

    Duck-typed against the platform (functions, runtimes, engines,
    coordinator, cluster, cost, ``make_iolib``) so the package has no
    import cycle with :mod:`repro.platform`.
    """

    def __init__(self, platform):
        self.platform = platform
        self.env = platform.env
        self.records: List[MigrationRecord] = []
        self.migrations = 0
        self.aborts = 0
        self.bytes_copied = 0
        self.messages_redirected = 0

    # -- the tentpole --------------------------------------------------------
    def migrate(self, fn_id: str, dst_node: str,
                state_bytes: int = DEFAULT_STATE_BYTES,
                quiesce_timeout_us: Optional[float] = None):
        """Generator: live-migrate ``fn_id`` to ``dst_node``.

        Phases: freeze+quiesce -> checkpoint -> copy -> restore ->
        flip+thaw.  With ``quiesce_timeout_us`` the freeze is abandoned
        (instance thawed in place, parked requests re-queued) when the
        instance cannot quiesce in time — the drain-deadline fallback.
        Returns a :class:`MigrationRecord`.
        """
        plat = self.platform
        env = self.env
        instance = plat.functions[fn_id]
        src_node = plat.coordinator.node_of(fn_id)
        if src_node == dst_node:
            raise ValueError(f"{fn_id!r} is already on {dst_node!r}")
        src_runtime = plat.runtimes[src_node]
        dst_runtime = plat.runtimes[dst_node]
        if not dst_runtime.alive:
            raise RuntimeError(f"migration target {dst_node!r} is down")
        tenant = instance.spec.tenant
        agent = f"migrator:{fn_id}"
        cost = plat.cost
        record = MigrationRecord(fn_id=fn_id, src=src_node, dst=dst_node,
                                 state_bytes=state_bytes)
        self.records.append(record)
        tel = env.telemetry
        root = None
        if tel is not None:
            root = tel.tracer.start_span(
                "migrate", category="migration", node=src_node,
                actor=fn_id, dst=dst_node, state_bytes=state_bytes)

        # -- phase 1: freeze + quiesce ----------------------------------
        instance.freeze()
        record.t_freeze_us = env.now
        quiesce = env.process(instance.wait_quiesced(),
                              name=f"quiesce:{fn_id}")
        if quiesce_timeout_us is None:
            yield quiesce
        else:
            deadline = env.timeout(quiesce_timeout_us)
            yield AnyOf(env, [quiesce, deadline])
            if not quiesce.triggered:
                # Could not drain in-flight handlers in time: abort in
                # place; the caller falls back to crash semantics.
                instance.thaw(requeue=True)
                yield quiesce
                self.aborts += 1
                record.reason = "quiesce-timeout"
                self._finish(tel, root, record, status="abort")
                return record

        # -- phase 2: checkpoint ----------------------------------------
        span = self._child(tel, root, "migrate.checkpoint", src_node, fn_id)
        cargo: List[Tuple[Any, Any, int]] = []
        cargo_bytes = 0
        for descriptor in instance.drain_queued():
            message = descriptor.message
            buffer = descriptor.buffer
            message.transfer(instance.agent, agent)
            buffer.transfer(instance.agent, agent)
            payload = buffer.read(agent)
            buffer.pool.put(buffer, agent)
            cargo.append((message, payload, descriptor.length))
            cargo_bytes += descriptor.length
        record.messages_checkpointed = len(cargo)
        # CRIU-style dump: page walk + packing the parked payloads ...
        yield from src_runtime.node.cpu.execute(
            cost.checkpoint_base_us + cost.copy_time(cargo_bytes))
        # ... then the image itself moves through the SoC DMA engine.
        if src_runtime.node.soc_dma is not None:
            yield from src_runtime.node.soc_dma.transfer(state_bytes)
        else:
            yield from src_runtime.node.cpu.execute(
                cost.copy_time(state_bytes, cached=False))
        self._end(tel, span)

        # -- phase 3: copy over the fabric ------------------------------
        span = self._child(tel, root, "migrate.copy", src_node, fn_id)
        image_bytes = state_bytes + cargo_bytes + cost.migration_frame_bytes
        link = plat.cluster.fabric_link(src_node, dst_node)
        yield from link.transmit(image_bytes)
        record.bytes_copied = image_bytes
        self.bytes_copied += image_bytes
        self._end(tel, span)

        # -- phase 4: restore on the target -----------------------------
        span = self._child(tel, root, "migrate.restore", dst_node, fn_id)
        yield from dst_runtime.node.cpu.execute(cost.restore_base_us)
        if dst_runtime.node.soc_dma is not None:
            yield from dst_runtime.node.soc_dma.transfer(state_bytes)
        dst_engine = dst_runtime.engine
        if dst_engine is not None:
            # Re-register the staging image with the target RNIC via
            # the node's control plane: the MTT entry count (hugepage-
            # backed) drives the cost, the charge lands on the target
            # host CPU, and the entries count toward the MTT cache
            # like any pool's.
            cp = plat.fabric.control_plane(dst_node)
            region = yield from cp.register_region(
                tenant, state_bytes, cpu=dst_runtime.node.cpu,
                hugepage_bytes=dst_runtime.node.spec.hugepage_bytes)
            record.mtt_entries = region.mtt_entries
            # Promote pooled shadow QPs toward every live peer so the
            # instance's traffic flows the moment routes flip (§3.3:
            # activation is local and cheap; the pool spares us the RC
            # handshake a cold start would pay).
            before = dst_engine.conn_mgr.active_count()
            for peer_name in sorted(plat.engines):
                if peer_name == dst_node:
                    continue
                if not plat.runtimes[peer_name].alive:
                    continue
                yield from dst_engine.conn_mgr.ensure_active(peer_name, tenant)
            if "ingress" in plat.fabric.nodes:
                yield from dst_engine.conn_mgr.ensure_active("ingress", tenant)
            record.qps_activated = dst_engine.conn_mgr.active_count() - before
            # The image is materialized into the tenant pool's arena
            # once the instance resumes; release the staging region so
            # repeated migrations do not accrete MTT state.
            cp.deregister_region(region)
        self._end(tel, span)

        # -- phase 5: the flip (atomic — no simulated time passes) ------
        span = self._child(tel, root, "migrate.flip", dst_node, fn_id)
        # Final drain: requests that arrived during the blackout.
        stragglers = instance.drain_queued()
        # The forwarder store takes over the old node's endpoint
        # bindings under the function's id, so deliveries already past
        # their route lookup are captured, not dropped.
        fwd_store = Store(env, name=f"fwd:{fn_id}@{src_node}")
        src_runtime.unregister_endpoint(fn_id, forward_inbox=fwd_store)
        plat.coordinator.function_migrated(fn_id, dst_node)
        instance.rebind(plat.make_iolib(fn_id, tenant, dst_node))
        dst_runtime.register_endpoint(fn_id, instance.inbox, tenant=tenant)
        for descriptor in stragglers:
            fwd_store.put_nowait(descriptor)
        env.process(
            self._forward_loop(record, instance, fwd_store, src_runtime,
                               dst_runtime, agent),
            name=f"migrate-fwd:{fn_id}")
        instance.thaw()
        record.t_thaw_us = env.now
        record.downtime_us = record.t_thaw_us - record.t_freeze_us
        record.ok = True
        self.migrations += 1
        self._end(tel, span)

        # Checkpointed cargo rode the image: redeliver it into the
        # (now live) inbox on the target, paying only local delivery.
        if cargo:
            env.process(self._redeliver(record, instance, cargo, dst_runtime,
                                        agent),
                        name=f"migrate-cargo:{fn_id}")
        self._finish(tel, root, record)
        return record

    # -- redelivery paths ----------------------------------------------------
    def _redeliver(self, record: MigrationRecord, instance, cargo,
                   dst_runtime, agent: str):
        """Generator: hand checkpointed messages back to the instance.

        Their payloads arrived inside the image (already charged to the
        copy phase); each redelivery pays a pool get + local copy on
        the target, then ownership goes back to the function.
        """
        cost = self.platform.cost
        pool = dst_runtime.pool_for(instance.spec.tenant)
        for message, payload, length in cargo:
            buffer = yield from pool.get_wait(agent)
            yield from dst_runtime.node.cpu.execute(
                cost.mempool_op_us + cost.copy_time(length))
            buffer.write(agent, payload, length)
            message.transfer(agent, instance.agent)
            buffer.transfer(agent, instance.agent)
            instance.inbox.put_nowait(BufferDescriptor(
                buffer=buffer, length=length, message=message))
            self._count_redirect(record, instance.spec.name)

    def _forward_loop(self, record: MigrationRecord, instance, fwd_store,
                      src_runtime, dst_runtime, agent: str):
        """Generator: redirect stragglers from the old node to the new.

        Serves the final-drain blackout arrivals and anything that
        lands at the old endpoint after the flip (deliveries that had
        already passed their route lookup).  Each redirect pays the
        full price: copy out on the source, a fabric hop, copy in on
        the target.
        """
        env = self.env
        plat = self.platform
        cost = plat.cost
        link = plat.cluster.fabric_link(src_runtime.node.name,
                                        dst_runtime.node.name)
        pool = dst_runtime.pool_for(instance.spec.tenant)
        while True:
            descriptor = yield fwd_store.get()
            message = descriptor.message
            buffer = descriptor.buffer
            length = descriptor.length
            message.transfer(instance.agent, agent)
            buffer.transfer(instance.agent, agent)
            payload = buffer.read(agent)
            buffer.pool.put(buffer, agent)
            yield from src_runtime.node.cpu.execute(cost.copy_time(length))
            yield from link.transmit(length + cost.migration_frame_bytes)
            dst_buffer = yield from pool.get_wait(agent)
            yield from dst_runtime.node.cpu.execute(
                cost.mempool_op_us + cost.copy_time(length))
            dst_buffer.write(agent, payload, length)
            message.transfer(agent, instance.agent)
            dst_buffer.transfer(agent, instance.agent)
            instance.inbox.put_nowait(BufferDescriptor(
                buffer=dst_buffer, length=length, message=message))
            self._count_redirect(record, instance.spec.name)

    def _count_redirect(self, record: MigrationRecord, fn: str) -> None:
        record.messages_redirected += 1
        self.messages_redirected += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "migration_messages_redirected", "In-flight messages "
                "handed over to a migrated instance.",
                labels=("fn",)).labels(fn).inc()

    # -- telemetry plumbing --------------------------------------------------
    def _child(self, tel, root, name: str, node: str, actor: str):
        if tel is None:
            return None
        return tel.tracer.start_span(name, parent=root, category="migration",
                                     node=node, actor=actor)

    def _end(self, tel, span, status: str = "ok") -> None:
        if tel is not None and span is not None:
            tel.tracer.end_span(span, status=status)

    def _finish(self, tel, root, record: MigrationRecord,
                status: str = "ok") -> None:
        if tel is None:
            return
        self._end(tel, root, status=status)
        tel.metrics.counter(
            "migrations_total", "Live migration attempts by outcome.",
            labels=("outcome",)).labels(
                "ok" if record.ok else record.reason or "failed").inc()
        if record.ok:
            tel.metrics.histogram(
                "migration_downtime_us", "Freeze-to-thaw blackout per "
                "migration.", labels=("fn",)).labels(
                    record.fn_id).observe(record.downtime_us)
            tel.metrics.counter(
                "migration_bytes_copied", "Checkpoint image bytes moved "
                "over the fabric.", labels=("fn",)).labels(
                    record.fn_id).inc(record.bytes_copied)
