"""The typed zero-copy dataplane core: messages and descriptor chains.

Every request that travels Palladium's data plane is *one* object: a
:class:`Message` rides the buffer descriptor end-to-end, exactly as one
buffer does in the paper (§3.5).  Historically this state was an
untyped ``meta: Dict`` blob with magic underscore keys, defensively
``dict()``-copied at every hop — the simulator copied on every hop
while modeling a zero-copy system.  This package replaces that with
slotted, typed classes and an explicit ownership protocol:

* **routing** — ``kind``/``rid``/``src``/``dst``/``reply_to``/
  ``tenant`` plus ``via``, the transport that carried the last hop;
* **reliability** — an ``ack`` event settled by whichever transport
  delivers (or drops) the message, plus a retry budget;
* **trace context** — the telemetry ``(trace_id, span_id)`` tuple each
  hop re-stamps so receive spans chain off send spans;
* **ownership** — :meth:`Message.transfer` / :meth:`Message.retire`
  mirror the buffer token-passing protocol.  A message has exactly one
  owner at any sim instant; use-after-transfer and double-retire raise
  :class:`OwnershipViolation` at sim time, which is what a use-after-
  free would have been on real hardware.
"""

from .message import (
    KIND_REQUEST,
    KIND_RESPONSE,
    VIA_ENGINE,
    VIA_SKMSG,
    VIA_TCP,
    DescriptorChain,
    Message,
    OwnershipViolation,
)

__all__ = [
    "Message",
    "DescriptorChain",
    "OwnershipViolation",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "VIA_SKMSG",
    "VIA_ENGINE",
    "VIA_TCP",
]
