"""Slotted message and descriptor-chain types with single-owner handoff.

See the package docstring for the design rationale.  The protocol:

* a message is created owned by its producer (``owner=<agent>``);
* each hop hands it off with ``transfer(from_agent, to_agent)`` —
  by-ownership, never by copy;
* exactly one agent finally ``retire()``\\ s it (after the handler ran,
  after a drop, after a flushed CQE is reclaimed);
* ``transfer`` after retirement, ``transfer`` by a non-owner, and a
  second ``retire`` all raise :class:`OwnershipViolation`.

Field reads and writes are *not* ownership-checked — they are on the
simulator's hottest path and the protocol calls are where the invariant
is enforced (the same trade the buffer layer makes: ``payload`` access
goes through ``read``/``write``, plain attributes are free).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Message",
    "DescriptorChain",
    "OwnershipViolation",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "VIA_SKMSG",
    "VIA_ENGINE",
    "VIA_TCP",
]

#: transports a message can record as its last hop
VIA_SKMSG = "skmsg"
VIA_ENGINE = "engine"
VIA_TCP = "tcp"

KIND_REQUEST = "request"
KIND_RESPONSE = "response"


class OwnershipViolation(RuntimeError):
    """An agent touched a message it does not own (or that is retired)."""


class Message:
    """The typed header that rides a request end-to-end.

    One instance travels the whole path — ingress to entry function to
    downstream functions and back — by ownership handoff, never copied
    per hop.  ``clone`` exists only for *re*-transmission, where the
    original instance is genuinely gone (retired by a drop path).
    """

    __slots__ = ("kind", "rid", "src", "dst", "reply_to", "tenant", "via",
                 "ack", "retries_left", "trace", "crossed_domain",
                 "_owner", "_retired")

    def __init__(
        self,
        kind: str = KIND_REQUEST,
        rid: Optional[int] = None,
        src: str = "",
        dst: str = "",
        reply_to: str = "",
        tenant: str = "default",
        via: str = "",
        ack=None,
        retries_left: int = 0,
        trace: Optional[Tuple[int, int]] = None,
        crossed_domain: bool = False,
        owner: Optional[str] = None,
    ):
        self.kind = kind
        self.rid = rid
        self.src = src
        self.dst = dst
        self.reply_to = reply_to
        self.tenant = tenant
        #: transport of the last hop (skmsg / engine / tcp)
        self.via = via
        #: reliability ack event; settled (ok/not-ok) by the transport
        self.ack = ack
        #: remaining retransmissions a reliable sender may spend
        self.retries_left = retries_left
        #: telemetry (trace_id, span_id) context, re-stamped per hop
        self.trace = trace
        #: True once the payload was CPU-copied across a tenant boundary
        self.crossed_domain = crossed_domain
        self._owner = owner
        self._retired = False

    # -- introspection -------------------------------------------------------
    @property
    def owner(self) -> Optional[str]:
        return self._owner

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def is_response(self) -> bool:
        return self.kind == KIND_RESPONSE

    # -- ownership protocol --------------------------------------------------
    def check_owner(self, agent: Optional[str]) -> None:
        """Raise unless ``agent`` currently owns this (live) message."""
        if self._retired:
            raise OwnershipViolation(
                f"message rid={self.rid}: use after retire (by {agent!r})"
            )
        if self._owner != agent:
            raise OwnershipViolation(
                f"message rid={self.rid}: agent {agent!r} is not the owner "
                f"(owner={self._owner!r})"
            )

    def transfer(self, from_agent: Optional[str], to_agent: str) -> None:
        """Hand the message off; the previous owner must not touch it.

        A message that never entered the protocol (``owner=None``, e.g.
        one built by a driver outside the runtime) is adopted by its
        first transfer; once owned, only the owner may hand it off.
        """
        if self._owner is None and not self._retired:
            self._owner = to_agent
            return
        self.check_owner(from_agent)
        self._owner = to_agent

    def retire(self, agent: Optional[str]) -> None:
        """End of life: the final owner consumes the message exactly once."""
        if self._retired:
            raise OwnershipViolation(
                f"message rid={self.rid}: double retire (by {agent!r})"
            )
        if self._owner is not None:
            self.check_owner(agent)
        self._retired = True

    # -- reliability ---------------------------------------------------------
    def settle(self, ok: bool) -> None:
        """Succeed the reliability ack, if one is riding and still open.

        Deliberately owner-agnostic: the ack is *sender-side* state that
        a remote transport settles on delivery, long after ownership
        moved on.
        """
        ack = self.ack
        if ack is not None and not ack.triggered:
            ack.succeed(ok)

    # -- retransmission ------------------------------------------------------
    def clone(self, owner: Optional[str] = None, **overrides: Any) -> "Message":
        """Fresh instance with the same routing/trace fields, no ack.

        Used when a reliable sender retransmits: the original instance
        was consumed by whatever path dropped it, so the retry gets a
        pristine copy under a new owner.
        """
        msg = Message(
            kind=self.kind, rid=self.rid, src=self.src, dst=self.dst,
            reply_to=self.reply_to, tenant=self.tenant, via=self.via,
            retries_left=self.retries_left, trace=self.trace,
            crossed_domain=self.crossed_domain, owner=owner,
        )
        for key, value in overrides.items():
            setattr(msg, key, value)
        return msg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "retired" if self._retired else f"owner={self._owner!r}"
        return (f"<Message {self.kind} rid={self.rid} {self.src!r}->"
                f"{self.dst!r} via={self.via!r} {state}>")


class DescriptorChain:
    """An ordered scatter-gather chain of descriptors under one message.

    Models a multi-buffer payload (a response body spanning several
    pool buffers) travelling as a single unit: one :class:`Message`
    header, one ownership handoff moving the header *and* every chained
    buffer together.
    """

    __slots__ = ("message", "_descriptors")

    def __init__(self, message: Message, descriptors: Iterable = ()):
        self.message = message
        self._descriptors: List = list(descriptors)

    def append(self, descriptor) -> None:
        self._descriptors.append(descriptor)

    @property
    def total_length(self) -> int:
        return sum(d.length for d in self._descriptors)

    @property
    def wire_bytes(self) -> int:
        """Chain descriptors travel back-to-back on a channel."""
        return sum(d.wire_bytes for d in self._descriptors)

    def __len__(self) -> int:
        return len(self._descriptors)

    def __iter__(self) -> Iterator:
        return iter(self._descriptors)

    def __getitem__(self, index: int):
        return self._descriptors[index]

    def transfer(self, from_agent: Optional[str], to_agent: str) -> None:
        """Hand off the header and every chained buffer atomically."""
        self.message.transfer(from_agent, to_agent)
        for descriptor in self._descriptors:
            descriptor.buffer.transfer(from_agent, to_agent)

    def retire(self, agent: Optional[str]) -> None:
        """Consume the chain: retire the header, recycle the buffers."""
        self.message.retire(agent)
        for descriptor in self._descriptors:
            buffer = descriptor.buffer
            if buffer.pool is not None:
                buffer.pool.put(buffer, agent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DescriptorChain {len(self._descriptors)} descriptors "
                f"{self.total_length}B {self.message!r}>")
