"""Cross-processor (CPU <-> DPU) shared memory, DOCA-mmap style (§3.4.2).

The trick that makes Palladium's off-path mode work: the host's unified
memory pool is *exported* to the DPU so the DNE can (a) register it
with the integrated RNIC and (b) name host buffers in work requests —
all without the data ever moving through the DPU's own memory.

The real control flow is reproduced one-to-one:

1. The host shared-memory agent calls :meth:`CrossProcessorExporter.export_pci`
   (grant DPU ARM-core access) and :meth:`CrossProcessorExporter.export_rdma`
   (grant RNIC access), producing an opaque export descriptor.
2. The descriptor travels to the DNE over the Comch control channel.
3. The DNE calls :func:`create_from_export`, obtaining a
   :class:`RemoteMap` through which it may operate on host buffers.

A :class:`RemoteMap` is a *capability*: DNE-side code must present it
to post host buffers to the RNIC.  Missing grants raise
:class:`MappingError`, mirroring a DOCA permission failure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Set

from .mempool import MemoryPool

__all__ = [
    "CrossProcessorExporter",
    "ExportDescriptor",
    "MappingError",
    "RemoteMap",
    "create_from_export",
]

_export_ids = itertools.count(1)


class MappingError(PermissionError):
    """A cross-processor mapping was used without the required grant."""


@dataclass(frozen=True)
class ExportDescriptor:
    """Opaque token describing an exported host memory range."""

    export_id: int
    tenant: str
    pool: MemoryPool
    grants: frozenset


class CrossProcessorExporter:
    """Host-side exporter for one tenant's unified memory pool."""

    GRANT_PCI = "pci"  # DPU ARM cores may address the range
    GRANT_RDMA = "rdma"  # the integrated RNIC may DMA to/from the range

    def __init__(self, pool: MemoryPool):
        self.pool = pool
        self._grants: Set[str] = set()

    def export_pci(self) -> "CrossProcessorExporter":
        """doca_mmap_export_pci(): allow DPU core access."""
        self._grants.add(self.GRANT_PCI)
        return self

    def export_rdma(self) -> "CrossProcessorExporter":
        """doca_mmap_export_rdma(): allow RNIC access."""
        self._grants.add(self.GRANT_RDMA)
        return self

    def descriptor(self) -> ExportDescriptor:
        """Produce the export descriptor sent to the DNE over Comch."""
        if not self._grants:
            raise MappingError("export descriptor requested before any export_*()")
        return ExportDescriptor(
            export_id=next(_export_ids),
            tenant=self.pool.tenant,
            pool=self.pool,
            grants=frozenset(self._grants),
        )


@dataclass
class RemoteMap:
    """DPU-side handle onto an exported host pool (doca_mmap import)."""

    descriptor: ExportDescriptor
    registered_with_rnic: bool = field(default=False)

    @property
    def pool(self) -> MemoryPool:
        return self.descriptor.pool

    @property
    def tenant(self) -> str:
        return self.descriptor.tenant

    def require_pci(self) -> None:
        """Assert the ARM cores were granted access."""
        if CrossProcessorExporter.GRANT_PCI not in self.descriptor.grants:
            raise MappingError(
                f"pool {self.pool.name}: no PCI grant for DPU core access"
            )

    def require_rdma(self) -> None:
        """Assert the RNIC was granted access."""
        if CrossProcessorExporter.GRANT_RDMA not in self.descriptor.grants:
            raise MappingError(
                f"pool {self.pool.name}: no RDMA grant for RNIC access"
            )


def create_from_export(descriptor: ExportDescriptor) -> RemoteMap:
    """doca_mmap_create_from_export(): DNE-side import of a host pool."""
    return RemoteMap(descriptor=descriptor)
