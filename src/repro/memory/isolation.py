"""Per-tenant memory isolation via file-prefix namespaces (§3.4.1).

Palladium rides DPDK's multi-process model: a per-tenant *shared memory
agent* (the DPDK primary process) creates the tenant's pool under a
distinct ``--file-prefix`` and functions attach as secondary processes
using that prefix.  A function can only map pools whose prefix it was
given, which is how tenants are kept out of each other's memory.

We reproduce the control-plane semantics: a registry of prefixes, an
agent that creates pools, and an ``attach`` call that validates the
caller's tenant before handing back the pool object.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..sim import Environment

from .mempool import MemoryPool

__all__ = ["IsolationError", "SharedMemoryAgent", "TenantMemoryRegistry"]


class IsolationError(PermissionError):
    """A function tried to map another tenant's memory pool."""


class SharedMemoryAgent:
    """The DPDK-primary-process stand-in that owns one tenant's pool.

    The agent is control-plane only — it sets the pool up before
    function startup and exports it to the DPU (§3.4.2); it never
    touches the data path.
    """

    def __init__(
        self,
        env: Environment,
        tenant: str,
        file_prefix: str,
        buffer_count: int,
        buffer_bytes: int,
    ):
        self.env = env
        self.tenant = tenant
        self.file_prefix = file_prefix
        self.pool = MemoryPool(
            env, tenant, buffer_count, buffer_bytes, name=f"pool:{file_prefix}"
        )

    def export_descriptor(self) -> Dict[str, object]:
        """The mmap configuration secondary processes load (§3.4.1)."""
        return {
            "file_prefix": self.file_prefix,
            "tenant": self.tenant,
            "buffer_bytes": self.pool.buffer_bytes,
            "buffer_count": self.pool.buffer_count,
            "hugepages": self.pool.hugepages,
        }


class TenantMemoryRegistry:
    """Cluster-wide view of tenant pools, keyed by file prefix."""

    def __init__(self, env: Environment):
        self.env = env
        self._agents: Dict[str, SharedMemoryAgent] = {}
        self._tenant_prefix: Dict[str, str] = {}

    def create_tenant_pool(
        self,
        tenant: str,
        buffer_count: int,
        buffer_bytes: int,
        file_prefix: Optional[str] = None,
    ) -> SharedMemoryAgent:
        """Start a shared-memory agent for ``tenant``; prefixes are unique."""
        prefix = file_prefix or f"palladium_{tenant}"
        if prefix in self._agents:
            raise ValueError(f"file prefix {prefix!r} already in use")
        if tenant in self._tenant_prefix:
            raise ValueError(f"tenant {tenant!r} already has a pool")
        agent = SharedMemoryAgent(self.env, tenant, prefix, buffer_count, buffer_bytes)
        self._agents[prefix] = agent
        self._tenant_prefix[tenant] = prefix
        return agent

    def attach(self, file_prefix: str, tenant: str) -> MemoryPool:
        """Map a pool as a secondary process; cross-tenant attach fails."""
        agent = self._agents.get(file_prefix)
        if agent is None:
            raise KeyError(f"no pool with file prefix {file_prefix!r}")
        if agent.tenant != tenant:
            raise IsolationError(
                f"tenant {tenant!r} may not map pool of tenant {agent.tenant!r}"
            )
        return agent.pool

    def pool_for(self, tenant: str) -> MemoryPool:
        """Look up a tenant's pool (control-plane convenience)."""
        prefix = self._tenant_prefix.get(tenant)
        if prefix is None:
            raise KeyError(f"tenant {tenant!r} has no pool")
        return self._agents[prefix].pool

    def agent_for(self, tenant: str) -> SharedMemoryAgent:
        prefix = self._tenant_prefix.get(tenant)
        if prefix is None:
            raise KeyError(f"tenant {tenant!r} has no pool")
        return self._agents[prefix]

    @property
    def tenants(self):
        return list(self._tenant_prefix)
