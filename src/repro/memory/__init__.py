"""Unified memory subsystem: pools, buffers, ownership, isolation, cross-mapping."""

from .buffer import (
    DESCRIPTOR_BYTES,
    Buffer,
    BufferDescriptor,
    BufferState,
    OwnershipError,
)
from .crossmap import (
    CrossProcessorExporter,
    ExportDescriptor,
    MappingError,
    RemoteMap,
    create_from_export,
)
from .isolation import IsolationError, SharedMemoryAgent, TenantMemoryRegistry
from .mempool import MemoryPool, PoolExhausted

__all__ = [
    "Buffer",
    "BufferDescriptor",
    "BufferState",
    "CrossProcessorExporter",
    "DESCRIPTOR_BYTES",
    "ExportDescriptor",
    "IsolationError",
    "MappingError",
    "MemoryPool",
    "OwnershipError",
    "PoolExhausted",
    "RemoteMap",
    "SharedMemoryAgent",
    "TenantMemoryRegistry",
    "create_from_export",
]
