"""Buffers and the 16-byte descriptors that travel the data plane.

A :class:`Buffer` is a fixed-capacity region inside a tenant's unified
memory pool.  Functions never exchange payload bytes directly — they
exchange :class:`BufferDescriptor` tokens (16 B in the real system,
§3.5.4) whose possession *is* ownership of the underlying buffer.  The
kernel of Palladium's lock-free design (§3.5.1) is that every buffer
has exactly one owner at any time, and only the owner may read, write,
recycle, or hand it off.  We enforce that invariant at runtime: any
access by a non-owner raises :class:`OwnershipError`, which is what a
data race or use-after-free would have been on real hardware.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..dataplane import Message

__all__ = ["Buffer", "BufferDescriptor", "OwnershipError", "BufferState", "DESCRIPTOR_BYTES"]

#: Size of a buffer descriptor on the wire/IPC channels (§3.5.4).
DESCRIPTOR_BYTES = 16

_buffer_ids = itertools.count(1)


class OwnershipError(RuntimeError):
    """An agent touched a buffer it does not currently own."""


class BufferState:
    """Lifecycle states of a pool buffer."""

    FREE = "free"
    IN_USE = "in_use"
    POSTED = "posted"  # handed to the RNIC as a receive buffer


class Buffer:
    """One fixed-size buffer from a tenant's unified memory pool."""

    __slots__ = ("buffer_id", "capacity", "pool", "tenant", "owner", "state",
                 "length", "payload")

    def __init__(self, capacity: int, pool: Any = None, tenant: Optional[str] = None):
        self.buffer_id = next(_buffer_ids)
        self.capacity = capacity
        self.pool = pool
        self.tenant = tenant
        self.owner: Optional[str] = None
        self.state = BufferState.FREE
        self.length = 0
        self.payload: Any = None

    # -- ownership ----------------------------------------------------------
    def check_owner(self, agent: str) -> None:
        """Raise unless ``agent`` currently owns this buffer."""
        if self.owner != agent:
            raise OwnershipError(
                f"buffer {self.buffer_id}: agent {agent!r} is not the owner "
                f"(owner={self.owner!r}, state={self.state})"
            )

    def transfer(self, from_agent: str, to_agent: str) -> None:
        """Token-passing ownership handoff (§3.5.1)."""
        self.check_owner(from_agent)
        self.owner = to_agent

    # -- data access (owner only) ---------------------------------------------
    def write(self, agent: str, payload: Any, length: int) -> None:
        """Fill the buffer with ``length`` bytes of (modeled) payload."""
        self.check_owner(agent)
        if length < 0 or length > self.capacity:
            raise ValueError(
                f"payload of {length} B does not fit buffer of {self.capacity} B"
            )
        self.payload = payload
        self.length = length

    def read(self, agent: str) -> Any:
        """Return the buffer's payload; owner only."""
        self.check_owner(agent)
        return self.payload

    def descriptor(self, **fields: Any) -> "BufferDescriptor":
        """Build a descriptor naming this buffer.

        ``fields`` populate the typed :class:`~repro.dataplane.Message`
        header (``dst=...``, ``tenant=...``, ...).
        """
        return BufferDescriptor(buffer=self, length=self.length,
                                message=Message(**fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Buffer {self.buffer_id} {self.state} owner={self.owner!r} "
            f"len={self.length}/{self.capacity}>"
        )


class BufferDescriptor:
    """The 16-byte token exchanged over IPC / Comch / RDMA send queues.

    ``message`` is the typed header (routing, reliability, trace
    context) that the real system packs into the descriptor and message
    headers — one :class:`~repro.dataplane.Message` instance rides the
    whole path by ownership handoff, never copied per hop.
    """

    __slots__ = ("buffer", "length", "message")

    def __init__(self, buffer: Buffer, length: int,
                 message: Optional[Message] = None):
        self.buffer = buffer
        self.length = length
        self.message = message if message is not None else Message()

    @property
    def wire_bytes(self) -> int:
        """Bytes this descriptor occupies on a channel."""
        return DESCRIPTOR_BYTES

    def derive(self, **overrides: Any) -> "BufferDescriptor":
        """New descriptor for the same buffer, header cloned + updated.

        For reverse paths (echoing a request buffer back): the derived
        header starts unowned and enters the ownership protocol at its
        first transfer.
        """
        return BufferDescriptor(buffer=self.buffer, length=self.length,
                                message=self.message.clone(**overrides))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<BufferDescriptor buf={self.buffer.buffer_id} "
                f"len={self.length} {self.message!r}>")
