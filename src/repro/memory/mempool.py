"""Pool-based buffer allocation (rte_mempool-style, §3.4).

Palladium reserves equal-size buffers up front in hugepage-backed pools
so functions never call ``malloc`` on the critical path.  The pool is
fixed-size; exhausting it is an explicit error (back-pressure in the
callers keeps this from happening in steady state).

Hugepage accounting matters for the RNIC: using 2 MB pages keeps the
Memory Translation Table small (§3.4), which the RDMA layer's MTT cache
model consumes via :attr:`MemoryPool.mtt_entries`.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim import Environment, Store

from .buffer import Buffer, BufferState, OwnershipError

__all__ = ["MemoryPool", "PoolExhausted"]


class PoolExhausted(RuntimeError):
    """``get`` was called on an empty fixed-size pool."""


class MemoryPool:
    """A tenant's unified memory pool of fixed-size buffers.

    The pool lives in host memory; the same buffers serve intra-node
    shared-memory transfers and inter-node RDMA (that unification is the
    paper's zero-copy enabler, §3.4).  ``get``/``put`` mirror
    ``rte_mempool_get``/``rte_mempool_put``.
    """

    def __init__(
        self,
        env: Environment,
        tenant: str,
        buffer_count: int,
        buffer_bytes: int,
        hugepage_bytes: int = 2 * 1024 * 1024,
        name: str = "",
    ):
        if buffer_count < 1 or buffer_bytes < 1:
            raise ValueError("pool needs at least one buffer of at least one byte")
        self.env = env
        self.tenant = tenant
        self.buffer_bytes = buffer_bytes
        self.buffer_count = buffer_count
        self.name = name or f"pool:{tenant}"
        self.hugepage_bytes = hugepage_bytes
        #: number of 2 MB hugepages backing the pool
        self.hugepages = max(1, math.ceil(buffer_count * buffer_bytes / hugepage_bytes))
        self._free: Store = Store(env, name=f"{self.name}-free")
        self._all: List[Buffer] = []
        for _ in range(buffer_count):
            buf = Buffer(buffer_bytes, pool=self, tenant=tenant)
            self._all.append(buf)
            self._free.items.append(buf)
        self.gets = 0
        self.puts = 0

    @property
    def mtt_entries(self) -> int:
        """RNIC translation entries needed to register this pool."""
        return self.hugepages

    @property
    def free_count(self) -> int:
        return len(self._free.items)

    def get(self, owner: str) -> Buffer:
        """Take a free buffer, assigning ownership to ``owner``.

        Non-blocking; raises :class:`PoolExhausted` when empty, like
        ``rte_mempool_get`` returning ``-ENOENT``.
        """
        buf = self._free.try_get()
        if buf is None:
            raise PoolExhausted(f"{self.name}: no free buffers")
        buf.owner = owner
        buf.state = BufferState.IN_USE
        buf.length = 0
        buf.payload = None
        self.gets += 1
        return buf

    def get_wait(self, owner: str):
        """Generator: like :meth:`get` but blocks until a buffer frees."""
        event = self._free.get()
        buf = yield event
        buf.owner = owner
        buf.state = BufferState.IN_USE
        buf.length = 0
        buf.payload = None
        self.gets += 1
        return buf

    def put(self, buffer: Buffer, owner: str) -> None:
        """Recycle a buffer; only its current owner may do so."""
        buffer.check_owner(owner)
        if buffer.pool is not self:
            raise OwnershipError(
                f"buffer {buffer.buffer_id} belongs to {buffer.pool and buffer.pool.name}, "
                f"not {self.name}"
            )
        if buffer.state == BufferState.FREE:
            raise OwnershipError(f"double free of buffer {buffer.buffer_id}")
        buffer.owner = None
        buffer.state = BufferState.FREE
        buffer.payload = None
        buffer.length = 0
        self.puts += 1
        self._free.put(buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemoryPool {self.name} free={self.free_count}/{self.buffer_count}>"
