"""Credit-based backpressure between senders and a network engine.

Instead of letting the engine's per-tenant TX queues absorb whatever
the gateway and local functions post (growing silently until the
bounded-queue policy sheds), the engine *grants credits*: a sender must
hold one credit per in-flight message and the engine hands the credit
back when it processes (or sheds) that message.  The grantable window
shrinks as the tenant's scheduler backlog grows — from ``base_credits``
at or below ``low_water`` backlog linearly down to ``min_credits`` at
``high_water`` — so congestion at the engine propagates hop-by-hop to
the edge, where the admission gate can reject cheaply, rather than
materialising as deep queues.

``acquire`` is a generator: a sender over its window parks on a FIFO
waiter queue (deterministic wake order) until the engine's releases
bring its outstanding count back under the live limit.  ``min_credits``
is at least one, so every tenant can always make progress — credits
throttle, they never starve.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

__all__ = ["CreditController", "CreditError"]


class CreditError(RuntimeError):
    """A credit was released that was never granted (accounting bug)."""


class CreditController:
    """Per-tenant credit windows scaled by live scheduler backlog."""

    def __init__(
        self,
        env,
        base_credits: int = 64,
        min_credits: int = 4,
        low_water: Optional[int] = None,
        high_water: Optional[int] = None,
        backlog_fn: Optional[Callable[[str], int]] = None,
    ):
        if base_credits < 1:
            raise ValueError("base_credits must be at least 1")
        if not 1 <= min_credits <= base_credits:
            raise ValueError("need 1 <= min_credits <= base_credits")
        self.env = env
        self.base_credits = base_credits
        self.min_credits = min_credits
        #: backlog at/below which the full window is grantable
        self.low_water = base_credits if low_water is None else low_water
        #: backlog at/above which only ``min_credits`` are grantable
        self.high_water = (
            base_credits * 8 if high_water is None else high_water
        )
        if self.high_water <= self.low_water:
            raise ValueError("high_water must exceed low_water")
        #: per-tenant live backlog probe (the engine's DWRR queue depth)
        self.backlog_fn = backlog_fn
        self._outstanding: Dict[str, int] = {}
        self._waiters: Dict[str, Deque] = {}
        # lifetime accounting (read by telemetry export and tests)
        self.granted = 0
        self.released = 0
        self.blocked = 0

    # -- the revocation curve -------------------------------------------------
    def limit(self, tenant: str) -> int:
        """Grantable window for ``tenant`` given its current backlog."""
        if self.backlog_fn is None:
            return self.base_credits
        backlog = self.backlog_fn(tenant)
        if backlog <= self.low_water:
            return self.base_credits
        if backlog >= self.high_water:
            return self.min_credits
        frac = (backlog - self.low_water) / (self.high_water - self.low_water)
        shrunk = self.base_credits - frac * (self.base_credits - self.min_credits)
        return max(self.min_credits, int(shrunk))

    def outstanding(self, tenant: str) -> int:
        return self._outstanding.get(tenant, 0)

    def waiting(self, tenant: str) -> int:
        queue = self._waiters.get(tenant)
        return len(queue) if queue else 0

    # -- acquire / release ----------------------------------------------------
    def try_acquire(self, tenant: str) -> bool:
        """Grant a credit now if the window allows (no queue jumping)."""
        if self._waiters.get(tenant):
            return False
        if self._outstanding.get(tenant, 0) >= self.limit(tenant):
            return False
        self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
        self.granted += 1
        return True

    def acquire(self, tenant: str):
        """Generator: block (FIFO) until a credit is granted."""
        if self.try_acquire(tenant):
            return
        event = self.env.event()
        self._waiters.setdefault(tenant, deque()).append(event)
        self.blocked += 1
        yield event

    def release(self, tenant: str) -> None:
        """Hand a credit back (the engine processed or shed the message)."""
        count = self._outstanding.get(tenant, 0)
        if count <= 0:
            raise CreditError(
                f"credit released for tenant {tenant!r} with none outstanding"
            )
        self._outstanding[tenant] = count - 1
        self.released += 1
        self._grant_waiters(tenant)

    def _grant_waiters(self, tenant: str) -> None:
        waiters = self._waiters.get(tenant)
        while waiters and self._outstanding.get(tenant, 0) < self.limit(tenant):
            event = waiters.popleft()
            self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1
            self.granted += 1
            event.succeed()
