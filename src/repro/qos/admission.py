"""Admission control at the cluster edge.

Two layers, both evaluated *before* any buffer is pledged to a request:

* :class:`TokenBucket` — per-tenant rate policing with lazy sim-time
  refill (no background process, so an idle bucket costs nothing and
  perturbs nothing).
* :class:`AdmissionGate` — the SLO-aware gate: given an estimate of the
  queueing delay a request would face, reject it early when that
  estimate exceeds the tenant's deadline budget scaled by its class
  headroom (best-effort flinches first — graceful degradation).

:class:`IngressQos` bundles the gate with the per-node engine credit
windows so a gateway needs exactly one handle: ``admit`` to decide,
``acquire_credit`` to apply hop-by-hop backpressure before posting the
RDMA send toward a worker's engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .policy import TenantQosPolicy

__all__ = ["TokenBucket", "AdmissionGate", "IngressQos"]

#: default per-message engine service estimate (host-us) used to turn a
#: backlog depth into a queueing-delay estimate; roughly one DNE TX
#: iteration (ingest + proc + scheduling) on the wimpy core.
DEFAULT_SERVICE_US = 2.0


class TokenBucket:
    """Classic token bucket with lazy refill off a sim-time clock."""

    def __init__(self, rate_rps: float, burst: int,
                 clock: Callable[[], float]):
        if rate_rps <= 0:
            raise ValueError("token bucket rate must be positive")
        if burst < 1:
            raise ValueError("token bucket burst must be at least 1")
        self.rate_per_us = rate_rps / 1e6
        self.burst = float(burst)
        self.clock = clock
        self.tokens = float(burst)
        self._last_us = clock()

    def _refill(self) -> None:
        now = self.clock()
        if now > self._last_us:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last_us) * self.rate_per_us
            )
            self._last_us = now

    def try_take(self) -> bool:
        self._refill()
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AdmissionGate:
    """Per-tenant rate policing + deadline-aware early rejection."""

    REASON_RATE = "rate"
    REASON_DEADLINE = "deadline"

    def __init__(self, env, policies: Dict[str, TenantQosPolicy]):
        self.env = env
        self.policies = policies
        self._buckets: Dict[str, TokenBucket] = {}
        for name, policy in policies.items():
            if policy.rate_rps is not None:
                self._buckets[name] = TokenBucket(
                    policy.rate_rps, policy.burst, clock=lambda: env.now
                )
        self.admitted = 0
        self.rejected = 0
        #: (tenant, reason) -> rejections, for per-class goodput reports
        self.rejections: Dict[tuple, int] = {}

    def policy_for(self, tenant: str) -> Optional[TenantQosPolicy]:
        return self.policies.get(tenant)

    def admit(self, tenant: str,
              estimated_delay_us: float = 0.0) -> Optional[str]:
        """``None`` admits; otherwise the rejection reason.

        Unknown tenants (no policy) are always admitted — QoS is
        opt-in per tenant, like the rest of the subsystem.
        """
        policy = self.policies.get(tenant)
        if policy is None:
            self.admitted += 1
            return None
        bucket = self._buckets.get(tenant)
        if bucket is not None and not bucket.try_take():
            return self._reject(tenant, self.REASON_RATE)
        if (policy.deadline_us is not None
                and estimated_delay_us > policy.deadline_us * policy.headroom):
            return self._reject(tenant, self.REASON_DEADLINE)
        self.admitted += 1
        return None

    def _reject(self, tenant: str, reason: str) -> str:
        self.rejected += 1
        key = (tenant, reason)
        self.rejections[key] = self.rejections.get(key, 0) + 1
        return reason


class IngressQos:
    """Everything a gateway needs: gate + per-engine credit windows.

    ``engines`` maps worker node name -> its network engine; delay
    estimates read the engine's live backlog, credits come from the
    engine's :class:`~repro.qos.credits.CreditController` (``None``
    when the engine runs without credits — then ``acquire_credit`` is a
    no-op and only admission applies).
    """

    def __init__(self, env, policies: Dict[str, TenantQosPolicy], engines,
                 service_us_estimate: float = DEFAULT_SERVICE_US):
        self.env = env
        self.gate = AdmissionGate(env, policies)
        self.engines = engines
        self.service_us_estimate = service_us_estimate

    def estimated_delay_us(self, node: str) -> float:
        """Queueing delay a request would face at ``node``'s engine."""
        engine = self.engines.get(node)
        if engine is None:
            return 0.0
        return engine.qos_backlog() * self.service_us_estimate

    def admit(self, tenant: str, dst_node: Optional[str] = None
              ) -> Optional[str]:
        estimate = (self.estimated_delay_us(dst_node)
                    if dst_node is not None else 0.0)
        return self.gate.admit(tenant, estimated_delay_us=estimate)

    def acquire_credit(self, dst_node: str, tenant: str):
        """Generator: block until ``dst_node``'s engine grants a credit."""
        engine = self.engines.get(dst_node)
        credits = getattr(engine, "qos_credits", None) if engine else None
        if credits is not None:
            yield from credits.acquire(tenant)


def qos_for_platform(platform, default_deadline_us: Optional[float] = None,
                     service_us_estimate: float = DEFAULT_SERVICE_US,
                     ) -> IngressQos:
    """Build an :class:`IngressQos` from a platform's tenant roster."""
    policies = {
        name: TenantQosPolicy.from_tenant(tenant, default_deadline_us)
        for name, tenant in platform.tenants.items()
    }
    return IngressQos(platform.env, policies, platform.engines,
                      service_us_estimate=service_us_estimate)
