"""QoS classes and per-tenant overload-control policy.

Palladium's DWRR weights (§3.3) control *who gets bandwidth* among
backlogged tenants; they say nothing about *what happens past
saturation*, when every queue in the stack would otherwise grow without
bound.  This module defines the vocabulary the overload-control
subsystem shares: three service classes with graceful-degradation
semantics, and a per-tenant policy bundle (class, rate limit, deadline
budget) the admission gate enforces at the cluster edge.

Classes degrade in a fixed order: under overload, best-effort traffic
is shed first, standard next, and guaranteed tenants only reject when
their own deadline budget is provably blown.  The mechanism is a
per-class *headroom multiplier* on the tenant's deadline when the gate
compares it against the estimated queueing delay — a small headroom
makes a class flinch early, a large one makes it hold on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "QOS_GUARANTEED",
    "QOS_STANDARD",
    "QOS_BEST_EFFORT",
    "QOS_CLASSES",
    "CLASS_HEADROOM",
    "TenantQosPolicy",
]

#: the three service classes, in shed order (last shed first)
QOS_GUARANTEED = "guaranteed"
QOS_STANDARD = "standard"
QOS_BEST_EFFORT = "best-effort"
QOS_CLASSES = (QOS_GUARANTEED, QOS_STANDARD, QOS_BEST_EFFORT)

#: deadline-budget multiplier per class: the admission gate rejects a
#: request when the estimated queueing delay exceeds
#: ``deadline_us * CLASS_HEADROOM[qos_class]``, so a best-effort tenant
#: starts shedding at a quarter of its budget while a guaranteed tenant
#: rides out transients up to twice its budget.
CLASS_HEADROOM = {
    QOS_GUARANTEED: 2.0,
    QOS_STANDARD: 1.0,
    QOS_BEST_EFFORT: 0.25,
}


@dataclass
class TenantQosPolicy:
    """One tenant's admission-control contract.

    ``rate_rps``/``burst`` parameterise the token bucket (``None`` rate
    means unlimited); ``deadline_us`` is the latency budget the
    SLO-aware gate protects (``None`` disables the deadline check).
    """

    tenant: str
    qos_class: str = QOS_STANDARD
    rate_rps: Optional[float] = None
    burst: int = 32
    deadline_us: Optional[float] = None

    def __post_init__(self):
        if self.qos_class not in QOS_CLASSES:
            raise ValueError(
                f"unknown QoS class {self.qos_class!r}; "
                f"expected one of {QOS_CLASSES}"
            )
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        if self.deadline_us is not None and self.deadline_us <= 0:
            raise ValueError("deadline_us must be positive (or None)")

    @property
    def headroom(self) -> float:
        return CLASS_HEADROOM[self.qos_class]

    @classmethod
    def from_tenant(cls, tenant, default_deadline_us: Optional[float] = None
                    ) -> "TenantQosPolicy":
        """Build a policy from a platform :class:`~repro.platform.Tenant`."""
        deadline = getattr(tenant, "deadline_us", None)
        if deadline is None:
            deadline = default_deadline_us
        return cls(
            tenant=tenant.name,
            qos_class=getattr(tenant, "qos_class", QOS_STANDARD),
            rate_rps=getattr(tenant, "rate_rps", None),
            burst=getattr(tenant, "burst", None) or 32,
            deadline_us=deadline,
        )
