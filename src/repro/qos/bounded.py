"""Bounded queues: per-tenant capacity + pluggable shed policy.

The engine's tenant schedulers are unbounded by default, which models
infinite patience: past saturation, backlog (and therefore queueing
delay) grows without limit.  A :class:`QueueBounds` gives each tenant's
queue a capacity and a policy that decides *which* message to shed when
the capacity is hit:

``tail-drop``
    Reject the arriving message (what SPRIGHT/Fuyao-style stacks do
    implicitly when a socket buffer fills).  Simple, but under
    sustained overload the queue stays full of *old* messages whose
    deadlines are already blown — the classic goodput-collapse shape.

``head-drop``
    Evict the *stalest* queued message and accept the new one
    (drop-from-front).  Bufferbloat literature shows this beats
    tail-drop under deadline traffic because the queue keeps serving
    fresh work.

``codel``
    A CoDel-style sojourn-time dropper (Nichols & Jacobson, CACM '12)
    driven by sim time: once the head-of-line sojourn time has stayed
    above ``target`` for a full ``interval``, drop heads at a rate that
    increases with the square root of the drop count until the sojourn
    dips below target.  Applied at dequeue, so it needs per-item
    enqueue timestamps — the bounded scheduler records them whenever a
    clock is configured.

The scheduler reports every shed message through an ``on_drop``
callback so the owner (the engine) can retire the dataplane header,
recycle the buffer, repay flow-control credits, and count the drop —
bounded queues never *silently* lose an owned message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DROP_TAIL",
    "DROP_HEAD",
    "DROP_CODEL",
    "DROP_POLICIES",
    "QueueBounds",
    "CodelState",
]

DROP_TAIL = "tail-drop"
DROP_HEAD = "head-drop"
DROP_CODEL = "codel"
DROP_POLICIES = (DROP_TAIL, DROP_HEAD, DROP_CODEL)


@dataclass(frozen=True)
class QueueBounds:
    """Per-tenant queue capacity and shed policy for a scheduler."""

    capacity: int
    policy: str = DROP_TAIL
    #: CoDel knobs (sim-time microseconds); defaults scale the classic
    #: 5 ms / 100 ms down to the microsecond RPC regime.
    codel_target_us: float = 50.0
    codel_interval_us: float = 1_000.0

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("queue capacity must be at least 1")
        if self.policy not in DROP_POLICIES:
            raise ValueError(
                f"unknown drop policy {self.policy!r}; "
                f"expected one of {DROP_POLICIES}"
            )
        if self.codel_target_us <= 0 or self.codel_interval_us <= 0:
            raise ValueError("CoDel target/interval must be positive")


class CodelState:
    """Per-tenant CoDel control law over head-of-line sojourn times.

    Tracks the classic state machine: ``first_above_time`` arms when
    sojourn first exceeds target; after a full interval above target
    the dropper enters the dropping state and schedules drops at
    ``interval / sqrt(count)`` spacing until sojourn recovers.
    """

    def __init__(self, target_us: float, interval_us: float):
        self.target_us = target_us
        self.interval_us = interval_us
        self.first_above_time = 0.0
        self.dropping = False
        self.drop_next = 0.0
        self.count = 0

    def _control_law(self, now: float) -> float:
        return now + self.interval_us / (self.count ** 0.5)

    def should_drop(self, sojourn_us: float, now: float) -> bool:
        """One head-of-line inspection; True means shed this message."""
        if sojourn_us < self.target_us:
            # Below target: disarm everything.
            self.first_above_time = 0.0
            if self.dropping:
                self.dropping = False
            return False
        if not self.dropping:
            if self.first_above_time == 0.0:
                self.first_above_time = now + self.interval_us
                return False
            if now < self.first_above_time:
                return False
            # Sojourn has stayed above target for a full interval:
            # enter the dropping state and shed this head.
            self.dropping = True
            # Start close to the last drop rate if we were recently
            # dropping (classic CoDel hysteresis), else from one.
            self.count = max(1, self.count - 2) if self.count > 2 else 1
            self.drop_next = self._control_law(now)
            return True
        if now >= self.drop_next:
            self.count += 1
            self.drop_next = self._control_law(now)
            return True
        return False


class BoundedQueueMixin:
    """Scheduler mixin: capacity enforcement + drop accounting.

    Schedulers call :meth:`_admit` on enqueue (False → reject arriving
    item) and :meth:`_shed` for every dropped item.  Bounds are off by
    default (``configure_bounds`` never called): zero overhead, zero
    behaviour change.
    """

    _bounds: Optional[QueueBounds] = None
    _on_drop = None
    _clock = None
    #: lifetime items shed by the bounds policy
    dropped: int = 0

    def configure_bounds(self, bounds: Optional[QueueBounds],
                         on_drop=None, clock=None) -> None:
        """Install (or clear, with ``None``) queue bounds.

        ``on_drop(tenant, item, nbytes, reason)`` is invoked for every
        shed item so the caller can retire/recycle what it owns;
        ``clock`` (→ sim-time us) enables sojourn timestamps, required
        for the ``codel`` policy.
        """
        if bounds is not None and bounds.policy == DROP_CODEL and clock is None:
            raise ValueError("codel policy requires a clock")
        self._bounds = bounds
        self._on_drop = on_drop
        self._clock = clock
        self._codel_states = {}

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def _codel_state(self, tenant: str) -> CodelState:
        state = self._codel_states.get(tenant)
        if state is None:
            state = CodelState(self._bounds.codel_target_us,
                               self._bounds.codel_interval_us)
            self._codel_states[tenant] = state
        return state

    def _shed(self, tenant: str, item: object, nbytes: int,
              reason: str) -> None:
        self.dropped += 1
        per_tenant = getattr(self, "tenant_dropped", None)
        if per_tenant is not None:
            per_tenant[tenant] = per_tenant.get(tenant, 0) + 1
        if self._on_drop is not None:
            self._on_drop(tenant, item, nbytes, reason)
