"""Multi-tenant overload protection: admission, bounds, backpressure.

Four cooperating pieces (all opt-in; the default data path is
byte-identical with QoS disabled):

* **Admission control** (:mod:`.admission`) — per-tenant token buckets
  and an SLO-aware gate at the ingress that rejects early when the
  estimated queueing delay would blow the tenant's deadline budget.
* **Bounded queues** (:mod:`.bounded`) — per-tenant scheduler capacity
  with pluggable shed policy: tail-drop, head-drop-stalest, or a
  CoDel-style sojourn-time dropper driven by sim time.
* **Credit-based backpressure** (:mod:`.credits`) — engines grant
  per-tenant credit windows to the gateway and local senders, shrinking
  them as DWRR backlog grows, so congestion propagates hop-by-hop.
* **Priority classes** (:mod:`.policy`) — guaranteed / standard /
  best-effort classes with graceful degradation: best-effort traffic is
  shed first and goodput is reported per class.
"""

from .admission import AdmissionGate, IngressQos, TokenBucket, qos_for_platform
from .bounded import (
    CodelState,
    DROP_CODEL,
    DROP_HEAD,
    DROP_POLICIES,
    DROP_TAIL,
    QueueBounds,
)
from .credits import CreditController, CreditError
from .policy import (
    CLASS_HEADROOM,
    QOS_BEST_EFFORT,
    QOS_CLASSES,
    QOS_GUARANTEED,
    QOS_STANDARD,
    TenantQosPolicy,
)

__all__ = [
    "AdmissionGate",
    "CLASS_HEADROOM",
    "CodelState",
    "CreditController",
    "CreditError",
    "DROP_CODEL",
    "DROP_HEAD",
    "DROP_POLICIES",
    "DROP_TAIL",
    "IngressQos",
    "QOS_BEST_EFFORT",
    "QOS_CLASSES",
    "QOS_GUARANTEED",
    "QOS_STANDARD",
    "QueueBounds",
    "TenantQosPolicy",
    "TokenBucket",
    "qos_for_platform",
]
