"""Hardware models: cores, DMA engines, NICs, links, nodes, cluster."""

from .cpu import CoreKind, CorePool, PinnedCore
from .dma import SocDmaEngine
from .nic import rss_queue
from .topology import Cluster, Link, Node, build_cluster

__all__ = [
    "CoreKind",
    "CorePool",
    "Cluster",
    "Link",
    "Node",
    "PinnedCore",
    "SocDmaEngine",
    "build_cluster",
    "rss_queue",
]
