"""Ethernet NIC helpers: Receive Side Scaling (RSS).

Palladium's ingress uses RSS to spread external client connections over
worker processes pinned to distinct cores (§3.6), achieving the effect
of aRFS without special NIC support.  We model the RSS hash as a stable
hash of the flow identifier mapped onto the active queue set.
"""

from __future__ import annotations

import hashlib

__all__ = ["rss_queue"]


def rss_queue(flow_id: object, queues: int) -> int:
    """Map a flow identifier to one of ``queues`` RX queues.

    Deterministic (Toeplitz-like stable hashing) so a connection always
    lands on the same worker, and uniform across flows.
    """
    if queues < 1:
        raise ValueError("queues must be >= 1")
    digest = hashlib.sha256(repr(flow_id).encode()).digest()
    return int.from_bytes(digest[:4], "big") % queues
