"""Processor models: host x86 cores and wimpy DPU ARM cores.

Work is expressed in *host-core microseconds*; running the same work on
a DPU core inflates it by the calibrated ``dpu_cost_factor`` (the
Bluefield-2's A72 cores run at 2.0 GHz vs 3.7 GHz on the host, §4.3.1).

Two usage patterns appear in the data plane:

* **Scheduled work** — a function or stack component claims any free
  core in a pool for the duration of a piece of work
  (:meth:`CorePool.execute`).
* **Pinned busy-polling** — a run-to-completion loop (DNE worker,
  ingress worker, FUYAO poller) owns a core outright and reports
  *useful* vs *occupied* time separately (:meth:`CorePool.pin`), which
  is exactly the distinction Palladium's ingress autoscaler measures
  (§3.6) and Fig. 16 (4)-(6) plot.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Environment, Resource, UtilizationTracker

__all__ = ["CoreKind", "CorePool", "PinnedCore"]


class CoreKind:
    """Processor families used in the testbed."""

    X86 = "x86"
    ARM = "arm"


class PinnedCore:
    """A core dedicated to one busy-polling loop.

    The loop occupies the core at 100 % whenever pinned (as the paper
    observes for the DNE: "maintaining 100 % utilization of the assigned
    wimpy DPU core regardless of the load").  Useful work performed in
    the loop is accounted via :meth:`work`, so experiments can report
    both raw occupancy and useful utilization.
    """

    def __init__(self, env: Environment, pool: "CorePool", name: str = ""):
        self.env = env
        self.pool = pool
        self.name = name or f"{pool.name}-pinned"
        self.tracker = UtilizationTracker(self.name)
        self._pinned = False
        self._pool_slot = None
        #: serializes work items: one core executes one thing at a time
        self._slot = Resource(env, capacity=1, name=f"{self.name}-slot")
        #: reusable sentinel for the uncontended ``work`` fast path
        #: (capacity 1: at most one fast-path holder at a time)
        self._token = object()

    @property
    def factor(self) -> float:
        return self.pool.factor

    def pin(self) -> None:
        """Dedicate the core (counts as fully busy from now on).

        The pinned loop holds one slot of the pool's scheduler outright,
        so a pool whose every core is pinned admits no scheduled work.
        """
        if self._pinned:
            return
        self._pool_slot = self.pool.resource.request()
        if not self._pool_slot.triggered:
            raise RuntimeError(
                f"cannot pin {self.name!r}: all cores of {self.pool.name!r} busy"
            )
        self.tracker.begin_busy(self.env.now)
        self._pinned = True

    def unpin(self) -> None:
        """Release the core back to the pool."""
        if not self._pinned:
            return
        self.pool.resource.release(self._pool_slot)
        self._pool_slot = None
        self.tracker.end_busy(self.env.now)
        self._pinned = False

    def work(self, host_us: float):
        """Generator: spend ``host_us`` of host-equivalent work here.

        The elapsed simulated time is scaled by the core's speed factor
        and recorded as useful time.

        Uncontended work items (the overwhelmingly common case for a
        run-to-completion loop that serializes its own work) take a
        token fast path through the slot resource: no Request object,
        no grant-event round-trip — just the timeout.  Contended items
        fall back to the full request/queue path.
        """
        if not self._pinned:
            raise RuntimeError(f"core {self.name!r} is not pinned")
        duration = host_us * self.pool.factor
        self.tracker.add_useful(duration)
        slot = self._slot
        users = slot.users
        if not users and not slot.queue:
            # inlined _account(): empty users accrues zero busy area
            slot._last_change = self.env._now
            token = self._token
            users.append(token)
            try:
                yield self.env.timeout(duration)
            finally:
                slot.release(token)
            return
        req = slot.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            slot.release(req)

    def work_time(self, host_us: float) -> float:
        """Scaled duration of ``host_us`` of work without yielding."""
        return host_us * self.pool.factor

    #: common compute-context protocol (shared with CorePool.run)
    run = work

    def useful_utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time spent on useful work since ``since``."""
        return self.tracker.useful_fraction(self.env.now, since)


class CorePool:
    """A pool of identical cores with shared-queue scheduling."""

    def __init__(
        self,
        env: Environment,
        cores: int,
        kind: str = CoreKind.X86,
        factor: float = 1.0,
        name: str = "cpu",
    ):
        if cores < 1:
            raise ValueError("a core pool needs at least one core")
        self.env = env
        self.kind = kind
        self.factor = factor
        self.name = name
        self.total_cores = cores
        self.resource = Resource(env, capacity=cores, name=name)
        self.pinned: List[PinnedCore] = []

    @property
    def free_cores(self) -> int:
        """Cores not currently claimed by pinned loops or scheduled work."""
        return self.total_cores - self.resource.count

    def allocate_pinned(self, name: str = "") -> PinnedCore:
        """Create and pin a dedicated core for a busy-poll loop."""
        core = PinnedCore(self.env, self, name=name)
        core.pin()
        self.pinned.append(core)
        return core

    def execute(self, host_us: float, priority: int = 0):
        """Generator: run ``host_us`` of host-equivalent work on any core.

        Uncontended runs (free core, empty queue) take the token fast
        path — no Request object, no grant round-trip; busy-time
        accounting is identical on both paths.
        """
        duration = host_us * self.factor
        res = self.resource
        users = res.users
        if len(users) < res.capacity and not res.queue:
            # inlined _account() (request() would do the same)
            now = self.env._now
            res._busy_area += len(users) * (now - res._last_change)
            res._last_change = now
            token = object()
            users.append(token)
            try:
                yield self.env.timeout(duration)
            finally:
                res.release(token)
            return
        req = res.request(priority)
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            res.release(req)

    #: common compute-context protocol (shared with PinnedCore.run)
    run = execute

    def scheduled_busy_time(self) -> float:
        """Core-microseconds consumed by scheduled (non-pinned) work.

        Pinned loops hold pool slots, so subtract their occupancy from
        the raw resource busy time.
        """
        now = self.env.now
        pinned_busy = sum(c.tracker.occupied_time(now) for c in self.pinned
                          if c._pinned or c.tracker.occupied > 0)
        return self.resource.busy_time() - pinned_busy

    def total_busy_time(self) -> float:
        """Cumulative core-us consumed (scheduled + pinned occupancy).

        Take two snapshots and divide the delta by the window length to
        get windowed utilization.
        """
        return self.resource.busy_time()

    def utilization_pct(self, since: float = 0.0, baseline_busy: float = 0.0) -> float:
        """Pool usage in percent-of-one-core over ``[since, now]``.

        ``baseline_busy`` must be the :meth:`total_busy_time` snapshot
        taken at ``since`` (0 when measuring from the start).
        """
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        return 100.0 * (self.total_busy_time() - baseline_busy) / elapsed
