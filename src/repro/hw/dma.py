"""DMA engine models.

Two engines matter for Palladium's on-path vs off-path choice (§2.1,
Fig. 3, Fig. 11):

* The **SoC DMA** on the Bluefield's ARM complex: low latency for a
  single small transfer (2.6 us for a 64 B read, per [90]) but with a
  weak engine that saturates under concurrent traffic — the on-path
  mode's downfall.
* The **RNIC DMA**, which "runs at line rate" (§2.1): its cost is
  already folded into the per-endpoint `endhost_per_byte_us` of the
  RDMA path, so off-path transfers need no extra serialization point.
"""

from __future__ import annotations

from ..config import CostModel
from ..sim import Environment, Resource

__all__ = ["SocDmaEngine"]


class SocDmaEngine:
    """The DPU SoC's DMA engine, modeled as a single rate-limited server.

    All on-path transfers between host memory and DPU-local buffers
    serialize through this engine; its queue is what collapses the
    on-path mode at high concurrency (Fig. 11 (2)).
    """

    def __init__(self, env: Environment, cost: CostModel, name: str = "soc-dma"):
        self.env = env
        self.cost = cost
        self.name = name
        self._engine = Resource(env, capacity=1, name=name)
        self.transfers = 0
        self.bytes_moved = 0

    def transfer(self, nbytes: int):
        """Generator: move ``nbytes`` between host and DPU memory."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        service = self.cost.soc_dma_time(nbytes)
        req = self._engine.request()
        yield req
        try:
            yield self.env.timeout(service)
            self.transfers += 1
            self.bytes_moved += nbytes
        finally:
            self._engine.release(req)

    def utilization(self, since: float = 0.0) -> float:
        """Mean engine occupancy since ``since``."""
        return self._engine.utilization(since)
