"""Physical topology: links, switches, nodes, and the testbed cluster.

The testbed (§4) is four nodes: two DPU-equipped workers, one ingress
node (two ConnectX-6 RNICs: one facing the RDMA fabric, one acting as an
Ethernet NIC toward clients) and one client node.  Workers and the
ingress RNIC hang off a 200 Gbps RDMA switch; the client and the
ingress Ethernet NIC share a separate 200 Gbps Ethernet switch.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..config import ClusterSpec, CostModel, NodeSpec
from ..sim import Environment, Resource

from .cpu import CoreKind, CorePool
from .dma import SocDmaEngine

__all__ = ["Link", "Node", "Cluster", "build_cluster"]


class Link:
    """A half-duplex-per-direction point-to-point link.

    ``send`` serializes the frame at the link rate (contending with
    other frames in the same direction) and then applies propagation
    plus fixed per-hop latency.
    """

    def __init__(
        self,
        env: Environment,
        bytes_per_us: float,
        base_latency_us: float,
        name: str = "link",
    ):
        if bytes_per_us <= 0:
            raise ValueError("link rate must be positive")
        self.env = env
        self.bytes_per_us = bytes_per_us
        self.base_latency_us = base_latency_us
        self.name = name
        self._tx = Resource(env, capacity=1, name=f"{name}-tx")
        self.frames = 0
        self.bytes_sent = 0
        #: fault state: a downed link stalls frames until recovery (the
        #: flap model); ``degrade_factor`` > 1 stretches serialization
        #: (bandwidth degradation).  Both default to the no-fault fast
        #: path — a single attribute check per frame.
        self.up = True
        self.degrade_factor = 1.0
        self.flaps = 0
        self.downtime_us = 0.0
        self._down_since = 0.0
        self._resume_event = None
        #: sentinel granted to an uncontended tx stage in place of a
        #: full Request event (at most one in flight per link direction)
        self._token = object()

    # -- fault injection -------------------------------------------------------
    def fail(self) -> None:
        """Take the link down; in-flight frames finish, new ones stall."""
        if self.up:
            self.up = False
            self.flaps += 1
            self._down_since = self.env.now

    def recover(self) -> None:
        """Bring the link back up and release stalled frames."""
        if not self.up:
            self.up = True
            self.downtime_us += self.env.now - self._down_since
            event, self._resume_event = self._resume_event, None
            if event is not None and not event.triggered:
                event.succeed()

    def degrade(self, factor: float) -> None:
        """Stretch serialization time by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError(f"degrade factor must be >= 1, got {factor}")
        self.degrade_factor = factor

    def restore(self) -> None:
        """Clear any bandwidth degradation."""
        self.degrade_factor = 1.0

    def _wait_up(self):
        """Generator: block until the link is up again."""
        while not self.up:
            if self._resume_event is None or self._resume_event.triggered:
                self._resume_event = self.env.event()
            yield self._resume_event

    def transmit(self, nbytes: int):
        """Generator: move one frame of ``nbytes`` across the link."""
        if not self.up:
            yield from self._wait_up()
        env = self.env
        serialization = nbytes * self.degrade_factor / self.bytes_per_us
        tx = self._tx
        if not tx.users and not tx.queue:
            # Uncontended fast path: grant a bare token instead of a
            # Request event round-trip (empty user list means no
            # busy-area accrues over the update, so only the accounting
            # timestamp moves; ``release`` resumes normal bookkeeping).
            tx._last_change = env._now
            token = self._token
            tx.users.append(token)
            try:
                yield env.timeout(serialization)
            finally:
                tx.release(token)
        else:
            req = tx.request()
            yield req
            try:
                yield env.timeout(serialization)
            finally:
                tx.release(req)
        yield env.timeout(self.base_latency_us)
        self.frames += 1
        self.bytes_sent += nbytes

    def utilization(self, since: float = 0.0) -> float:
        return self._tx.utilization(since)


class Node:
    """A server node: host cores, optional DPU cores + SoC DMA."""

    def __init__(self, env: Environment, spec: NodeSpec, cost: CostModel):
        self.env = env
        self.spec = spec
        self.cost = cost
        self.name = spec.name
        self.cpu = CorePool(env, spec.cpu_cores, CoreKind.X86, 1.0, name=f"{spec.name}-cpu")
        self.dpu: Optional[CorePool] = None
        self.soc_dma: Optional[SocDmaEngine] = None
        if spec.has_dpu:
            self.dpu = CorePool(
                env, spec.dpu_cores, CoreKind.ARM, cost.dpu_cost_factor,
                name=f"{spec.name}-dpu",
            )
            self.soc_dma = SocDmaEngine(env, cost, name=f"{spec.name}-soc-dma")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} dpu={self.spec.has_dpu}>"


class Cluster:
    """The assembled testbed: nodes plus per-direction fabric links."""

    def __init__(self, env: Environment, spec: ClusterSpec):
        self.env = env
        self.spec = spec
        self.cost = spec.cost
        self.workers: List[Node] = [
            Node(env, spec.worker_spec(i), spec.cost) for i in range(spec.workers)
        ]
        self.ingress_node = Node(env, spec.ingress_spec(), spec.cost)
        self.client_node = Node(env, spec.client_spec(), spec.cost)
        self.nodes: Dict[str, Node] = {n.name: n for n in self.workers}
        self.nodes[self.ingress_node.name] = self.ingress_node
        self.nodes[self.client_node.name] = self.client_node

        cost = spec.cost
        #: directed RDMA-fabric links between every pair of fabric
        #: endpoints (workers + ingress RNIC), through the 200 G switch.
        self._fabric: Dict[tuple, Link] = {}
        fabric_members = [n.name for n in self.workers] + [self.ingress_node.name]
        for src in fabric_members:
            for dst in fabric_members:
                if src != dst:
                    self._fabric[(src, dst)] = Link(
                        env,
                        cost.fabric_bytes_per_us,
                        cost.rdma_base_latency_us,
                        name=f"fabric:{src}->{dst}",
                    )
        #: Ethernet links between client node and ingress node.
        self.ether_up = Link(
            env, cost.ether_bytes_per_us, cost.ether_base_latency_us, name="ether-up"
        )
        self.ether_down = Link(
            env, cost.ether_bytes_per_us, cost.ether_base_latency_us, name="ether-down"
        )

    def fabric_link(self, src: str, dst: str) -> Link:
        """The directed RDMA link from node ``src`` to node ``dst``."""
        try:
            return self._fabric[(src, dst)]
        except KeyError:
            raise KeyError(f"no fabric path {src} -> {dst}") from None

    def node(self, name: str) -> Node:
        return self.nodes[name]


def build_cluster(
    env: Environment,
    cost: Optional[CostModel] = None,
    workers: int = 2,
) -> Cluster:
    """Build the paper's testbed with optional cost-model override."""
    spec = ClusterSpec(workers=workers, cost=cost or CostModel())
    return Cluster(env, spec)
