"""Palladium's HTTP/TCP-to-RDMA cluster ingress gateway (§3.6, Fig. 10).

The gateway terminates external HTTP/TCP at the cluster edge and moves
only the payload onward over the RDMA fabric — the "early transport
conversion" that removes every software protocol stack from the worker
nodes (Fig. 4 (2)).

Architecture mirrors the paper: a master process handling control
(configuration, horizontal scaling) and N worker processes, each pinned
to a CPU core, each running a batched run-to-completion event loop over
F-stack RX, NGINX-grade HTTP processing, and RDMA send/receive.
External connections are spread over workers with RSS.

The ingress node carries no DPU: its standalone ConnectX-6 talks to the
worker DNEs as an ordinary fabric peer, with its own per-tenant buffer
pools posted to shared receive queues for response traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import CostModel
from ..dataplane import KIND_REQUEST, VIA_ENGINE, Message
from ..dne.routing import InterNodeRoutes, RouteError
from ..hw import Cluster
from ..memory import MemoryPool, PoolExhausted
from ..net import FStack, HttpProcessor, HttpRequest, HttpResponse
from ..rdma import ConnectionManager, Opcode, RdmaFabric, WorkRequest
from ..sim import Environment, LatencyStats, RateMeter, Store

from .gateway import Autoscaler, ClientConnection, GatewayStats, GatewayWorker, rss_pick

__all__ = ["PalladiumIngress"]


def _next_rid(env) -> int:
    # Request ids can seed the RSS fallback hash in the completion
    # loop, so like connection ids they are scoped per-environment.
    n = getattr(env, "_pal_rid_seq", 1_000_000) + 1
    env._pal_rid_seq = n
    return n

#: resolver: HTTP path -> (tenant, entry function, request body bytes ok)
EntryResolver = Callable[[str], Tuple[str, str]]


class PalladiumIngress:
    """The HTTP/TCP-to-RDMA converting gateway."""

    AGENT = "_ingress"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        fabric: RdmaFabric,
        cost: CostModel,
        resolver: EntryResolver,
        min_workers: int = 1,
        max_workers: int = 8,
        autoscale: bool = False,
        recv_buffers: int = 128,
        stats_bucket_us: float = 1_000_000.0,
        service_resolver=None,
        qos=None,
    ):
        #: optional :class:`repro.qos.IngressQos` — admission control +
        #: credit-based backpressure at the edge; ``None`` (default)
        #: keeps the request path byte-identical to the pre-QoS gateway
        self.qos = qos
        #: optional logical-service -> replica resolution (elastic
        #: platforms); identity when not provided
        self.service_resolver = service_resolver or (lambda fn: fn)
        self.env = env
        self.cluster = cluster
        self.fabric = fabric
        self.cost = cost
        self.resolver = resolver
        self.node = cluster.ingress_node
        self.rnic = fabric.install_rnic(self.node.name)
        self.conn_mgr = ConnectionManager(env, fabric, self.node.name, cost)
        self.routes = InterNodeRoutes(self.node.name)
        self.recv_buffers = recv_buffers

        self.pools: Dict[str, MemoryPool] = {}
        self.workers: List[GatewayWorker] = []
        self._worker_seq = 0
        self.stats = GatewayStats()
        self.latency = LatencyStats("ingress-e2e")
        self.throughput = RateMeter("ingress-rps", bucket=stats_bucket_us)
        #: rid -> (connection, worker, request, accept time, span)
        self._pending: Dict[int, Tuple[ClientConnection, GatewayWorker, HttpRequest, float, object]] = {}
        self._running = False
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.autoscale = autoscale
        self.autoscaler: Optional[Autoscaler] = None
        #: other gateway instances sharing this node's RNIC (multi-
        #: instance deployments behind a load balancer); completions are
        #: routed to whichever instance owns the request id.
        self.siblings: List["PalladiumIngress"] = [self]
        #: health flag polled by the load balancer's check loop
        self.healthy = True

    # -- fault injection --------------------------------------------------------
    def fail(self) -> None:
        """Fault injection: this gateway instance stops serving."""
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True

    def load(self) -> int:
        """Outstanding requests — the tier's bounded-load ECMP signal."""
        return len(self._pending)

    # -- setup ----------------------------------------------------------------
    def add_tenant(self, tenant: str, buffers: int = 256, buffer_bytes: int = 8192) -> None:
        """Create the gateway's pool for a tenant and register it."""
        if tenant in self.pools:
            raise ValueError(f"tenant {tenant!r} already added to ingress")
        pool = MemoryPool(self.env, tenant, buffers, buffer_bytes,
                          name=f"pool:ingress:{tenant}")
        self.pools[tenant] = pool
        self.rnic.register_pool(pool)

    def start(self) -> None:
        """Bring up workers, CQ dispatch, replenisher, and autoscaler."""
        if self._running:
            raise RuntimeError("ingress already started")
        self._running = True
        for _ in range(self.min_workers):
            self._spawn_worker()
        for tenant in self.pools:
            self._post_recv(tenant, self.recv_buffers)
        self.env.process(self._cq_dispatch(), name="ingress-cq")
        self.env.process(self._replenisher(), name="ingress-replenish")
        self.env.process(self._warm_connections(), name="ingress-warm")
        if self.autoscale:
            self.autoscaler = Autoscaler(
                self.env, self.cost,
                spawn=self._spawn_worker,
                reap=self._reap_worker,
                workers=lambda: self.workers,
                min_workers=self.min_workers,
                max_workers=self.max_workers,
            )
            self.env.process(self.autoscaler.run(), name="ingress-autoscale")

    def _warm_connections(self):
        for worker_node in [n.name for n in self.cluster.workers]:
            for tenant in self.pools:
                yield from self.conn_mgr.warm_up(worker_node, tenant)

    def _spawn_worker(self) -> None:
        core = self.node.cpu.allocate_pinned(f"ingress-w{self._worker_seq}")
        worker = GatewayWorker(self.env, self._worker_seq, core,
                               name=f"ingress-w{self._worker_seq}")
        self._worker_seq += 1
        self.workers.append(worker)
        self.env.process(self._worker_loop(worker), name=worker.name)

    def _reap_worker(self) -> None:
        if len(self.workers) <= self.min_workers:
            return
        worker = self.workers.pop()
        worker.active = False
        worker.inbox.put(("shutdown", None))
        worker.core.unpin()

    # -- client-facing API -------------------------------------------------------
    def connect(self) -> ClientConnection:
        """Accept a new external TCP connection (handshake is charged
        lazily on the owning worker's first event)."""
        conn = ClientConnection(self.env)
        worker = rss_pick(self.workers, conn.conn_id)
        worker.inbox.put(("handshake", conn))
        return conn

    def submit(self, conn: ClientConnection, request: HttpRequest) -> None:
        """A request frame arrived from the Ethernet side."""
        request.connection_id = conn.conn_id
        worker = rss_pick(self.workers, conn.conn_id)
        worker.inbox.put(("request", (conn, request)))
        self.stats.accepted += 1

    # -- worker data-plane loop -----------------------------------------------------
    def _worker_loop(self, worker: GatewayWorker):
        fstack = FStack(self.env, worker.core, self.cost, name=f"{worker.name}-fstack")
        http = HttpProcessor(worker.core, self.cost)
        while worker.active:
            event = yield worker.inbox.get()
            yield from worker.maybe_pause()
            kind, payload = event
            if kind == "shutdown":
                break
            if kind == "handshake":
                yield from fstack.handshake()
            elif kind == "request":
                conn, request = payload
                yield from self._handle_request(worker, fstack, http, conn, request)
            elif kind == "response":
                completion = payload
                yield from self._handle_response(worker, fstack, http, completion)

    def _handle_request(self, worker, fstack: FStack, http: HttpProcessor,
                        conn: ClientConnection, request: HttpRequest):
        yield from fstack.rx(request.wire_bytes)
        yield from http.parse(request.wire_bytes)
        tenant, entry_fn = self.resolver(request.path)
        entry_fn = self.service_resolver(entry_fn)
        tel = self.env.telemetry
        span = None
        if tel is not None:
            # The trace root: one span covering the whole request, from
            # HTTP accept to the response hitting the Ethernet wire.
            span = tel.tracer.start_span(
                f"request:{request.path}", category="request",
                node=self.node.name, actor=worker.name, tenant=tenant,
                entry=entry_fn, bytes=request.body_bytes)
            tel.metrics.counter(
                "ingress_requests_total", "HTTP requests accepted at the "
                "ingress.", labels=("tenant",)).labels(tenant).inc()
        if self.qos is not None:
            rejected = yield from self._admission_control(
                fstack, http, conn, request, tenant, entry_fn, span)
            if rejected:
                return
        pool = self.pools[tenant]
        try:
            buffer = pool.get(self.AGENT)
        except PoolExhausted:
            buffer = yield from pool.get_wait(self.AGENT)
        buffer.write(self.AGENT, request.body, request.body_bytes)
        rid = _next_rid(self.env)
        self._pending[rid] = (conn, worker, request, self.env.now, span)
        try:
            dst_node = self.routes.node_for(entry_fn)
        except RouteError:
            # Entry function unroutable (node failure without a
            # surviving replica): drop; the client's timeout fires.
            self._pending.pop(rid, None)
            pool.put(buffer, self.AGENT)
            self.stats.dropped += 1
            if tel is not None:
                tel.metrics.counter(
                    "ingress_dropped_total", "Requests the ingress could "
                    "not serve.", labels=("reason",)).labels("no-route").inc()
                tel.tracer.end_span(span, status="drop")
            return
        qp = yield from self.conn_mgr.get_connection(dst_node, tenant)
        message = Message(
            kind=KIND_REQUEST,
            rid=rid,
            src=self.AGENT,
            dst=entry_fn,
            reply_to=self.AGENT,
            tenant=tenant,
            via=VIA_ENGINE,
            owner=self.AGENT,
        )
        if span is not None:
            message.trace = span.context
        wr = WorkRequest(
            opcode=Opcode.SEND,
            buffer=buffer,
            length=request.body_bytes,
            message=message,
        )
        message.transfer(self.AGENT, f"rnic:{self.node.name}")
        self.rnic.post_send(qp, wr)

    def _admission_control(self, fstack: FStack, http: HttpProcessor,
                           conn: ClientConnection, request: HttpRequest,
                           tenant: str, entry_fn: str, span):
        """Generator: QoS gate before any buffer is pledged.

        Returns True when the request was rejected (and the 503 is on
        its way back to the client).  On admission this *blocks* until
        the destination engine grants the tenant a credit — the
        hop-by-hop backpressure that keeps the edge from burying a
        congested engine.
        """
        try:
            dst_node = self.routes.node_for(entry_fn)
        except RouteError:
            # Unroutable: let the normal path take its no-route drop.
            return False
        reason = self.qos.admit(tenant, dst_node)
        if reason is None:
            yield from self.qos.acquire_credit(dst_node, tenant)
            return False
        self.stats.dropped += 1
        self.stats.admission_rejected += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "ingress_dropped_total", "Requests the ingress could "
                "not serve.", labels=("reason",)).labels(
                    f"admission-{reason}").inc()
            tel.metrics.counter(
                "ingress_admission_rejected_total",
                "Requests shed by the QoS admission gate.",
                labels=("tenant", "reason")).labels(tenant, reason).inc()
            tel.tracer.end_span(span, status="reject")
        # Cheap rejection: a 503 straight off the worker core — no
        # buffer, no RDMA, no worker-node work.  That cheapness is the
        # whole point of admission control at the edge.
        response = HttpResponse(status=503, body=None, body_bytes=0,
                                request_id=request.request_id)
        yield from http.serialize(response.wire_bytes)
        yield from fstack.tx(response.wire_bytes)

        def _transit():
            yield from self.cluster.ether_down.transmit(response.wire_bytes)
            if conn.open:
                conn.inbox.put(response)
                conn.responses_received += 1

        self.env.process(_transit(), name="ingress-reject-tx")
        return True

    def _handle_response(self, worker, fstack: FStack, http: HttpProcessor, completion):
        rid = completion.message.rid
        entry = self._pending.pop(rid, None)
        buffer = completion.buffer
        body = buffer.read(f"rnic:{self.node.name}")
        length = completion.length
        # The response header ends its journey here; the receive buffer
        # is recycled immediately after the read.
        completion.message.transfer(f"rnic:{self.node.name}", self.AGENT)
        completion.message.retire(self.AGENT)
        buffer.pool.put(buffer, f"rnic:{self.node.name}")
        if entry is None:
            # Orphaned response: the pending entry was already reaped
            # (flushed send, sibling takeover) — count it visibly.
            self.stats.dropped += 1
            tel = self.env.telemetry
            if tel is not None:
                tel.metrics.counter(
                    "ingress_dropped_total", "Requests the ingress could "
                    "not serve.", labels=("reason",)).labels(
                        "orphan-response").inc()
            return
        conn, _worker, request, t0, span = entry
        response = HttpResponse(status=200, body=body, body_bytes=length,
                                request_id=request.request_id)
        yield from http.serialize(response.wire_bytes)
        yield from fstack.tx(response.wire_bytes)
        tel = self.env.telemetry

        def _transit():
            # Ethernet transit happens in the NIC, not the worker loop.
            yield from self.cluster.ether_down.transmit(response.wire_bytes)
            if conn.open:
                conn.inbox.put(response)
                conn.responses_received += 1
            self.stats.completed += 1
            self.latency.record(self.env.now - t0)
            self.throughput.record(self.env.now)
            if tel is not None and span is not None:
                tenant = span.tags.get("tenant", "")
                tel.metrics.counter(
                    "ingress_responses_total", "Responses delivered to "
                    "clients.", labels=("tenant",)).labels(tenant).inc()
                tel.metrics.histogram(
                    "ingress_latency_us", "End-to-end request latency at "
                    "the ingress.", labels=("tenant",)).labels(
                        tenant).observe(self.env.now - t0,
                                        trace_id=span.trace_id)
                tel.tracer.end_span(span)

        self.env.process(_transit(), name="ingress-ether-tx")

    # -- RDMA receive plumbing ---------------------------------------------------------
    def _cq_dispatch(self):
        """Route CQEs: responses to the owning worker, send-completions
        recycle their buffer.

        With multiple gateway instances sharing the node's RNIC, the
        response is handed to whichever *sibling* instance owns the
        request id.

        Batched: one wakeup drains every ready CQE (``poll_batch``)
        instead of one generator round-trip per completion; the
        per-CQE routing below is unchanged.
        """
        cq = self.rnic.cq
        while self._running:
            completions = yield cq.poll_batch()
            for completion in completions:
                self._dispatch_cqe(completion)

    def _dispatch_cqe(self, completion) -> None:
        if completion.is_recv:
            rid = completion.message.rid
            owner = next(
                (gw for gw in self.siblings if rid in gw._pending), self
            )
            entry = owner._pending.get(rid)
            worker = entry[1] if entry else rss_pick(owner.workers, rid or 0)
            worker.inbox.put(("response", completion))
        elif completion.opcode == Opcode.SEND and completion.buffer is not None:
            completion.buffer.pool.put(completion.buffer, self.AGENT)
            if not completion.ok:
                # Flushed send (peer died): the request is lost —
                # reclaim the stranded header and drop the pending
                # entry so state does not leak.
                rid = None
                if completion.message is not None:
                    rid = completion.message.rid
                    if completion.flushed:
                        completion.message.transfer(
                            f"rnic:{self.node.name}", self.AGENT)
                        completion.message.retire(self.AGENT)
                for gw in self.siblings:
                    if rid in gw._pending:
                        entry = gw._pending.pop(rid, None)
                        gw.stats.dropped += 1
                        tel = self.env.telemetry
                        if tel is not None:
                            tel.metrics.counter(
                                "ingress_dropped_total",
                                "Requests the ingress could not serve.",
                                labels=("reason",)).labels(
                                    "flushed-send").inc()
                            if entry[4] is not None:
                                tel.tracer.end_span(entry[4],
                                                    status="error")
                        break

    def _replenisher(self):
        """Keep per-tenant shared RQs stocked (the DNE core-thread analog)."""
        while self._running:
            yield self.env.timeout(50.0)
            for tenant in self.pools:
                srq = self.rnic.srq(tenant)
                consumed = srq.consumed_since_replenish
                if consumed:
                    srq.consumed_since_replenish = 0
                    self._post_recv(tenant, consumed)

    def _post_recv(self, tenant: str, count: int) -> None:
        pool = self.pools[tenant]
        for _ in range(count):
            try:
                buf = pool.get(self.AGENT)
            except PoolExhausted:
                break
            self.rnic.post_recv(tenant, buf, self.AGENT)
