"""Load balancing across multiple Palladium ingress instances.

The paper notes that the brief service interruption during worker
scaling (Fig. 14 (2)) "can be avoided by enabling load balancing
across multiple Palladium ingress instances" (§4.1.3).  This module
implements that extension: an L4-style balancer that spreads external
connections over N independent gateway instances, so a scale event in
one instance only pauses its share of connections.
"""

from __future__ import annotations

from typing import List

from ..hw import rss_queue
from ..net import HttpRequest
from ..sim import LatencyStats, RateMeter

from .gateway import ClientConnection
from .palladium import PalladiumIngress

__all__ = ["IngressLoadBalancer"]


class IngressLoadBalancer:
    """Connection-level balancer over several gateway instances.

    Exposes the same ``connect``/``submit`` surface as a single
    gateway, so load generators can drive it unchanged.
    """

    def __init__(self, instances: List[PalladiumIngress]):
        if not instances:
            raise ValueError("balancer needs at least one ingress instance")
        self.instances = instances
        self._owner: dict = {}
        env = instances[0].env
        self.latency = LatencyStats("lb-e2e")
        self.throughput = RateMeter("lb-rps")

    def start(self) -> None:
        for instance in self.instances:
            instance.siblings = list(self.instances)
            instance.start()

    def connect(self) -> ClientConnection:
        """Pin a new connection to an instance (stable L4 hashing)."""
        conn_probe = ClientConnection(self.instances[0].env)
        instance = self.instances[rss_queue(conn_probe.conn_id, len(self.instances))]
        # Re-register the connection with its owning instance.
        conn = instance.connect()
        self._owner[conn.conn_id] = instance
        return conn

    def submit(self, conn: ClientConnection, request: HttpRequest) -> None:
        self._owner[conn.conn_id].submit(conn, request)

    # -- aggregate metrics ----------------------------------------------------
    def completed(self) -> int:
        return sum(i.stats.completed for i in self.instances)

    def accepted(self) -> int:
        return sum(i.stats.accepted for i in self.instances)

    def paused_instances(self, now: float) -> int:
        """Instances currently inside a scale-event pause window."""
        count = 0
        for instance in self.instances:
            if any(w._pause_until > now for w in instance.workers):
                count += 1
        return count
