"""Load balancing across multiple Palladium ingress instances.

The paper notes that the brief service interruption during worker
scaling (Fig. 14 (2)) "can be avoided by enabling load balancing
across multiple Palladium ingress instances" (§4.1.3).  This module
implements that extension: an L4-style balancer that spreads external
connections over N independent gateway instances, so a scale event in
one instance only pauses its share of connections.

For the full hierarchical tier — consistent-hash spray, hot/cold flow
tables, failover state sync — see :mod:`repro.ingress.tier`; this
class remains the flat connection-spreader the seed experiments use.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hw import rss_queue
from ..net import HttpRequest
from ..sim import LatencyStats, RateMeter

from .gateway import ClientConnection
from .palladium import PalladiumIngress

__all__ = ["IngressLoadBalancer"]

#: amortized closed-connection sweep period (in connects)
_PRUNE_EVERY = 256


class IngressLoadBalancer:
    """Connection-level balancer over several gateway instances.

    Exposes the same ``connect``/``submit`` surface as a single
    gateway, so load generators can drive it unchanged.

    The owner map is bounded: entries are evicted when a connection
    closes (``close`` or the amortized sweep) or when its gateway is
    removed from rotation (``remove_instance``), so connection churn
    cannot grow it without limit.
    """

    def __init__(self, instances: List[PalladiumIngress],
                 health_check_period_us: float = 0.0):
        if not instances:
            raise ValueError("balancer needs at least one ingress instance")
        self.instances = instances
        self._gateway_label = {id(inst): f"gw{i}"
                               for i, inst in enumerate(instances)}
        #: conn_id -> (owning instance, connection); the connection is
        #: kept so closed entries can be swept without a client call
        self._owner: Dict[int, Tuple[PalladiumIngress, ClientConnection]] = {}
        self._connects = 0
        self.env = instances[0].env
        self.latency = LatencyStats("lb-e2e")
        self.throughput = RateMeter("lb-rps")
        #: with a positive period, a health-check loop ejects unhealthy
        #: instances and moves their connections to survivors (0 = off)
        self.health_check_period_us = health_check_period_us
        #: optional :class:`~repro.sim.TimerWheel`: when set before
        #: :meth:`start`, the health loop rides a coalesced periodic
        #: tick instead of a dedicated process + exact heap timer
        self.timer_wheel = None
        self.failovers = 0
        self.dropped = 0

    def start(self) -> None:
        for instance in self.instances:
            instance.siblings = list(self.instances)
            instance.start()
        if self.health_check_period_us > 0:
            if self.timer_wheel is not None:
                self.timer_wheel.periodic(self.health_check_period_us,
                                          self._health_sweep)
            else:
                self.env.process(self._health_loop(), name="lb-health")

    def _live(self) -> List[PalladiumIngress]:
        return [i for i in self.instances if i.healthy]

    def _count_failover(self) -> None:
        self.failovers += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "gateway_failovers_total",
                "Gateway failures absorbed by connection re-spray.").inc()

    def _health_loop(self):
        """Periodically eject dead backends, reassigning their
        connections over the survivors (stable hashing)."""
        while True:
            yield self.env.timeout(self.health_check_period_us)
            self._health_sweep()

    def _health_sweep(self) -> None:
        """One health-check pass (loop body / wheel tick)."""
        self.prune_closed()
        live = self._live()
        if len(live) == len(self.instances) or not live:
            return
        for conn_id, (owner, conn) in list(self._owner.items()):
            if not owner.healthy:
                heir = live[rss_queue(conn_id, len(live))]
                self._owner[conn_id] = (heir, conn)
                self._count_failover()

    def connect(self) -> ClientConnection:
        """Pin a new connection to an instance (stable L4 hashing)."""
        pool = self._live() or self.instances
        conn_probe = ClientConnection(self.env)
        instance = pool[rss_queue(conn_probe.conn_id, len(pool))]
        # Re-register the connection with its owning instance.
        conn = instance.connect()
        self._owner[conn.conn_id] = (instance, conn)
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "ingress_tier_spray_total",
                "L1 spray decisions per gateway.",
                labels=("gateway",)).labels(
                    self._gateway_label[id(instance)]).inc()
        self._connects += 1
        if self._connects % _PRUNE_EVERY == 0:
            self.prune_closed()
        return conn

    def submit(self, conn: ClientConnection, request: HttpRequest) -> None:
        entry = self._owner.get(conn.conn_id)
        if entry is None:
            # Closed (and swept) or never registered: nothing to route.
            self.dropped += 1
            return
        owner, _conn = entry
        if not owner.healthy:
            # Between health checks: fail over on first touch.
            live = self._live()
            if not live:
                self.dropped += 1
                return
            owner = live[rss_queue(conn.conn_id, len(live))]
            self._owner[conn.conn_id] = (owner, conn)
            self._count_failover()
        owner.submit(conn, request)

    # -- owner-map lifecycle --------------------------------------------------
    def close(self, conn: ClientConnection) -> None:
        """Client-initiated teardown: evict the owner entry now."""
        conn.open = False
        self._owner.pop(conn.conn_id, None)

    def prune_closed(self) -> int:
        """Evict entries whose connection has closed; returns count."""
        stale = [cid for cid, (_owner, conn) in self._owner.items()
                 if not conn.open]
        for conn_id in stale:
            del self._owner[conn_id]
        return len(stale)

    def remove_instance(self, instance: PalladiumIngress) -> int:
        """Take a gateway out of rotation, dropping its owner entries.

        Open connections owned by it are re-sprayed over the survivors
        (as a health-check eject would); closed ones are evicted.
        """
        if instance not in self.instances:
            raise ValueError("instance not part of this balancer")
        if len(self.instances) == 1:
            raise ValueError("cannot remove the last ingress instance")
        self.instances = [i for i in self.instances if i is not instance]
        moved = 0
        live = self._live()
        for conn_id, (owner, conn) in list(self._owner.items()):
            if owner is not instance:
                continue
            if conn.open and live:
                heir = live[rss_queue(conn_id, len(live))]
                self._owner[conn_id] = (heir, conn)
                self._count_failover()
            else:
                del self._owner[conn_id]
            moved += 1
        return moved

    # -- aggregate metrics ----------------------------------------------------
    def completed(self) -> int:
        return sum(i.stats.completed for i in self.instances)

    def accepted(self) -> int:
        return sum(i.stats.accepted for i in self.instances)

    def paused_instances(self, now: float) -> int:
        """Instances currently inside a scale-event pause window."""
        count = 0
        for instance in self.instances:
            if any(w._pause_until > now for w in instance.workers):
                count += 1
        return count
