"""Load balancing across multiple Palladium ingress instances.

The paper notes that the brief service interruption during worker
scaling (Fig. 14 (2)) "can be avoided by enabling load balancing
across multiple Palladium ingress instances" (§4.1.3).  This module
implements that extension: an L4-style balancer that spreads external
connections over N independent gateway instances, so a scale event in
one instance only pauses its share of connections.
"""

from __future__ import annotations

from typing import List

from ..hw import rss_queue
from ..net import HttpRequest
from ..sim import LatencyStats, RateMeter

from .gateway import ClientConnection
from .palladium import PalladiumIngress

__all__ = ["IngressLoadBalancer"]


class IngressLoadBalancer:
    """Connection-level balancer over several gateway instances.

    Exposes the same ``connect``/``submit`` surface as a single
    gateway, so load generators can drive it unchanged.
    """

    def __init__(self, instances: List[PalladiumIngress],
                 health_check_period_us: float = 0.0):
        if not instances:
            raise ValueError("balancer needs at least one ingress instance")
        self.instances = instances
        self._owner: dict = {}
        self.env = instances[0].env
        self.latency = LatencyStats("lb-e2e")
        self.throughput = RateMeter("lb-rps")
        #: with a positive period, a health-check loop ejects unhealthy
        #: instances and moves their connections to survivors (0 = off)
        self.health_check_period_us = health_check_period_us
        self.failovers = 0
        self.dropped = 0

    def start(self) -> None:
        for instance in self.instances:
            instance.siblings = list(self.instances)
            instance.start()
        if self.health_check_period_us > 0:
            self.env.process(self._health_loop(), name="lb-health")

    def _live(self) -> List[PalladiumIngress]:
        return [i for i in self.instances if i.healthy]

    def _health_loop(self):
        """Periodically eject dead backends, reassigning their
        connections over the survivors (stable hashing)."""
        while True:
            yield self.env.timeout(self.health_check_period_us)
            live = self._live()
            if len(live) == len(self.instances) or not live:
                continue
            for conn_id, owner in list(self._owner.items()):
                if not owner.healthy:
                    self._owner[conn_id] = live[rss_queue(conn_id, len(live))]
                    self.failovers += 1

    def connect(self) -> ClientConnection:
        """Pin a new connection to an instance (stable L4 hashing)."""
        pool = self._live() or self.instances
        conn_probe = ClientConnection(self.env)
        instance = pool[rss_queue(conn_probe.conn_id, len(pool))]
        # Re-register the connection with its owning instance.
        conn = instance.connect()
        self._owner[conn.conn_id] = instance
        return conn

    def submit(self, conn: ClientConnection, request: HttpRequest) -> None:
        owner = self._owner[conn.conn_id]
        if not owner.healthy:
            # Between health checks: fail over on first touch.
            live = self._live()
            if not live:
                self.dropped += 1
                return
            owner = live[rss_queue(conn.conn_id, len(live))]
            self._owner[conn.conn_id] = owner
            self.failovers += 1
        owner.submit(conn, request)

    # -- aggregate metrics ----------------------------------------------------
    def completed(self) -> int:
        return sum(i.stats.completed for i in self.instances)

    def accepted(self) -> int:
        return sum(i.stats.accepted for i in self.instances)

    def paused_instances(self, now: float) -> int:
        """Instances currently inside a scale-event pause window."""
        count = 0
        for instance in self.instances:
            if any(w._pause_until > now for w in instance.workers):
                count += 1
        return count
