"""Ingress gateway common machinery.

All three evaluated gateways (§4.1.3) share this scaffolding:

* :class:`ClientConnection` — one external HTTP/TCP connection; the
  load generator blocks on its ``inbox`` for responses.
* :class:`GatewayWorker` — one data-plane worker process pinned to a
  CPU core running a run-to-completion loop over an event inbox.
* :class:`Autoscaler` — the master process' hysteresis policy (§3.6):
  spawn a worker when mean *useful* utilization exceeds 60 %, reap one
  when it drops below 30 %.  Scale events briefly pause the data plane
  (worker restart, visible as the dips in Fig. 14 (2)).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..config import CostModel
from ..hw import rss_queue
from ..sim import Environment, Event, Store, TimeSeries

__all__ = ["ClientConnection", "GatewayWorker", "Autoscaler", "GatewayStats"]


def _next_conn_id(env: Environment) -> int:
    # Connection ids seed the RSS hash that picks a gateway worker, so
    # they must be scoped to the simulation: a process-global counter
    # would make a run's worker assignment depend on how many
    # simulations ran before it in the same interpreter.
    n = getattr(env, "_conn_id_seq", 0) + 1
    env._conn_id_seq = n
    return n


class ClientConnection:
    """One external client connection terminated at the gateway."""

    def __init__(self, env: Environment):
        self.conn_id = _next_conn_id(env)
        self.env = env
        #: responses delivered back to the client
        self.inbox: Store = Store(env, name=f"conn{self.conn_id}")
        self.open = True
        self.requests_sent = 0
        self.responses_received = 0

    def close(self) -> None:
        """Client-side teardown; balancers sweep closed connections."""
        self.open = False


class GatewayStats:
    """Aggregate gateway counters.

    ``dropped`` counts every request the gateway failed to serve —
    no-route, flushed sends, orphaned responses, and (QoS) admission
    rejections; ``admission_rejected`` separates the deliberate sheds
    from the failures.
    """

    def __init__(self):
        self.accepted = 0
        self.completed = 0
        self.dropped = 0
        self.admission_rejected = 0


class GatewayWorker:
    """One gateway worker process: pinned core + event inbox."""

    def __init__(self, env: Environment, index: int, core, name: str = ""):
        self.env = env
        self.index = index
        self.core = core
        self.name = name or f"gw-worker{index}"
        self.inbox: Store = Store(env, name=f"{self.name}-inbox")
        self.active = True
        self._pause_until = 0.0

    def pause(self, duration_us: float) -> None:
        """Service interruption while the worker process restarts."""
        self._pause_until = max(self._pause_until, self.env.now + duration_us)

    def maybe_pause(self):
        """Generator: honor any pending restart pause."""
        if self.env.now < self._pause_until:
            yield self.env.timeout(self._pause_until - self.env.now)


class Autoscaler:
    """Hysteresis-based horizontal scaling of gateway workers (§3.6)."""

    def __init__(
        self,
        env: Environment,
        cost: CostModel,
        spawn: Callable[[], None],
        reap: Callable[[], None],
        workers: Callable[[], List[GatewayWorker]],
        min_workers: int = 1,
        max_workers: int = 8,
    ):
        self.env = env
        self.cost = cost
        self._spawn = spawn
        self._reap = reap
        self._workers = workers
        self.min_workers = min_workers
        self.max_workers = max_workers
        #: time series of (time, active workers) for Fig. 14
        self.worker_series = TimeSeries("workers")
        #: time series of (time, mean useful utilization)
        self.util_series = TimeSeries("utilization")
        self.scale_events = 0
        self._snapshots = {}

    def _mean_useful_utilization(self, period_us: float) -> float:
        workers = self._workers()
        if not workers:
            return 0.0
        utils = []
        for worker in workers:
            prev = self._snapshots.get(worker.name, 0.0)
            current = worker.core.tracker.useful
            utils.append((current - prev) / period_us)
            self._snapshots[worker.name] = current
        return sum(utils) / len(utils)

    def run(self):
        """Generator: the master process' periodic scaling loop."""
        period = self.cost.ingress_autoscale_period_us
        while True:
            yield self.env.timeout(period)
            util = self._mean_useful_utilization(period)
            workers = self._workers()
            self.util_series.record(self.env.now, util)
            self.worker_series.record(self.env.now, len(workers))
            if util > self.cost.ingress_scale_up_threshold and len(workers) < self.max_workers:
                self._spawn()
                self.scale_events += 1
                self._pause_all()
            elif util < self.cost.ingress_scale_down_threshold and len(workers) > self.min_workers:
                self._reap()
                self.scale_events += 1
                self._pause_all()

    def _pause_all(self) -> None:
        for worker in self._workers():
            worker.pause(self.cost.ingress_scale_event_pause_us)


def rss_pick(workers: List[GatewayWorker], conn_id: int) -> GatewayWorker:
    """RSS-style stable assignment of a connection to a worker."""
    if not workers:
        raise RuntimeError("gateway has no active workers")
    return workers[rss_queue(conn_id, len(workers))]
