"""Cluster ingress gateways: Palladium's RDMA-converting gateway and baselines."""

from .adapter import TcpWorkerAdapter
from .balancer import IngressLoadBalancer
from .gateway import Autoscaler, ClientConnection, GatewayStats, GatewayWorker
from .palladium import PalladiumIngress
from .proxy import FIngress, KIngress, ProxyIngress
from .tier import (
    ConsistentHashRing,
    FlowTable,
    GatewayShard,
    GatewayTier,
    TieredIngress,
)

__all__ = [
    "Autoscaler",
    "ClientConnection",
    "ConsistentHashRing",
    "FIngress",
    "FlowTable",
    "GatewayShard",
    "GatewayStats",
    "GatewayTier",
    "GatewayWorker",
    "IngressLoadBalancer",
    "KIngress",
    "PalladiumIngress",
    "ProxyIngress",
    "TcpWorkerAdapter",
    "TieredIngress",
]
