"""Worker-side TCP termination adapter (the *deferred* conversion).

The baseline data planes (Fig. 4 (1)) terminate the external HTTP/TCP
connection *again* on the worker node: the proxied request is processed
by the worker's own protocol stack (kernel TCP for FUYAO-K/NightCore,
F-stack for SPRIGHT/FUYAO-F) before the payload finally enters the
shared-memory data plane.  This adapter is that component: a
pseudo-function registered on the node that bridges proxied TCP traffic
to the local entry function and relays responses back to the ingress.

Palladium has no adapter — that is precisely its point (§3.6).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..config import CostModel
from ..dataplane import KIND_REQUEST, VIA_SKMSG, Message
from ..memory import BufferDescriptor, PoolExhausted
from ..net import FStack, HttpProcessor, HttpRequest, KernelTcpStack
from ..platform.iolib import NodeRuntime
from ..sim import Environment, Store

__all__ = ["TcpWorkerAdapter"]

_rids = itertools.count(5_000_000)


class TcpWorkerAdapter:
    """Terminates proxied TCP on a worker and injects into shared memory."""

    KERNEL = "kernel"
    FSTACK = "fstack"

    def __init__(
        self,
        env: Environment,
        runtime: NodeRuntime,
        cost: CostModel,
        stack_kind: str = FSTACK,
        name: str = "",
    ):
        if stack_kind not in (self.KERNEL, self.FSTACK):
            raise ValueError(f"unknown adapter stack {stack_kind!r}")
        self.env = env
        self.runtime = runtime
        self.cost = cost
        self.stack_kind = stack_kind
        self.node = runtime.node
        self.adapter_id = name or f"_tcpgw:{self.node.name}"
        self.agent = f"fn:{self.adapter_id}"
        self.inbox: Store = Store(env, name=f"{self.adapter_id}-inbox")
        #: rid -> (ingress context, complete callback)
        self._pending: Dict[int, Tuple[object, object]] = {}
        self.requests = 0
        self.responses = 0
        self._running = False
        if stack_kind == self.FSTACK:
            core = self.node.cpu.allocate_pinned(f"{self.adapter_id}-core")
            self._compute = core
            self.stack = FStack(env, core, cost, name=f"{self.adapter_id}-fstack")
        else:
            self._compute = self.node.cpu
            self.stack = KernelTcpStack(env, self.node.cpu, cost,
                                        name=f"{self.adapter_id}-ktcp")
        self.http = HttpProcessor(self._compute, cost)
        # Make the adapter addressable as a local function so entry
        # functions can reply_to it over the intra-node data plane.
        runtime.register_endpoint(self.adapter_id, self.inbox)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.env.process(self._loop(), name=self.adapter_id)

    # -- ingress-facing API -------------------------------------------------
    def deliver_request(self, request: HttpRequest, tenant: str, entry_fn: str,
                        ctx: object, complete) -> None:
        """A proxied request frame arrived from the cluster ingress.

        ``complete(ctx, body, length)`` is invoked (as a new process)
        when the matching response is ready to travel back.
        """
        self.inbox.put(("request", (request, tenant, entry_fn, ctx, complete)))

    # -- data-plane loop -----------------------------------------------------------
    def _loop(self):
        while self._running:
            event = yield self.inbox.get()
            if isinstance(event, BufferDescriptor):
                yield from self._handle_response(event)
            else:
                _kind, payload = event
                yield from self._handle_request(*payload)

    def _handle_request(self, request: HttpRequest, tenant: str, entry_fn: str,
                        ctx: object, complete):
        # Worker-side protocol termination: the duplicate processing
        # the paper's Fig. 4 (1) identifies.
        resolve = getattr(self.runtime, "resolve_service", None)
        if resolve is not None:
            entry_fn = resolve(entry_fn)
        yield from self.stack.rx(request.wire_bytes)
        yield from self.http.parse(request.wire_bytes)
        pool = self.runtime.pool_for(tenant)
        try:
            buffer = pool.get(self.agent)
        except PoolExhausted:
            buffer = yield from pool.get_wait(self.agent)
        rid = next(_rids)
        self._pending[rid] = (ctx, complete)
        message = Message(
            kind=KIND_REQUEST,
            rid=rid,
            src=self.adapter_id,
            dst=entry_fn,
            reply_to=self.adapter_id,
            tenant=tenant,
            via=VIA_SKMSG,
            owner=self.agent,
        )
        buffer.write(self.agent, request.body, request.body_bytes)
        descriptor = BufferDescriptor(buffer=buffer, length=request.body_bytes,
                                      message=message)
        buffer.transfer(self.agent, f"fn:{entry_fn}")
        message.transfer(self.agent, f"fn:{entry_fn}")
        yield from self.runtime.sockmap.send(self._compute, entry_fn, descriptor)
        self.requests += 1

    def _handle_response(self, descriptor: BufferDescriptor):
        entry = self._pending.pop(descriptor.message.rid, None)
        buffer = descriptor.buffer
        body = buffer.read(self.agent)
        length = descriptor.length
        descriptor.message.retire(self.agent)
        buffer.pool.put(buffer, self.agent)
        if entry is None:
            return
        ctx, complete = entry
        yield from self.http.serialize(length + 180)
        yield from self.stack.tx(length + 180)
        self.responses += 1
        # Hand back to the ingress (runs as its own process so the
        # adapter loop is not blocked by ingress-side queueing).
        self.env.process(complete(ctx, body, length), name=f"{self.adapter_id}-resp")
