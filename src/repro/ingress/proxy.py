"""Traditional HTTP/TCP cluster ingresses: K-Ingress and F-Ingress.

Both are NGINX-style reverse proxies implementing the *deferred*
transport conversion of Fig. 4 (1): they terminate the client's TCP,
then open/reuse TCP toward the worker node, where a
:class:`~repro.ingress.adapter.TcpWorkerAdapter` terminates TCP *again*
before the payload reaches the function.

* **K-Ingress** uses the interrupt-driven kernel TCP/IP stack on a
  bounded set of shared cores; under overload its IRQ load snowballs
  (receive livelock) — the collapse in Fig. 13/14.
* **F-Ingress** integrates DPDK F-stack: worker processes pinned to
  cores with busy-polling loops, optionally autoscaled with the same
  hysteresis policy as Palladium's gateway (§4.1.3 "we adapt our
  autoscaler to support the F-Ingress").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..config import CostModel
from ..hw import Cluster, CorePool
from ..net import FStack, HttpProcessor, HttpRequest, HttpResponse, KernelTcpStack
from ..sim import Environment, LatencyStats, RateMeter, Store

from .adapter import TcpWorkerAdapter
from .gateway import Autoscaler, ClientConnection, GatewayStats, GatewayWorker, rss_pick

__all__ = ["ProxyIngress", "KIngress", "FIngress"]

#: resolver: HTTP path -> (tenant, entry function)
EntryResolver = Callable[[str], Tuple[str, str]]

#: TCP/IP framing overhead on the proxied intra-cluster hop
TCP_FRAME_OVERHEAD = 66


class ProxyIngress:
    """Common NGINX-proxy machinery; see :class:`KIngress`/:class:`FIngress`."""

    KERNEL = "kernel"
    FSTACK = "fstack"

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        cost: CostModel,
        resolver: EntryResolver,
        adapters: Dict[str, TcpWorkerAdapter],
        entry_node: Callable[[str], str],
        mode: str,
        cores: int = 1,
        max_workers: int = 8,
        autoscale: bool = False,
        stats_bucket_us: float = 1_000_000.0,
    ):
        if mode not in (self.KERNEL, self.FSTACK):
            raise ValueError(f"unknown ingress mode {mode!r}")
        self.env = env
        self.cluster = cluster
        self.cost = cost
        self.resolver = resolver
        self.adapters = adapters
        self.entry_node = entry_node
        self.mode = mode
        self.node = cluster.ingress_node
        self.stats = GatewayStats()
        self.latency = LatencyStats(f"{mode}-ingress-e2e")
        self.throughput = RateMeter(f"{mode}-ingress-rps", bucket=stats_bucket_us)
        self._running = False
        self.autoscale = autoscale
        self.autoscaler: Optional[Autoscaler] = None
        self.max_workers = max_workers
        self.min_workers = cores if mode == self.FSTACK else 1

        if mode == self.KERNEL:
            #: bounded shared cores for the kernel stack + nginx workers
            self.cpu = CorePool(env, cores, name="ingress-kernel")
            self.stack = KernelTcpStack(env, self.cpu, cost, name="ingress-ktcp")
            self.http = HttpProcessor(self.cpu, cost)
            self.workers: List[GatewayWorker] = []
        else:
            self.cpu = None
            self.workers = []
            self._worker_seq = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise RuntimeError("ingress already started")
        self._running = True
        if self.mode == self.FSTACK:
            for _ in range(self.min_workers):
                self._spawn_worker()
            if self.autoscale:
                self.autoscaler = Autoscaler(
                    self.env, self.cost,
                    spawn=self._spawn_worker,
                    reap=self._reap_worker,
                    workers=lambda: self.workers,
                    min_workers=self.min_workers,
                    max_workers=self.max_workers,
                )
                self.env.process(self.autoscaler.run(), name="f-ingress-autoscale")
        for adapter in self.adapters.values():
            adapter.start()

    def _spawn_worker(self) -> None:
        core = self.node.cpu.allocate_pinned(f"f-ingress-w{self._worker_seq}")
        worker = GatewayWorker(self.env, self._worker_seq, core,
                               name=f"f-ingress-w{self._worker_seq}")
        self._worker_seq += 1
        self.workers.append(worker)
        self.env.process(self._fstack_worker_loop(worker), name=worker.name)

    def _reap_worker(self) -> None:
        if len(self.workers) <= self.min_workers:
            return
        worker = self.workers.pop()
        worker.active = False
        worker.inbox.put(("shutdown", None))
        worker.core.unpin()

    # -- client-facing API ------------------------------------------------------
    def connect(self) -> ClientConnection:
        conn = ClientConnection(self.env)
        if self.mode == self.FSTACK:
            worker = rss_pick(self.workers, conn.conn_id)
            worker.inbox.put(("handshake", conn))
        else:
            self.env.process(self.stack.handshake(), name="ingress-hs")
        return conn

    def submit(self, conn: ClientConnection, request: HttpRequest) -> None:
        request.connection_id = conn.conn_id
        self.stats.accepted += 1
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "ingress_requests_total", "HTTP requests accepted at the "
                "ingress.", labels=("tenant",)).labels(
                    self.resolver(request.path)[0]).inc()
        if self.mode == self.FSTACK:
            worker = rss_pick(self.workers, conn.conn_id)
            worker.inbox.put(("request", (conn, request)))
        else:
            self.env.process(
                self._kernel_handle(conn, request), name="ingress-req"
            )

    # -- kernel (interrupt-driven) path ----------------------------------------------
    def _kernel_handle(self, conn: ClientConnection, request: HttpRequest):
        t0 = self.env.now
        yield from self.stack.rx(request.wire_bytes)
        yield from self.http.parse(request.wire_bytes)
        yield from self.cpu.execute(self.cost.proxy_overhead_us)
        yield from self.stack.tx(request.wire_bytes + TCP_FRAME_OVERHEAD)
        self._proxy_to_worker(conn, request, t0)

    # -- F-stack (pinned worker) path ----------------------------------------------------
    def _fstack_worker_loop(self, worker: GatewayWorker):
        fstack = FStack(self.env, worker.core, self.cost, name=f"{worker.name}-fstack")
        http = HttpProcessor(worker.core, self.cost)
        while worker.active:
            event = yield worker.inbox.get()
            yield from worker.maybe_pause()
            kind, payload = event
            if kind == "shutdown":
                break
            if kind == "handshake":
                yield from fstack.handshake()
            elif kind == "request":
                conn, request = payload
                t0 = self.env.now
                yield from fstack.rx(request.wire_bytes)
                yield from http.parse(request.wire_bytes)
                yield from worker.core.work(self.cost.proxy_overhead_us)
                yield from fstack.tx(request.wire_bytes + TCP_FRAME_OVERHEAD)
                self._proxy_to_worker(conn, request, t0)
            elif kind == "respond":
                conn, response, t0, tenant = payload
                yield from fstack.rx(response.wire_bytes)
                yield from http.parse(response.wire_bytes)
                yield from worker.core.work(self.cost.proxy_overhead_us)
                yield from fstack.tx(response.wire_bytes)
                self._finish(conn, response, t0, tenant)

    # -- shared proxy plumbing ---------------------------------------------------------------
    def _proxy_to_worker(self, conn: ClientConnection, request: HttpRequest, t0: float) -> None:
        """Hand the proxied request to the intra-cluster wire (async)."""
        tenant, entry_fn = self.resolver(request.path)
        node_name = self.entry_node(entry_fn)
        adapter = self.adapters[node_name]
        link = self.cluster.fabric_link(self.node.name, node_name)
        ctx = (conn, request, t0)

        def _transit():
            yield from link.transmit(request.wire_bytes + TCP_FRAME_OVERHEAD)
            adapter.deliver_request(request, tenant, entry_fn, ctx,
                                    self._response_from_worker)

        self.env.process(_transit(), name="proxy-uplink")

    def _response_from_worker(self, ctx, body, length):
        """Generator (spawned by the adapter): relay a response to the client."""
        conn, request, t0 = ctx
        tenant, entry_fn = self.resolver(request.path)
        node_name = self.entry_node(entry_fn)
        link = self.cluster.fabric_link(node_name, self.node.name)
        response = HttpResponse(status=200, body=body, body_bytes=length,
                                request_id=request.request_id)
        yield from link.transmit(response.wire_bytes + TCP_FRAME_OVERHEAD)
        if self.mode == self.KERNEL:
            yield from self.stack.rx(response.wire_bytes)
            yield from self.http.parse(response.wire_bytes)
            yield from self.cpu.execute(self.cost.proxy_overhead_us)
            yield from self.stack.tx(response.wire_bytes)
            self._finish(conn, response, t0, tenant)
        else:
            worker = rss_pick(self.workers, conn.conn_id)
            worker.inbox.put(("respond", (conn, response, t0, tenant)))

    def _finish(self, conn: ClientConnection, response: HttpResponse,
                t0: float, tenant: str = "") -> None:
        """Ethernet transit back to the client (async to the loop)."""
        def _transit():
            yield from self.cluster.ether_down.transmit(response.wire_bytes)
            if conn.open:
                conn.inbox.put(response)
                conn.responses_received += 1
            self.stats.completed += 1
            self.latency.record(self.env.now - t0)
            self.throughput.record(self.env.now)
            tel = self.env.telemetry
            if tel is not None:
                tel.metrics.counter(
                    "ingress_responses_total", "Responses delivered to "
                    "clients.", labels=("tenant",)).labels(tenant).inc()
                tel.metrics.histogram(
                    "ingress_latency_us", "End-to-end request latency at "
                    "the ingress.", labels=("tenant",)).labels(
                        tenant).observe(self.env.now - t0)

        self.env.process(_transit(), name="proxy-ether-tx")


def KIngress(env, cluster, cost, resolver, adapters, entry_node,
             cores: int = 1, **kwargs) -> ProxyIngress:
    """The kernel-stack NGINX ingress of §4.1.3."""
    return ProxyIngress(env, cluster, cost, resolver, adapters, entry_node,
                        mode=ProxyIngress.KERNEL, cores=cores, **kwargs)


def FIngress(env, cluster, cost, resolver, adapters, entry_node,
             cores: int = 1, **kwargs) -> ProxyIngress:
    """The F-stack NGINX ingress of §4.1.3."""
    return ProxyIngress(env, cluster, cost, resolver, adapters, entry_node,
                        mode=ProxyIngress.FSTACK, cores=cores, **kwargs)
