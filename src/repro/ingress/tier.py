"""Hierarchical multi-gateway ingress tier (extension).

The paper observes that scale-event interruptions "can be avoided by
enabling load balancing across multiple Palladium ingress instances"
(§4.1.3) but stops at a single gateway.  Gryphon (arXiv 2510.11043)
shows how hyperscale multi-tenant gateways get past one box: a
*hierarchical* tier with hot/cold flow splitting, the hot flows pinned
on DPU fast paths and the cold ones punted to slower gateway cores.

This module is that tier, as three composable layers:

* :class:`ConsistentHashRing` — the L1 spray layer.  Flows map onto N
  gateways through a virtual-node hash ring; ``lookup`` is the stable
  ECMP decision and ``lookup_bounded`` adds bounded-load overflow (a
  flow whose home gateway is above ``c × mean load`` walks clockwise
  to the first underloaded one).  Removing a gateway moves only the
  flows it owned — the property failover leans on.
* :class:`FlowTable` — one per gateway (L2).  A bounded table of
  pinned *hot* flows served at the DPU fast-path cost; lookups that
  miss are *punts* to the gateway slow path, which installs an entry
  (LRU eviction, per-tenant entry quotas so one tenant cannot
  monopolize the fast path).
* :class:`GatewayTier` — glue: the ring plus per-gateway shards,
  health/failover bookkeeping (ring re-spray + flow-table state sync
  to each flow's successor; misses during the sync window pay the
  cold-punt cost rather than erroring), and the tier metric counters.

:class:`TieredIngress` wires the tier over real
:class:`~repro.ingress.palladium.PalladiumIngress` instances with the
same ``connect``/``submit`` surface as the plain balancer, so load
generators drive it unchanged.  Everything here is opt-in: nothing in
the seed experiments constructs a tier, and the plain
:class:`~repro.ingress.balancer.IngressLoadBalancer` path is
untouched.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ConsistentHashRing",
    "FlowTable",
    "GatewayShard",
    "GatewayTier",
    "TieredIngress",
]


def _hash64(key: object) -> int:
    """Stable 64-bit hash (process-independent, unlike ``hash``)."""
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """L1 spray: consistent hashing with virtual nodes + bounded load.

    ``vnodes`` virtual points per gateway keep the split even; the
    classic guarantee holds: adding/removing a gateway only remaps the
    flows that gateway owned (every other flow keeps its first
    clockwise virtual node).
    """

    def __init__(self, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        #: sorted (point, gateway) pairs — the ring itself
        self._ring: List[Tuple[int, str]] = []
        self._members: Dict[str, List[int]] = {}

    # -- membership -----------------------------------------------------------
    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        if name in self._members:
            raise ValueError(f"gateway {name!r} already on the ring")
        points = [_hash64((name, i)) for i in range(self.vnodes)]
        self._members[name] = points
        self._ring.extend((p, name) for p in points)
        self._ring.sort()

    def remove(self, name: str) -> None:
        if name not in self._members:
            raise KeyError(f"gateway {name!r} not on the ring")
        del self._members[name]
        self._ring = [(p, n) for p, n in self._ring if n != name]

    # -- lookups --------------------------------------------------------------
    def _successors(self, flow_key: object) -> Iterable[str]:
        """Distinct gateways clockwise from the flow's hash point."""
        if not self._ring:
            raise RuntimeError("hash ring is empty")
        point = _hash64(flow_key)
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < point:
                lo = mid + 1
            else:
                hi = mid
        seen = set()
        for index in range(lo, lo + len(self._ring)):
            name = self._ring[index % len(self._ring)][1]
            if name not in seen:
                seen.add(name)
                yield name

    def lookup(self, flow_key: object) -> str:
        """The flow's home gateway (pure consistent hashing)."""
        return next(iter(self._successors(flow_key)))

    def lookup_bounded(self, flow_key: object, load: Dict[str, float],
                       capacity_factor: float = 1.25) -> str:
        """Bounded-load ECMP: spill past gateways above ``c × mean``.

        With every gateway at or above the bound (uniform overload)
        the home gateway wins — the bound only sheds hot spots.
        """
        members = self._members
        if not members:
            raise RuntimeError("hash ring is empty")
        mean = sum(load.get(n, 0.0) for n in members) / len(members)
        bound = capacity_factor * max(mean, 1.0)
        home = None
        for name in self._successors(flow_key):
            if home is None:
                home = name
            if load.get(name, 0.0) < bound:
                return name
        return home

    def successor(self, flow_key: object, exclude: str) -> Optional[str]:
        """Where a flow lands once ``exclude`` leaves the ring."""
        for name in self._successors(flow_key):
            if name != exclude:
                return name
        return None


class _FlowEntry:
    __slots__ = ("tenant", "size", "hits")

    def __init__(self, tenant: str, size: int):
        self.tenant = tenant
        #: modeled flows behind this entry (1 for a real connection,
        #: the bucket's flow count for aggregate workloads)
        self.size = size
        self.hits = 0


class FlowTable:
    """Bounded hot-flow table with LRU eviction and tenant quotas.

    ``capacity`` and ``tenant_quota`` are counted in *flows*, so an
    aggregate bucket standing for 4 000 clients occupies 4 000 slots —
    the table models finite DPU match-table SRAM, not Python dict
    slots.
    """

    def __init__(self, capacity: int, tenant_quota: Optional[int] = None):
        if capacity < 1:
            raise ValueError("flow table capacity must be >= 1")
        if tenant_quota is not None and tenant_quota < 1:
            raise ValueError("tenant quota must be >= 1 when set")
        self.capacity = capacity
        self.tenant_quota = tenant_quota
        self._entries: "OrderedDict[object, _FlowEntry]" = OrderedDict()
        self._occupied = 0
        self._per_tenant: Dict[str, int] = {}
        self.hits = 0
        self.punts = 0
        self.evictions = 0
        self.quota_rejections = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, flow_id: object) -> bool:
        return flow_id in self._entries

    @property
    def occupied(self) -> int:
        """Flow slots in use (≤ capacity)."""
        return self._occupied

    def tenant_occupancy(self, tenant: str) -> int:
        return self._per_tenant.get(tenant, 0)

    def lookup(self, flow_id: object, count: int = 1) -> bool:
        """True = hot hit (entry refreshed); False = cold punt.

        ``count`` lets aggregate workloads account a whole epoch's
        requests from one flow bucket in a single call.
        """
        entry = self._entries.get(flow_id)
        if entry is None:
            self.punts += count
            return False
        entry.hits += count
        self._entries.move_to_end(flow_id)
        self.hits += count
        return True

    def install(self, flow_id: object, tenant: str, size: int = 1) -> bool:
        """Pin a flow on the fast path after its slow-path punt.

        Returns False when the tenant's quota is exhausted (the flow
        stays cold and keeps punting — that is the isolation).  A full
        table makes room with clock (second-chance) eviction: the LRU
        entry is only evicted once its reference count has decayed, so
        a burst of cold installs cannot flush the hot set.
        """
        if flow_id in self._entries:
            return True
        if size > self.capacity:
            return False
        quota = self.tenant_quota
        if quota is not None and self._per_tenant.get(tenant, 0) + size > quota:
            self.quota_rejections += 1
            return False
        passes = 0
        while self._occupied + size > self.capacity:
            victim_id, victim = next(iter(self._entries.items()))
            if victim.hits > 0 and passes < len(self._entries):
                # second chance: decay and rotate instead of evicting
                victim.hits = 0
                self._entries.move_to_end(victim_id)
                passes += 1
                continue
            self._remove(victim_id, victim)
            self.evictions += 1
        self._entries[flow_id] = _FlowEntry(tenant, size)
        self._occupied += size
        self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + size
        return True

    def _remove(self, flow_id: object, entry: _FlowEntry) -> None:
        del self._entries[flow_id]
        self._occupied -= entry.size
        remaining = self._per_tenant.get(entry.tenant, 0) - entry.size
        if remaining > 0:
            self._per_tenant[entry.tenant] = remaining
        else:
            self._per_tenant.pop(entry.tenant, None)

    def evict(self, flow_id: object) -> bool:
        """Drop one flow (connection closed / moved away)."""
        entry = self._entries.get(flow_id)
        if entry is None:
            return False
        self._remove(flow_id, entry)
        return True

    def snapshot(self) -> List[Tuple[object, str, int]]:
        """The resident set, LRU-first — what failover state sync ships."""
        return [(fid, e.tenant, e.size) for fid, e in self._entries.items()]


class GatewayShard:
    """One L2 gateway: its flow table, health, and load estimate."""

    def __init__(self, name: str, table: FlowTable, backend=None):
        self.name = name
        self.table = table
        #: the real PalladiumIngress (DES wiring) or a capacity model
        self.backend = backend
        self.healthy = True
        #: state-sync deadline after inheriting flows (absorbed entries
        #: only become hot once the sync completes)
        self.sync_until = 0.0
        #: entries in flight to this shard, installed at ``sync_until``
        self._pending_sync: List[Tuple[object, str, int]] = []

    def load(self) -> float:
        """Outstanding work at the gateway (bounded-load signal)."""
        backend = self.backend
        if backend is not None and hasattr(backend, "load"):
            return float(backend.load())
        return float(self.table.occupied)

    def absorb_pending(self, now: float) -> int:
        """Install synced entries once the sync window has elapsed."""
        if not self._pending_sync or now < self.sync_until:
            return 0
        installed = 0
        for flow_id, tenant, size in self._pending_sync:
            if self.table.install(flow_id, tenant, size):
                installed += 1
        self._pending_sync = []
        return installed


class GatewayTier:
    """The assembled tier: ring + shards + failover + metrics.

    Time is passed in explicitly (``now``) so the same object serves
    both the discrete-event wiring and the epoch-driven aggregate
    model.  Metric counters are plain ints; :meth:`publish` exports
    them into a telemetry registry when one is installed.
    """

    def __init__(self, gateway_names: Iterable[str],
                 table_capacity: int = 65_536,
                 tenant_quota: Optional[int] = None,
                 vnodes: int = 64,
                 capacity_factor: float = 1.25,
                 sync_us: float = 2_000.0,
                 backends: Optional[Dict[str, object]] = None):
        names = list(gateway_names)
        if not names:
            raise ValueError("tier needs at least one gateway")
        if len(set(names)) != len(names):
            raise ValueError("duplicate gateway names")
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.shards: Dict[str, GatewayShard] = {}
        backends = backends or {}
        for name in names:
            self.ring.add(name)
            self.shards[name] = GatewayShard(
                name, FlowTable(table_capacity, tenant_quota),
                backend=backends.get(name))
        self.capacity_factor = capacity_factor
        self.sync_us = sync_us
        #: spray decisions per gateway (ingress_tier_spray_total)
        self.spray_total: Dict[str, int] = {n: 0 for n in names}
        self.failovers = 0

    # -- routing --------------------------------------------------------------
    def live_shards(self) -> List[GatewayShard]:
        return [s for s in self.shards.values() if s.healthy]

    def assign(self, flow_key: object, bounded: bool = False) -> GatewayShard:
        """L1 spray: pick the owning gateway for a flow."""
        if bounded:
            load = {n: s.load() for n, s in self.shards.items()
                    if s.healthy}
            name = self.ring.lookup_bounded(flow_key, load,
                                            self.capacity_factor)
        else:
            name = self.ring.lookup(flow_key)
        self.spray_total[name] += 1
        return self.shards[name]

    def classify(self, shard: GatewayShard, flow_id: object, tenant: str,
                 now: float, size: int = 1) -> bool:
        """Hot/cold split at the owning gateway.

        Returns True for a fast-path hit.  A miss is a slow-path punt
        that installs the flow (unless the tenant quota rejects it);
        during a post-failover sync window inherited entries are still
        in flight, so the miss pays the punt cost instead of erroring.
        """
        shard.absorb_pending(now)
        if shard.table.lookup(flow_id):
            return True
        shard.table.install(flow_id, tenant, size)
        return False

    # -- failure / recovery ---------------------------------------------------
    def fail_gateway(self, name: str, now: float) -> Dict[str, int]:
        """Gateway loss: ring re-spray + flow-table sync to successors.

        Every resident entry of the failed gateway is shipped to the
        flow's *new* home; the entries install only after ``sync_us``,
        so lookups in the window punt (cold) rather than erroring.
        Returns entries-moved per successor (for tests/metrics).
        """
        shard = self.shards[name]
        if not shard.healthy:
            return {}
        shard.healthy = False
        if name in self.ring:
            self.ring.remove(name)
        moved: Dict[str, int] = {}
        if len(self.ring) > 0:
            for flow_id, tenant, size in shard.table.snapshot():
                heir_name = self.ring.lookup(flow_id)
                heir = self.shards[heir_name]
                heir.sync_until = max(heir.sync_until, now + self.sync_us)
                heir._pending_sync.append((flow_id, tenant, size))
                moved[heir_name] = moved.get(heir_name, 0) + 1
        # the dead table is gone with the gateway
        for flow_id, _tenant, _size in shard.table.snapshot():
            shard.table.evict(flow_id)
        self.failovers += 1
        return moved

    def recover_gateway(self, name: str) -> None:
        """A restarted gateway rejoins the ring with an empty table."""
        shard = self.shards[name]
        if shard.healthy:
            return
        shard.healthy = True
        if name not in self.ring:
            self.ring.add(name)

    # -- metrics --------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        tables = [s.table for s in self.shards.values()]
        return {
            "sprays": sum(self.spray_total.values()),
            "flow_table_hits": sum(t.hits for t in tables),
            "flow_table_punts": sum(t.punts for t in tables),
            "flow_table_evictions": sum(t.evictions for t in tables),
            "flow_table_quota_rejections": sum(t.quota_rejections
                                               for t in tables),
            "gateway_failovers": self.failovers,
        }

    def publish(self, metrics) -> None:
        """Export the tier counters into a MetricsRegistry (absolute
        counter values; call once per run — purely passive)."""
        spray = metrics.counter(
            "ingress_tier_spray_total",
            "L1 spray decisions per gateway.", labels=("gateway",))
        for name in sorted(self.spray_total):
            child = spray.labels(name)
            child.inc(self.spray_total[name] - child.value)
        totals = self.counters()
        for metric, help_text, key in (
            ("flow_table_hits_total",
             "Fast-path (hot flow) hits across the tier.",
             "flow_table_hits"),
            ("flow_table_punts_total",
             "Slow-path punts (cold/new flows) across the tier.",
             "flow_table_punts"),
            ("flow_table_evictions_total",
             "Flow-table LRU evictions across the tier.",
             "flow_table_evictions"),
            ("gateway_failovers_total",
             "Gateway failures absorbed by ring re-spray.",
             "gateway_failovers"),
        ):
            child = metrics.counter(metric, help_text)
            child.inc(totals[key] - child.value())


class TieredIngress:
    """The tier over real gateway instances (drop-in balancer).

    Exposes the same ``connect``/``submit``/``completed`` surface as
    :class:`~repro.ingress.balancer.IngressLoadBalancer`, but every
    spray decision goes through the tier's consistent-hash ring with
    bounded-load overflow, and each connection is a flow in its owning
    gateway's hot/cold table.  Gateway failure reuses the existing
    health-check machinery: the health loop (or first touch) triggers
    ring re-spray plus flow-table state sync to the successors.
    """

    def __init__(self, instances: List, *,
                 health_check_period_us: float = 0.0,
                 table_capacity: int = 65_536,
                 tenant_quota: Optional[int] = None,
                 capacity_factor: float = 1.25,
                 sync_us: float = 2_000.0,
                 tenant_of: Optional[Callable] = None):
        if not instances:
            raise ValueError("tier needs at least one ingress instance")
        self.instances = list(instances)
        self.env = instances[0].env
        self._names = [f"gw{i}" for i in range(len(instances))]
        self._by_name = dict(zip(self._names, self.instances))
        self.tier = GatewayTier(
            self._names, table_capacity=table_capacity,
            tenant_quota=tenant_quota, capacity_factor=capacity_factor,
            sync_us=sync_us,
            backends=dict(zip(self._names, self.instances)))
        #: conn_id -> (gateway name, connection) — bounded: entries are
        #: evicted when the connection closes or its gateway fails
        self._owner: Dict[int, Tuple[str, object]] = {}
        self.health_check_period_us = health_check_period_us
        #: request -> tenant label for flow-table quotas (single shared
        #: tenant when not provided)
        self.tenant_of = tenant_of or (lambda request: "default")
        #: optional :class:`~repro.sim.TimerWheel`: when set before
        #: :meth:`start`, health checks ride a coalesced periodic tick
        self.timer_wheel = None
        self.failovers = 0
        self.dropped = 0

    def start(self) -> None:
        for instance in self.instances:
            instance.siblings = list(self.instances)
            instance.start()
        if self.health_check_period_us > 0:
            if self.timer_wheel is not None:
                self.timer_wheel.periodic(self.health_check_period_us,
                                          self._sweep)
            else:
                self.env.process(self._health_loop(), name="tier-health")

    # -- health / failover ----------------------------------------------------
    def _health_loop(self):
        while True:
            yield self.env.timeout(self.health_check_period_us)
            self._sweep()

    def _sweep(self) -> None:
        for name, instance in self._by_name.items():
            shard = self.tier.shards[name]
            if not instance.healthy and shard.healthy:
                self._fail(name)
            elif instance.healthy and not shard.healthy:
                self.tier.recover_gateway(name)

    def _fail(self, name: str) -> None:
        self.tier.fail_gateway(name, self.env.now)
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "gateway_failovers_total",
                "Gateway failures absorbed by ring re-spray.").inc()
        # Re-spray only the failed gateway's connections.
        for conn_id, (owner, conn) in list(self._owner.items()):
            if owner != name:
                continue
            if not self.tier.live_shards():
                del self._owner[conn_id]
                continue
            heir = self.tier.ring.lookup(conn_id)
            self._owner[conn_id] = (heir, conn)
            self.failovers += 1

    # -- client-facing API ----------------------------------------------------
    def connect(self):
        from .gateway import ClientConnection
        conn_probe = ClientConnection(self.env)
        live = {n for n, s in self.tier.shards.items() if s.healthy}
        if not live:
            raise RuntimeError("no live gateways in the tier")
        shard = self.tier.assign(conn_probe.conn_id, bounded=True)
        if not shard.healthy:  # bounded lookup only walks live members
            shard = self.tier.shards[self.tier.ring.lookup(conn_probe.conn_id)]
        instance = self._by_name[shard.name]
        conn = instance.connect()
        self._owner[conn.conn_id] = (shard.name, conn)
        tel = self.env.telemetry
        if tel is not None:
            tel.metrics.counter(
                "ingress_tier_spray_total",
                "L1 spray decisions per gateway.",
                labels=("gateway",)).labels(shard.name).inc()
        self._maybe_prune()
        return conn

    def submit(self, conn, request) -> None:
        entry = self._owner.get(conn.conn_id)
        if entry is None:
            self.dropped += 1
            return
        name, _conn = entry
        instance = self._by_name[name]
        if not instance.healthy:
            self._sweep()
            entry = self._owner.get(conn.conn_id)
            if entry is None or not self.tier.live_shards():
                self.dropped += 1
                return
            name, _conn = entry
            instance = self._by_name[name]
        shard = self.tier.shards[name]
        tenant = self.tenant_of(request)
        hot = self.tier.classify(shard, conn.conn_id, tenant, self.env.now)
        tel = self.env.telemetry
        if tel is not None:
            if hot:
                tel.metrics.counter(
                    "flow_table_hits_total",
                    "Fast-path (hot flow) hits across the tier.").inc()
            else:
                tel.metrics.counter(
                    "flow_table_punts_total",
                    "Slow-path punts (cold/new flows) across the tier.").inc()
        instance.submit(conn, request)

    def close(self, conn) -> None:
        """Connection teardown: evict the flow and the owner entry."""
        conn.open = False
        entry = self._owner.pop(conn.conn_id, None)
        if entry is not None:
            self.tier.shards[entry[0]].table.evict(conn.conn_id)

    def _maybe_prune(self, every: int = 256) -> None:
        """Amortized sweep of closed connections (no timer needed)."""
        if len(self._owner) % every:
            return
        for conn_id, (name, conn) in list(self._owner.items()):
            if not conn.open:
                del self._owner[conn_id]
                self.tier.shards[name].table.evict(conn_id)

    # -- aggregate metrics ----------------------------------------------------
    def completed(self) -> int:
        return sum(i.stats.completed for i in self.instances)

    def accepted(self) -> int:
        return sum(i.stats.accepted for i in self.instances)
