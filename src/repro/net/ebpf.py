"""eBPF SK_MSG / sockmap intra-node IPC (§3.5.3, Fig. 8).

Co-located Palladium functions exchange 16-byte buffer descriptors over
``SK_MSG`` redirection: the source's ``send()`` triggers the eBPF
program, which looks up the destination socket in the *sockmap* and
splices the descriptor straight across, bypassing the kernel protocol
stack entirely.

The delivery is event-driven (the destination sleeps in ``recv`` and is
woken), so each message charges:

* ``sk_msg_us`` on the **sender's** compute context (the SK_MSG program
  plus sockmap lookup run in the sender's send() syscall), and
* ``sk_msg_interrupt_us`` on the **receiver's** compute context when it
  is woken — the interrupt-driven cost that throttles the CNE at high
  concurrency (§4.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..config import CostModel
from ..hw import CorePool, PinnedCore
from ..memory import BufferDescriptor
from ..sim import Environment, Store

__all__ = ["SockMap", "SkMsgSocket"]


class SkMsgSocket:
    """One registered socket endpoint in the sockmap.

    ``inbox`` may be supplied by the function runtime so SK_MSG and
    Comch deliveries land in the same unified receive queue.
    """

    def __init__(self, env: Environment, fn_id: str, inbox: Optional[Store] = None):
        self.env = env
        self.fn_id = fn_id
        self.inbox: Store = inbox if inbox is not None else Store(env, name=f"skmsg:{fn_id}")

    def recv(self):
        """Event yielding the next delivered descriptor."""
        return self.inbox.get()

    @property
    def backlog(self) -> int:
        return len(self.inbox.items)


class SockMap:
    """The BPF_MAP_TYPE_SOCKMAP: function id -> registered socket."""

    def __init__(self, env: Environment, cost: CostModel, name: str = "sockmap"):
        self.env = env
        self.cost = cost
        self.name = name
        self._sockets: Dict[str, SkMsgSocket] = {}
        self.messages = 0

    def register(self, fn_id: str, inbox: Optional[Store] = None) -> SkMsgSocket:
        """Add a socket for ``fn_id`` (idempotent)."""
        if fn_id not in self._sockets:
            self._sockets[fn_id] = SkMsgSocket(self.env, fn_id, inbox)
        return self._sockets[fn_id]

    def unregister(self, fn_id: str) -> None:
        """Remove a socket (endpoint moved away or was torn down)."""
        self._sockets.pop(fn_id, None)

    def lookup(self, fn_id: str) -> SkMsgSocket:
        try:
            return self._sockets[fn_id]
        except KeyError:
            raise KeyError(f"function {fn_id!r} not in sockmap {self.name!r}") from None

    def send(
        self,
        sender_compute: Union[PinnedCore, CorePool],
        dst_fn: str,
        descriptor: BufferDescriptor,
    ):
        """Generator: redirect ``descriptor`` to ``dst_fn``'s socket.

        The SK_MSG program + sockmap lookup run in the sender's
        context; delivery wakes the receiver.
        """
        yield from sender_compute.run(self.cost.sk_msg_us)
        self.redirect(dst_fn, descriptor)

    def redirect(self, dst_fn: str, descriptor: BufferDescriptor) -> None:
        """Deliver without charging CPU (caller batches the charge)."""
        socket = self.lookup(dst_fn)
        socket.inbox.put_nowait(descriptor)
        self.messages += 1

    def interrupt_cost(self) -> float:
        """Host-core us the receiver pays per wakeup (interrupt path)."""
        return self.cost.sk_msg_interrupt_us
