"""HTTP message model and processing costs.

External clients speak HTTP over TCP (§1, §3.6).  We model a request /
response as a small structured object plus an NGINX-grade parse /
serialize CPU cost; the *content* only matters for correctness checks
(echo tests assert payload integrity end to end).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from ..config import CostModel
from ..hw import CorePool, PinnedCore

__all__ = ["HttpRequest", "HttpResponse", "HttpProcessor", "HTTP_REQUEST_OVERHEAD"]

#: header bytes added to every HTTP message on the wire
HTTP_REQUEST_OVERHEAD = 180

_request_ids = itertools.count(1)


@dataclass
class HttpRequest:
    """One client HTTP request entering the serverless cloud."""

    path: str
    body: Any = None
    body_bytes: int = 0
    connection_id: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def wire_bytes(self) -> int:
        return HTTP_REQUEST_OVERHEAD + self.body_bytes


@dataclass
class HttpResponse:
    """The response traveling back to the external client."""

    status: int
    body: Any = None
    body_bytes: int = 0
    request_id: int = 0

    @property
    def wire_bytes(self) -> int:
        return HTTP_REQUEST_OVERHEAD + self.body_bytes


class HttpProcessor:
    """NGINX-style HTTP parsing/serialization on a compute context."""

    def __init__(self, core: Union[PinnedCore, CorePool], cost: CostModel):
        self.core = core
        self.cost = cost
        self.parsed = 0
        self.serialized = 0

    def _charge(self, work: float) -> None:
        tel = self.core.env.telemetry
        if tel is not None:
            tel.cycles.charge("protocol", work * self.core.factor,
                              where="http")

    def parse(self, nbytes: int):
        """Generator: parse one HTTP message."""
        work = self.cost.http_parse_us + nbytes * 0.00002
        self._charge(work)
        yield from self.core.run(work)
        self.parsed += 1

    def serialize(self, nbytes: int):
        """Generator: build one HTTP message."""
        work = self.cost.http_parse_us * 0.6 + nbytes * 0.00002
        self._charge(work)
        yield from self.core.run(work)
        self.serialized += 1
