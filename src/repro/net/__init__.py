"""Software networking: TCP stacks, HTTP costs, eBPF SK_MSG IPC."""

from .ebpf import SkMsgSocket, SockMap
from .http import HTTP_REQUEST_OVERHEAD, HttpProcessor, HttpRequest, HttpResponse
from .stacks import FStack, KernelTcpStack, StackStats

__all__ = [
    "FStack",
    "HTTP_REQUEST_OVERHEAD",
    "HttpProcessor",
    "HttpRequest",
    "HttpResponse",
    "KernelTcpStack",
    "SkMsgSocket",
    "SockMap",
    "StackStats",
]
