"""Software transport stacks: kernel TCP/IP vs DPDK F-stack.

Fig. 13/14 turn entirely on the CPU economics of protocol processing:

* The **kernel stack** is interrupt-driven: every message pays protocol
  cost plus IRQ/softirq overhead, scheduled on the shared core pool.
  Under overload it exhibits receive-livelock behaviour — interrupt
  work crowds out useful work (Mogul & Ramakrishnan), which we model as
  an extra penalty that grows with the stack's queue backlog.
* **F-stack** runs inside a busy-polling loop on a pinned core: cheap
  per-message cost, no interrupts, but the core is burned even when
  idle — which is why Palladium's ingress autoscaler exists.

Both expose the same ``rx``/``tx`` generator interface; callers weave
them into request pipelines.
"""

from __future__ import annotations

from typing import Optional, Union

from ..config import CostModel
from ..hw import CorePool, PinnedCore
from ..sim import Environment, Resource

__all__ = ["KernelTcpStack", "FStack", "StackStats"]


class StackStats:
    """Message counters shared by both stack models."""

    def __init__(self):
        self.rx_messages = 0
        self.tx_messages = 0
        self.handshakes = 0


class KernelTcpStack:
    """Interrupt-driven kernel TCP/IP processing on shared cores."""

    def __init__(self, env: Environment, cpu: CorePool, cost: CostModel, name: str = "ktcp"):
        self.env = env
        self.cpu = cpu
        self.cost = cost
        self.name = name
        self.stats = StackStats()
        #: messages currently inside the stack (backlog proxy)
        self.in_flight = 0
        #: the softirq path: all receive interrupts funnel through one
        #: core's bottom-half processing — the receive-livelock choke
        #: point (Mogul & Ramakrishnan).
        self._softirq = Resource(env, capacity=1, name=f"{name}-softirq")

    def _livelock_penalty(self) -> float:
        """IRQ overhead inflation as backlog builds (receive livelock).

        Mogul & Ramakrishnan: once interrupt arrivals outpace service,
        IRQ work crowds out useful work and goodput collapses.
        """
        if self.in_flight <= 4:
            return 1.0
        return min(30.0, 1.0 + 0.2 * (self.in_flight - 4))

    def rx(self, nbytes: int):
        """Generator: receive-path processing of one message.

        IRQ/softirq work serializes on one core; protocol and copy work
        is scheduled on the stack's core pool.
        """
        self.in_flight += 1
        try:
            irq = self.cost.kernel_irq_us * self._livelock_penalty()
            work = self.cost.kernel_tcp_us + nbytes * 0.00008
            tel = self.env.telemetry
            if tel is not None:
                tel.cycles.charge(
                    "protocol", (irq + work) * self.cpu.factor,
                    where=self.name)
            yield from self._softirq.use(irq * self.cpu.factor)
            yield from self.cpu.execute(work)
            self.stats.rx_messages += 1
        finally:
            self.in_flight -= 1

    def tx(self, nbytes: int):
        """Generator: transmit-path processing of one message."""
        work = self.cost.kernel_tcp_us + nbytes * 0.00008
        tel = self.env.telemetry
        if tel is not None:
            tel.cycles.charge("protocol", work * self.cpu.factor,
                              where=self.name)
        yield from self.cpu.execute(work)
        self.stats.tx_messages += 1

    def handshake(self):
        """Generator: TCP three-way-handshake processing."""
        tel = self.env.telemetry
        if tel is not None:
            tel.cycles.charge("protocol",
                              self.cost.tcp_handshake_us * self.cpu.factor,
                              where=self.name)
        yield from self.cpu.execute(self.cost.tcp_handshake_us)
        self.stats.handshakes += 1


class FStack:
    """DPDK-based userspace TCP/IP (F-stack) on a pinned polling core."""

    def __init__(
        self,
        env: Environment,
        core: Union[PinnedCore, CorePool],
        cost: CostModel,
        name: str = "fstack",
    ):
        self.env = env
        self.core = core
        self.cost = cost
        self.name = name
        self.stats = StackStats()

    def _charge(self, work: float) -> None:
        tel = self.env.telemetry
        if tel is not None:
            tel.cycles.charge("protocol", work * self.core.factor,
                              where=self.name)

    def rx(self, nbytes: int):
        """Generator: poll-mode receive processing of one message."""
        work = self.cost.fstack_us + nbytes * 0.00004
        self._charge(work)
        yield from self.core.run(work)
        self.stats.rx_messages += 1

    def tx(self, nbytes: int):
        """Generator: poll-mode transmit processing of one message."""
        work = self.cost.fstack_us + nbytes * 0.00004
        self._charge(work)
        yield from self.core.run(work)
        self.stats.tx_messages += 1

    def handshake(self):
        """Generator: handshake processing (cheaper, no syscalls)."""
        work = self.cost.tcp_handshake_us * 0.3
        self._charge(work)
        yield from self.core.run(work)
        self.stats.handshakes += 1
