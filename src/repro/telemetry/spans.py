"""Request spans and Chrome trace-event export.

A :class:`Span` is one timed operation on one (node, actor) pair; a
trace is the tree of spans sharing a ``trace_id``, rooted at the
ingress request (or at a driver-issued invoke).  Context propagates
through the stack as a plain ``(trace_id, span_id)`` tuple carried in
the ``trace`` field of the travelling
:class:`~repro.dataplane.Message` (the same header the reliability
``ack`` rides), so no plumbing is required beyond each layer
re-stamping the field with its own span before forwarding.

Export is Chrome trace-event JSON (the ``{"traceEvents": [...]}``
object form): complete (``"X"``) events for spans, metadata (``"M"``)
events naming processes/threads after simulated nodes/actors, and
global instant (``"i"``) events for fault incidents.  Load the file at
https://ui.perfetto.dev or chrome://tracing.

The tracer is strictly passive: it never touches the event loop and
allocates ids from its own monotonic counters, so enabling it cannot
change simulation behaviour.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = ["Span", "SpanTracer", "validate_chrome_trace"]

Context = Tuple[int, int]


class Span:
    """One timed operation; part of a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "category",
                 "node", "actor", "start_us", "end_us", "status", "tags",
                 "events")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int],
                 name: str, category: str, node: str, actor: str,
                 start_us: float, tags: Dict[str, Any]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.actor = actor
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.status = "open"
        self.tags = tags
        self.events: List[Dict[str, Any]] = []

    @property
    def context(self) -> Context:
        """The ``(trace_id, span_id)`` tuple to stamp into a message."""
        return (self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.finished else 0.0

    def event(self, name: str, ts_us: float, **attrs) -> None:
        """Attach a point-in-time annotation (e.g. a fault incident)."""
        record = {"name": name, "ts": ts_us}
        if attrs:
            record.update(attrs)
        self.events.append(record)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r} trace={self.trace_id} id={self.span_id} "
                f"parent={self.parent_id} [{self.start_us}..{self.end_us}] "
                f"{self.status})")


class SpanTracer:
    """Creates, finishes, stores, and exports spans.

    ``max_spans`` bounds memory: once full, *new* spans are counted in
    ``dropped`` and represented by inert placeholder spans that are not
    stored (children of a dropped span attach to its parent's trace but
    keep a valid parent pointer, so trees stay well-formed).
    """

    def __init__(self, env, max_spans: int = 250_000):
        self.env = env
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        #: fault incidents: global instant events, also mirrored onto
        #: every open root span
        self.incidents: List[Dict[str, Any]] = []
        #: annotation marks: global instant events from observers (the
        #: SLO monitor's alert firing/resolve instants land here); each
        #: entry is ``{"name", "ts", "category", **args}``
        self.marks: List[Dict[str, Any]] = []
        self._open_roots: Dict[int, Span] = {}
        self._next_trace = 1
        self._next_span = 1

    # -- span lifecycle ------------------------------------------------------
    def start_span(self, name: str,
                   parent: Union[Span, Context, None] = None,
                   category: str = "", node: str = "", actor: str = "",
                   **tags) -> Span:
        """Open a span; ``parent`` is a Span, a meta context, or None."""
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id, parent_id = self._next_trace, None
            self._next_trace += 1
        span = Span(trace_id, self._next_span, parent_id, name, category,
                    node, actor, self.env.now, tags)
        self._next_span += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
            if parent_id is None:
                self._open_roots[span.span_id] = span
        else:
            self.dropped += 1
        return span

    def end_span(self, span: Span, status: str = "ok") -> None:
        """Close a span (idempotent; keeps the first end time)."""
        if span.finished:
            return
        span.end_us = self.env.now
        span.status = status
        self._open_roots.pop(span.span_id, None)

    def incident(self, kind: str, target: str, detail: Any = None) -> None:
        """Record a fault incident: global instant + events on all
        in-flight requests (open root spans)."""
        record: Dict[str, Any] = {"kind": kind, "target": target,
                                  "ts": self.env.now}
        if detail is not None:
            record["detail"] = repr(detail)
        self.incidents.append(record)
        for span in self._open_roots.values():
            span.event(f"fault:{kind}", self.env.now, target=target)

    def mark(self, name: str, category: str = "mark", **args) -> None:
        """Record a global annotation instant (e.g. an alert firing).

        Purely additive: marks only affect exports, never the
        simulation — the no-perturb guarantee extends to them.
        """
        record: Dict[str, Any] = {"name": name, "ts": self.env.now,
                                  "category": category}
        record.update(args)
        self.marks.append(record)

    # -- queries (used by tests and experiments) -----------------------------
    def trace_ids(self) -> List[int]:
        return sorted({s.trace_id for s in self.spans})

    def trace(self, trace_id: int) -> List[Span]:
        """All spans of one trace, in start order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans
                if s.trace_id == span.trace_id
                and s.parent_id == span.span_id]

    def find(self, name_prefix: str = "",
             trace_id: Optional[int] = None) -> List[Span]:
        return [s for s in self.spans
                if s.name.startswith(name_prefix)
                and (trace_id is None or s.trace_id == trace_id)]

    def check_integrity(self, trace_id: Optional[int] = None) -> List[str]:
        """Structural violations in stored spans (empty = well-formed).

        Checks: every non-root parent exists in the same trace, exactly
        one root per trace, children start no earlier than their
        parent, and finished children of finished parents end no later.
        Only meaningful when nothing was dropped.
        """
        spans = (self.spans if trace_id is None else self.trace(trace_id))
        errors: List[str] = []
        by_id = {s.span_id: s for s in spans}
        roots_per_trace: Dict[int, int] = {}
        for s in spans:
            if s.parent_id is None:
                roots_per_trace[s.trace_id] = \
                    roots_per_trace.get(s.trace_id, 0) + 1
                continue
            parent = by_id.get(s.parent_id)
            if parent is None:
                errors.append(f"span {s.span_id} ({s.name}): parent "
                              f"{s.parent_id} not found")
                continue
            if parent.trace_id != s.trace_id:
                errors.append(f"span {s.span_id}: trace mismatch with parent")
            if s.start_us < parent.start_us:
                errors.append(f"span {s.span_id} ({s.name}): starts before "
                              f"parent {parent.name}")
            if (s.finished and parent.finished
                    and s.end_us > parent.end_us
                    and s.category not in ("function", "engine", "rdma")):
                # async hand-offs (engine/rdma/function work) may outlive
                # the span that posted them; strictly-scoped categories
                # must nest.
                errors.append(f"span {s.span_id} ({s.name}): ends after "
                              f"parent {parent.name}")
        for tid, count in roots_per_trace.items():
            if count != 1:
                errors.append(f"trace {tid}: {count} roots")
        return errors

    # -- Chrome trace-event export -------------------------------------------
    def to_chrome(self, include_open: bool = False) -> Dict[str, Any]:
        """Export as a Chrome trace-event JSON object (Perfetto-ready)."""
        nodes = sorted({s.node or "sim" for s in self.spans})
        pids = {node: i + 1 for i, node in enumerate(nodes)}
        lanes = sorted({(s.node or "sim", s.actor or "main")
                        for s in self.spans})
        tids: Dict[Tuple[str, str], int] = {}
        per_node_count: Dict[str, int] = {}
        for node, actor in lanes:
            per_node_count[node] = per_node_count.get(node, 0) + 1
            tids[(node, actor)] = per_node_count[node]

        events: List[Dict[str, Any]] = []
        for node in nodes:
            events.append({"name": "process_name", "ph": "M", "ts": 0.0,
                           "pid": pids[node], "tid": 0,
                           "args": {"name": node}})
        for (node, actor), tid in sorted(tids.items()):
            events.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                           "pid": pids[node], "tid": tid,
                           "args": {"name": actor}})
        for s in sorted(self.spans, key=lambda s: (s.start_us, s.span_id)):
            if not s.finished and not include_open:
                continue
            end = s.end_us if s.finished else s.start_us
            args: Dict[str, Any] = {"trace_id": s.trace_id,
                                    "span_id": s.span_id,
                                    "status": s.status}
            if s.parent_id is not None:
                args["parent_id"] = s.parent_id
            for k, v in s.tags.items():
                args[str(k)] = v if isinstance(v, (int, float, bool)) else str(v)
            node = s.node or "sim"
            events.append({
                "name": s.name, "cat": s.category or "span", "ph": "X",
                "ts": s.start_us, "dur": max(0.0, end - s.start_us),
                "pid": pids[node], "tid": tids[(node, s.actor or "main")],
                "args": args,
            })
            for ev in s.events:
                events.append({
                    "name": ev["name"], "cat": "event", "ph": "i",
                    "ts": ev["ts"], "s": "t",
                    "pid": pids[node],
                    "tid": tids[(node, s.actor or "main")],
                    "args": {k: str(v) for k, v in ev.items()
                             if k not in ("name", "ts")},
                })
        for inc in self.incidents:
            events.append({
                "name": f"fault:{inc['kind']}", "cat": "fault", "ph": "i",
                "ts": inc["ts"], "s": "g", "pid": 0, "tid": 0,
                "args": {"target": inc["target"]},
            })
        for mark in self.marks:
            events.append({
                "name": mark["name"], "cat": mark.get("category", "mark"),
                "ph": "i", "ts": mark["ts"], "s": "g", "pid": 0, "tid": 0,
                "args": {k: (v if isinstance(v, (int, float, bool))
                             else str(v))
                         for k, v in mark.items()
                         if k not in ("name", "ts", "category")},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "spans": len(self.spans),
                "dropped": self.dropped,
                "clock": "simulated-us",
            },
        }

    def to_chrome_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=False)


#: phases we emit (and therefore validate): complete, instant, metadata
_VALID_PHASES = {"X", "i", "M"}
_VALID_SCOPES = {"g", "p", "t"}


def validate_chrome_trace(data: Any) -> List[str]:
    """Validate an exported trace against the trace-event schema subset
    this module emits.  Returns a list of violations (empty = valid).

    Hand-rolled on purpose — the repo takes no jsonschema dependency.
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["top level must be an object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty name")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            errors.append(f"{where}: pid/tid must be integers")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        elif ph == "i":
            if ev.get("s") not in _VALID_SCOPES:
                errors.append(f"{where}: instant event needs scope in "
                              f"{sorted(_VALID_SCOPES)}")
        elif ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                errors.append(f"{where}: metadata event needs args.name")
    return errors
