"""Continuous SLO monitoring: recording rules + multi-window burn-rate
alerts, evaluated in *simulated* time.

The monitor is the third telemetry consumer (after exporters and the
profiler) and keeps the same contract: it never creates simulation
events, never yields, never draws random numbers.  It has no clock of
its own — it **piggybacks on metric observations**: every
instrumentation site already performs a registry family lookup, and the
registry's ``observer`` hook hands that moment to the monitor, which
catches up on any step boundaries the simulation crossed since the last
observation.  Rule evaluation is pure arithmetic over registry state,
so enabling the monitor keeps simulation output byte-identical
(extends the PR-2 no-perturb guarantee; asserted in CI).

Three rule shapes cover the Prometheus recording-rule idioms used here:

* :class:`RateRule` — windowed ``rate()`` over a counter sum;
* :class:`RatioRule` — ratio of two windowed counter deltas;
* :class:`QuantileRule` — ``histogram_quantile`` over windowed bucket
  deltas.

SLOs (:class:`Slo`) are declarative: a good/total SLI (either a latency
histogram + threshold, or explicit good/total counter sets) plus an
objective.  Alerting follows the multi-window burn-rate recipe: a
*fast* (long, short) window pair pages on sharp budget burn, a *slow*
pair tickets on sustained burn; both the long and short window of a
pair must exceed the pair's threshold for it to fire.  Window lengths
are simulated time — milliseconds here play the role wall-clock
minutes play in production monitoring.

Firing/resolve transitions land in three places: the monitor's own
``timeline`` (JSON-safe, attached to ``ExperimentResult``), the span
tracer's global ``marks`` (exported into the Chrome trace as instant
events), and the per-rule recorded series consumed by the dashboard.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BurnWindow",
    "Monitor",
    "QuantileRule",
    "RateRule",
    "RatioRule",
    "Selector",
    "Slo",
    "DEFAULT_BURN_WINDOWS",
]


class Selector:
    """One watched series set: a family name + label matchers.

    ``where`` filters children by exact label values; children missing
    a matched label never match.  Sums over every matching child, so a
    selector with no matchers reads the whole family.
    """

    __slots__ = ("metric", "where", "_indices")

    def __init__(self, metric: str, where: Optional[Dict[str, str]] = None):
        self.metric = metric
        self.where = {k: str(v) for k, v in (where or {}).items()}
        self._indices: Optional[List[Tuple[int, str]]] = None

    @property
    def key(self) -> str:
        matchers = ",".join(f'{k}="{v}"' for k, v in sorted(self.where.items()))
        return f"{self.metric}{{{matchers}}}" if matchers else self.metric

    def _match(self, family) -> List[Tuple[Tuple[str, ...], object]]:
        if self._indices is None:
            names = list(family.labelnames)
            self._indices = [(names.index(k), v)
                             for k, v in sorted(self.where.items())
                             if k in names]
            if len(self._indices) != len(self.where):
                self._indices = []   # unmatched label name: match nothing
                return []
        if len(self._indices) != len(self.where):
            return []
        return [(key, child) for key, child in family._children.items()
                if all(key[i] == v for i, v in self._indices)]

    def children(self, registry):
        family = registry.get(self.metric)
        if family is None:
            return []
        return self._match(family)

    def scalar(self, registry) -> float:
        """Sum of matching counter/gauge child values."""
        return float(sum(child.value
                         for _, child in self.children(registry)))


def _hist_children(selector: Selector, registry):
    return [child for _, child in selector.children(registry)]


class _Input:
    """Ring of timestamped samples for one selector + extractor."""

    __slots__ = ("key", "_extract", "samples", "max_samples")

    def __init__(self, key: str, extract, max_samples: int):
        self.key = key
        self._extract = extract
        self.max_samples = max_samples
        self.samples: List[Tuple[float, Any]] = []

    def record(self, t: float, registry) -> None:
        self.samples.append((t, self._extract(registry)))
        if len(self.samples) > self.max_samples:
            # Drop the oldest quarter in one slice: amortized O(1).
            keep = self.max_samples * 3 // 4
            del self.samples[:-keep]

    def at_or_before(self, t: float) -> Optional[Tuple[float, Any]]:
        """Latest sample with timestamp <= t (None before first)."""
        best = None
        for ts, value in reversed(self.samples):
            if ts <= t:
                return (ts, value)
        return best

    def latest(self) -> Optional[Tuple[float, Any]]:
        return self.samples[-1] if self.samples else None


class RateRule:
    """``rate(metric[window])`` — per-second increase of a counter sum."""

    def __init__(self, name: str, metric: str, window_us: float,
                 where: Optional[Dict[str, str]] = None):
        self.name = name
        self.window_us = window_us
        self.selector = Selector(metric, where)

    def inputs(self):
        return [(self.selector.key, self.selector.scalar)]

    def eval(self, monitor, t: float) -> float:
        delta, span_us = monitor._delta(self.selector.key, t, self.window_us)
        return delta / (span_us / 1e6) if span_us > 0 else 0.0


class RatioRule:
    """Ratio of two windowed counter deltas (e.g. error ratio).

    ``num`` and ``den`` are selectors or lists of selectors; lists are
    summed.  With a zero denominator delta the ratio reports
    ``default`` (1.0 — "no traffic, no violation" — unless overridden).
    """

    def __init__(self, name: str, num, den, window_us: float,
                 default: float = 1.0):
        self.name = name
        self.window_us = window_us
        self.num = _as_selectors(num)
        self.den = _as_selectors(den)
        self.default = default

    def inputs(self):
        return [(s.key, s.scalar) for s in self.num + self.den]

    def eval(self, monitor, t: float) -> float:
        num = sum(monitor._delta(s.key, t, self.window_us)[0]
                  for s in self.num)
        den = sum(monitor._delta(s.key, t, self.window_us)[0]
                  for s in self.den)
        return num / den if den > 0 else self.default


class QuantileRule:
    """``histogram_quantile(q, rate(metric_bucket[window]))``.

    Windowed: the quantile is computed from *bucket-count deltas* over
    the window, so it tracks the recent distribution rather than the
    run-lifetime one.  Reports 0.0 when the window saw no samples.
    """

    def __init__(self, name: str, metric: str, q: float, window_us: float,
                 where: Optional[Dict[str, str]] = None):
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        self.name = name
        self.q = q
        self.window_us = window_us
        self.selector = Selector(metric, where)

    def _counts(self, registry) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
        children = _hist_children(self.selector, registry)
        if not children:
            return ((), ())
        bounds = children[0].bounds
        counts = [0] * (len(bounds) + 1)
        for child in children:
            for i, c in enumerate(child.counts):
                counts[i] += c
        return (bounds, tuple(counts))

    def inputs(self):
        return [(f"{self.selector.key}#buckets", self._counts)]

    def eval(self, monitor, t: float) -> float:
        key = f"{self.selector.key}#buckets"
        now = monitor._input_value(key)
        then, _span = monitor._window_base(key, t, self.window_us)
        if now is None:
            return 0.0
        bounds, cur = now
        if not bounds:
            return 0.0
        base = then[1] if then is not None and then[1] else (0,) * len(cur)
        if len(base) != len(cur):
            base = (0,) * len(cur)
        deltas = [c - b for c, b in zip(cur, base)]
        total = sum(deltas)
        if total <= 0:
            return 0.0
        rank = self.q * total
        seen = 0
        for i, c in enumerate(deltas):
            seen += c
            if seen >= rank and c:
                return bounds[i] if i < len(bounds) else bounds[-1]
        return bounds[-1]


def _as_selectors(spec) -> List[Selector]:
    if isinstance(spec, Selector):
        return [spec]
    if isinstance(spec, str):
        return [Selector(spec)]
    out: List[Selector] = []
    for item in spec:
        out.append(item if isinstance(item, Selector) else Selector(item))
    return out


class BurnWindow:
    """One (long, short, threshold) burn-rate alert window pair."""

    __slots__ = ("name", "long_us", "short_us", "threshold", "severity")

    def __init__(self, name: str, long_us: float, short_us: float,
                 threshold: float, severity: str = "page"):
        self.name = name
        self.long_us = long_us
        self.short_us = short_us
        self.threshold = threshold
        self.severity = severity


#: the classic fast + slow multi-window pairs, scaled to simulated
#: milliseconds (5s/1s and 60s/5s in the SRE workbook become 5ms/1ms
#: and 60ms/5ms here — simulated runs live on a 1000x faster clock)
DEFAULT_BURN_WINDOWS = (
    BurnWindow("fast", 5_000.0, 1_000.0, threshold=8.0, severity="page"),
    BurnWindow("slow", 60_000.0, 5_000.0, threshold=3.0, severity="ticket"),
)


class Slo:
    """A declarative good/total SLI plus an objective and burn windows.

    Two SLI shapes:

    * latency — ``hist_metric`` + ``threshold_us``: good = observations
      at or under the threshold (snapped to the enclosing histogram
      bucket bound), total = all observations;
    * availability — ``good``/``total`` counter selector sets: good and
      total are windowed counter deltas (lists are summed, so a
      deliberate admission shed can be counted as "handled").

    ``min_events`` suppresses alerting on windows with fewer total
    events than that (no data is not an outage).
    """

    def __init__(self, name: str, objective: float,
                 hist_metric: Optional[str] = None,
                 threshold_us: Optional[float] = None,
                 good=None, total=None,
                 where: Optional[Dict[str, str]] = None,
                 windows: Sequence[BurnWindow] = DEFAULT_BURN_WINDOWS,
                 min_events: int = 10,
                 labels: Optional[Dict[str, str]] = None):
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1): {objective}")
        latency_sli = hist_metric is not None
        if latency_sli == (good is not None):
            raise ValueError(
                "define exactly one of hist_metric or good/total")
        if latency_sli and threshold_us is None:
            raise ValueError("a latency SLI needs threshold_us")
        self.name = name
        self.objective = objective
        self.budget = 1.0 - objective
        self.windows = tuple(windows)
        self.min_events = min_events
        self.labels = dict(labels or {})
        self.hist_selector = (Selector(hist_metric, where)
                              if latency_sli else None)
        self.threshold_us = threshold_us
        self.good = _as_selectors(good) if good is not None else []
        self.total = (_as_selectors(total)
                      if total is not None else [])
        if not latency_sli and not self.total:
            raise ValueError("an availability SLI needs total selectors")
        # alert state
        self.firing = False
        self.fired_window: Optional[str] = None

    # -- sampling ------------------------------------------------------------
    def _hist_pair(self, registry) -> Tuple[float, float]:
        """(good, total) cumulative counts for the latency SLI."""
        children = _hist_children(self.hist_selector, registry)
        good = total = 0.0
        for child in children:
            idx = bisect_left(child.bounds, self.threshold_us)
            idx = min(idx, len(child.bounds) - 1)
            good += sum(child.counts[:idx + 1])
            total += child.count
        return (good, total)

    def inputs(self):
        if self.hist_selector is not None:
            return [(f"{self.hist_selector.key}#le{self.threshold_us}",
                     self._hist_pair)]
        return ([(s.key, s.scalar) for s in self.good]
                + [(s.key, s.scalar) for s in self.total])

    # -- evaluation ----------------------------------------------------------
    def _window_ratio(self, monitor, t: float,
                      window_us: float) -> Tuple[float, float]:
        """(good_ratio, total_events) over one window."""
        if self.hist_selector is not None:
            key = f"{self.hist_selector.key}#le{self.threshold_us}"
            delta, _span = monitor._delta_pair(key, t, window_us)
            good, total = delta
        else:
            good = sum(monitor._delta(s.key, t, window_us)[0]
                       for s in self.good)
            total = sum(monitor._delta(s.key, t, window_us)[0]
                        for s in self.total)
        if total <= 0:
            return (1.0, 0.0)
        return (min(good / total, 1.0), total)

    def burn_rates(self, monitor, t: float) -> Dict[str, float]:
        """Burn rate over every distinct window length (for series)."""
        out: Dict[str, float] = {}
        for w in self.windows:
            for tag, length in (("long", w.long_us), ("short", w.short_us)):
                label = f"{w.name}_{tag}"
                ratio, total = self._window_ratio(monitor, t, length)
                if total < self.min_events:
                    out[label] = 0.0
                else:
                    out[label] = (1.0 - ratio) / self.budget
        return out

    def evaluate(self, monitor, t: float) -> List[Dict[str, Any]]:
        """Advance alert state; returns transition records (if any).

        ``min_events`` gates the *long* window only; the short window
        is the "still happening right now" check and just needs data —
        at low per-tenant rates a 1 ms window rarely holds min_events
        and would otherwise mute every page.
        """
        firing_pair: Optional[BurnWindow] = None
        firing_burn = 0.0
        max_burn = 0.0
        for w in self.windows:
            long_ratio, long_total = self._window_ratio(monitor, t,
                                                        w.long_us)
            if long_total < self.min_events:
                continue
            short_ratio, short_total = self._window_ratio(monitor, t,
                                                          w.short_us)
            long_burn = (1.0 - long_ratio) / self.budget
            short_burn = (1.0 - short_ratio) / self.budget
            max_burn = max(max_burn, long_burn)
            if (long_burn > w.threshold and short_total > 0
                    and short_burn > w.threshold
                    and firing_pair is None):
                firing_pair = w
                firing_burn = long_burn
        transitions: List[Dict[str, Any]] = []
        if firing_pair is not None and not self.firing:
            self.firing = True
            self.fired_window = firing_pair.name
            transitions.append({
                "alert": self.name, "state": "firing", "ts": t,
                "window": firing_pair.name,
                "severity": firing_pair.severity,
                "burn": round(firing_burn, 3),
                **self.labels,
            })
        elif firing_pair is None and self.firing:
            self.firing = False
            transitions.append({
                "alert": self.name, "state": "resolved", "ts": t,
                "window": self.fired_window or "",
                "severity": "info",
                "burn": round(max_burn, 3),
                **self.labels,
            })
            self.fired_window = None
        return transitions


class Monitor:
    """The recording-rule / SLO engine bound to one telemetry bundle.

    Create it via :meth:`install`; add rules and SLOs *before* traffic
    starts so window baselines are clean.  All evaluation happens at
    multiples of ``step_us`` in simulated time, triggered lazily by the
    registry's observer hook.
    """

    def __init__(self, env, metrics, tracer=None, step_us: float = 1_000.0,
                 max_points: int = 100_000, catchup_steps: int = 64,
                 arm_at_us: float = 0.0):
        self.env = env
        self.metrics = metrics
        self.tracer = tracer
        self.step_us = step_us
        self.max_points = max_points
        self.catchup_steps = catchup_steps
        #: alerts are suppressed before this simulated instant (rules
        #: still record).  Arm after the workload settles — a burn
        #: window reaching back into an idle warmup reads "requests
        #: arriving, nothing answered yet" as an outage.
        self.arm_at_us = arm_at_us
        self.rules: List[object] = []
        self.slos: List[Slo] = []
        #: recording-rule outputs: rule name -> [(t, value), ...]
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        #: alert transitions in firing order (JSON-safe dicts)
        self.timeline: List[Dict[str, Any]] = []
        self.evaluations = 0
        self.dropped_points = 0
        self._inputs: Dict[str, _Input] = {}
        self._next_eval = self._boundary_after(env.now)
        self._in_eval = False

    # -- wiring --------------------------------------------------------------
    @classmethod
    def install(cls, telemetry, **kwargs) -> "Monitor":
        """Create a monitor, hook it to the telemetry bundle's registry
        observer, and publish it as ``telemetry.monitor``."""
        monitor = cls(telemetry.env, telemetry.metrics,
                      tracer=telemetry.tracer, **kwargs)
        telemetry.metrics.observer = monitor._pulse
        telemetry.monitor = monitor
        return monitor

    def _boundary_after(self, now: float) -> float:
        steps = int(now // self.step_us) + 1
        return steps * self.step_us

    def _ensure_input(self, key: str, extract, window_us: float) -> None:
        needed = int(window_us // self.step_us) + 8
        existing = self._inputs.get(key)
        if existing is None:
            self._inputs[key] = _Input(key, extract, needed)
        elif existing.max_samples < needed:
            existing.max_samples = needed

    def _register(self, obj, window_us: float) -> None:
        for key, extract in obj.inputs():
            self._ensure_input(key, extract, window_us)

    def add_rule(self, rule) -> None:
        """Register a recording rule (Rate/Ratio/QuantileRule)."""
        if any(r.name == rule.name for r in self.rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        self._register(rule, rule.window_us)

    def add_slo(self, slo: Slo) -> None:
        """Register an SLO with burn-rate alerting."""
        if any(s.name == slo.name for s in self.slos):
            raise ValueError(f"duplicate SLO name {slo.name!r}")
        self.slos.append(slo)
        longest = max((w.long_us for w in slo.windows), default=0.0)
        self._register(slo, longest)

    # -- piggyback evaluation ------------------------------------------------
    def _pulse(self) -> None:
        """Registry observer: called on every instrumentation site."""
        if self._in_eval:
            return
        now = self.env.now
        if now < self._next_eval:
            return
        pending = int((now - self._next_eval) // self.step_us) + 1
        if pending > self.catchup_steps:
            # A long quiet stretch: evaluating hundreds of identical
            # boundaries adds nothing — keep the newest ones only.
            skipped = pending - self.catchup_steps
            self._next_eval += skipped * self.step_us
        self._in_eval = True
        try:
            while self._next_eval <= now:
                self._evaluate(self._next_eval)
                self._next_eval += self.step_us
        finally:
            self._in_eval = False

    def _evaluate(self, t: float) -> None:
        self.evaluations += 1
        for input_ in self._inputs.values():
            input_.record(t, self.metrics)
        for rule in self.rules:
            value = rule.eval(self, t)
            points = self.series.setdefault(rule.name, [])
            if len(points) < self.max_points:
                points.append((t, value))
            else:
                self.dropped_points += 1
        if t < self.arm_at_us:
            return
        for slo in self.slos:
            for transition in slo.evaluate(self, t):
                self.timeline.append(transition)
                if self.tracer is not None:
                    self.tracer.mark(
                        f"alert:{slo.name}", category="alert",
                        state=transition["state"],
                        window=transition["window"],
                        severity=transition["severity"],
                        burn=transition["burn"])

    # -- window arithmetic (used by the rule classes) ------------------------
    def _input_value(self, key: str):
        input_ = self._inputs.get(key)
        if input_ is None:
            return None
        latest = input_.latest()
        return latest[1] if latest is not None else None

    def _window_base(self, key: str, t: float, window_us: float):
        """(sample, actual_span_us) at-or-before the window start."""
        input_ = self._inputs.get(key)
        if input_ is None or not input_.samples:
            return (None, 0.0)
        base = input_.at_or_before(t - window_us)
        if base is None:
            base = input_.samples[0]
        return (base, t - base[0])

    def _delta(self, key: str, t: float,
               window_us: float) -> Tuple[float, float]:
        """(value delta, actual span us) for a scalar input."""
        input_ = self._inputs.get(key)
        if input_ is None or not input_.samples:
            return (0.0, 0.0)
        now = input_.latest()
        base, span = self._window_base(key, t, window_us)
        if base is None or base[0] >= now[0]:
            return (0.0, 0.0)
        return (now[1] - base[1], min(span, t) or span)

    def _delta_pair(self, key: str, t: float,
                    window_us: float) -> Tuple[Tuple[float, float], float]:
        """Delta for a (good, total) tuple input."""
        input_ = self._inputs.get(key)
        if input_ is None or not input_.samples:
            return ((0.0, 0.0), 0.0)
        now = input_.latest()
        base, span = self._window_base(key, t, window_us)
        if base is None or base[0] >= now[0]:
            return ((0.0, 0.0), 0.0)
        return ((now[1][0] - base[1][0], now[1][1] - base[1][1]), span)

    # -- results -------------------------------------------------------------
    def alert_spans(self) -> List[Dict[str, Any]]:
        """Firing intervals: [{alert, fired_ts, resolved_ts|None, ...}]."""
        open_: Dict[str, Dict[str, Any]] = {}
        spans: List[Dict[str, Any]] = []
        for tr in self.timeline:
            if tr["state"] == "firing":
                record = {"alert": tr["alert"], "fired_ts": tr["ts"],
                          "resolved_ts": None, "window": tr["window"],
                          "severity": tr["severity"], "burn": tr["burn"]}
                open_[tr["alert"]] = record
                spans.append(record)
            elif tr["alert"] in open_:
                open_.pop(tr["alert"])["resolved_ts"] = tr["ts"]
        return spans

    def first_firing_us(self) -> Optional[float]:
        """Simulated instant of the first alert firing, if any."""
        for tr in self.timeline:
            if tr["state"] == "firing":
                return tr["ts"]
        return None

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: rule series, alert timeline, SLO summary."""
        return {
            "step_us": self.step_us,
            "evaluations": self.evaluations,
            "rules": {name: [[t, v] for t, v in points]
                      for name, points in sorted(self.series.items())},
            "alerts": list(self.timeline),
            "alert_spans": self.alert_spans(),
            "slos": [
                {"name": s.name, "objective": s.objective,
                 "firing": s.firing, **s.labels}
                for s in self.slos
            ],
        }
