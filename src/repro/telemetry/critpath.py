"""Critical-path analysis over :class:`SpanTracer` forests.

Answers "where did my p99 go": for every finished request trace,
attribute **every instant** of the root's wall-clock window to exactly
one stage — the *deepest span active at that instant*, mapped to a
small stable stage vocabulary (``queueing``, ``engine.tx``,
``rdma.send``, ``engine.rx``, ``fn.exec``, ``iolib`` ...).  The spans
form causality chains rather than nested intervals (an ``engine.rx``
child outlives the ``rdma.send`` that caused it), so attribution is an
event sweep over the whole trace, not a tree walk: at each instant the
span furthest from the root wins, and instants where only the root is
active are *queueing* — the request sat in an ingress/dispatch queue
with nobody working on it.  Per-request attributions aggregate into a
p50/p99 stage-attribution table, and two reports diff into a "dominant
stage shift" between sweep points (the tail moved from the wire to the
queue, say, when a baseline saturates).

Pure post-processing: reads stored spans only, never the simulation.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .spans import Span, SpanTracer

__all__ = ["CriticalPathReport", "analyze", "dominant_shift", "stage_of"]

#: canonical display order for known stages (extras append after, sorted)
STAGE_ORDER = [
    "queueing", "ingress", "engine.tx", "rdma.send", "engine.rx",
    "fn.exec", "fn.invoke", "iolib", "migration",
]

_PREFIX_STAGES = [
    ("engine.tx", "engine.tx"),
    ("engine.rx", "engine.rx"),
    ("rdma.", "rdma.send"),
    ("fn.exec", "fn.exec"),
    ("fn.invoke", "fn.invoke"),
    ("iolib.", "iolib"),
    ("gw.", "ingress"),
    ("ingress", "ingress"),
    ("migrate", "migration"),
    ("drain", "migration"),
]


def stage_of(span: Span) -> str:
    """Map a span to its stage name (``other:*`` when unrecognized)."""
    name = span.name
    if name.startswith("request:") or name.startswith("invoke:"):
        # A root's *self* time is queueing: nobody worked the request.
        return "queueing"
    for prefix, stage in _PREFIX_STAGES:
        if name.startswith(prefix):
            return stage
    if span.category == "rdma":
        return "rdma.send"
    if span.category == "function":
        return "fn.exec"
    return f"other:{span.category or name.split(':')[0]}"


class CriticalPathReport:
    """Aggregated critical paths for one run (one tracer)."""

    def __init__(self, requests: List[Dict[str, Any]], label: str = ""):
        #: per-request rows: {trace_id, total_us, stages: {stage: us}}
        self.requests = sorted(requests,
                               key=lambda r: (r["total_us"], r["trace_id"]))
        self.label = label

    def __len__(self) -> int:
        return len(self.requests)

    # -- per-quantile --------------------------------------------------------
    def quantile_request(self, q: float) -> Optional[Dict[str, Any]]:
        """The request whose total latency sits at quantile ``q``."""
        if not self.requests:
            return None
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        idx = min(int(q * len(self.requests)), len(self.requests) - 1)
        return self.requests[idx]

    def stage_shares(self, q: float) -> Dict[str, float]:
        """Stage -> share of the quantile-``q`` request's latency."""
        req = self.quantile_request(q)
        if req is None or req["total_us"] <= 0:
            return {}
        return {stage: us / req["total_us"]
                for stage, us in req["stages"].items()}

    def dominant_stage(self, q: float = 0.99) -> Tuple[str, float]:
        """(stage, share) with the largest share at quantile ``q``."""
        shares = self.stage_shares(q)
        if not shares:
            return ("", 0.0)
        stage = max(sorted(shares), key=lambda s: shares[s])
        return (stage, shares[stage])

    def named_coverage(self, q: float = 0.99) -> float:
        """Fraction of the quantile-``q`` latency attributed to *named*
        stages (everything except ``other:*``)."""
        req = self.quantile_request(q)
        if req is None or req["total_us"] <= 0:
            return 0.0
        named = sum(us for stage, us in req["stages"].items()
                    if not stage.startswith("other:"))
        return named / req["total_us"]

    # -- table ---------------------------------------------------------------
    def _stage_list(self) -> List[str]:
        seen = set()
        for req in self.requests:
            seen.update(req["stages"])
        ordered = [s for s in STAGE_ORDER if s in seen]
        ordered += sorted(s for s in seen if s not in STAGE_ORDER)
        return ordered

    def table(self) -> List[Dict[str, Any]]:
        """p50/p99 stage-attribution rows (µs and share per stage)."""
        p50 = self.quantile_request(0.50)
        p99 = self.quantile_request(0.99)
        rows: List[Dict[str, Any]] = []
        if p50 is None or p99 is None:
            return rows
        # mean share across every request, weighted by nothing (each
        # request votes once) — robust to a few huge outliers
        mean_shares: Dict[str, float] = {}
        counted = 0
        for req in self.requests:
            if req["total_us"] <= 0:
                continue
            counted += 1
            for stage, us in req["stages"].items():
                mean_shares[stage] = (mean_shares.get(stage, 0.0)
                                      + us / req["total_us"])
        for stage in self._stage_list():
            rows.append({
                "stage": stage,
                "p50_us": round(p50["stages"].get(stage, 0.0), 3),
                "p50_share": round(p50["stages"].get(stage, 0.0)
                                   / p50["total_us"], 4)
                if p50["total_us"] else 0.0,
                "p99_us": round(p99["stages"].get(stage, 0.0), 3),
                "p99_share": round(p99["stages"].get(stage, 0.0)
                                   / p99["total_us"], 4)
                if p99["total_us"] else 0.0,
                "mean_share": round(mean_shares.get(stage, 0.0)
                                    / counted, 4) if counted else 0.0,
            })
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (dashboard + ExperimentResult payload)."""
        p50 = self.quantile_request(0.50)
        p99 = self.quantile_request(0.99)
        dom_stage, dom_share = self.dominant_stage(0.99)
        return {
            "label": self.label,
            "requests": len(self.requests),
            "p50_total_us": round(p50["total_us"], 3) if p50 else 0.0,
            "p99_total_us": round(p99["total_us"], 3) if p99 else 0.0,
            "dominant_stage_p99": dom_stage,
            "dominant_share_p99": round(dom_share, 4),
            "named_coverage_p99": round(self.named_coverage(0.99), 4),
            "table": self.table(),
        }


def _attribute(root: Span, members: List[Tuple[Span, int]],
               out: Dict[str, float]) -> None:
    """Attribute [root.start, root.end) to stages by an event sweep.

    ``members`` is the root's subtree as (span, depth) pairs.  Spans
    are causality chains, not nested intervals — a child routinely
    outlives its parent — so each elementary interval between span
    boundaries is charged to the *deepest* span covering it (ties to
    the later-started one).  Intervals covered only by the root charge
    the root's own stage (queueing).
    """
    lo, hi = root.start_us, root.end_us
    if hi <= lo:
        return
    clipped: List[Tuple[float, float, int, Span]] = []
    bounds = {lo, hi}
    for span, depth in members:
        cs, ce = max(span.start_us, lo), min(span.end_us, hi)
        if ce <= cs:
            continue
        clipped.append((cs, ce, depth, span))
        bounds.add(cs)
        bounds.add(ce)
    clipped.sort(key=lambda item: item[0])
    edges = sorted(bounds)
    # Active-set sweep: a max-heap of (depth, start, span_id) with lazy
    # expiry — the top after popping expired entries is the deepest
    # span covering the current elementary interval.
    heap: List[Tuple[float, float, float, float, str]] = []
    nxt = 0
    for t0, t1 in zip(edges, edges[1:]):
        while nxt < len(clipped) and clipped[nxt][0] <= t0:
            cs, ce, depth, span = clipped[nxt]
            nxt += 1
            heapq.heappush(heap,
                           (-depth, -cs, -span.span_id, ce, stage_of(span)))
        while heap and heap[0][3] <= t0:
            heapq.heappop(heap)
        stage = heap[0][4] if heap else stage_of(root)
        out[stage] = out.get(stage, 0.0) + (t1 - t0)


def _subtree(root: Span,
             children_of: Dict[int, List[Span]]) -> List[Tuple[Span, int]]:
    """Finished spans reachable from ``root`` with their tree depth."""
    members: List[Tuple[Span, int]] = []
    stack: List[Tuple[Span, int]] = [(root, 0)]
    while stack:
        span, depth = stack.pop()
        members.append((span, depth))
        for child in children_of.get(span.span_id, ()):
            if child.finished:
                stack.append((child, depth + 1))
    return members


def analyze(tracer: SpanTracer,
            root_prefixes: Sequence[str] = ("request:", "invoke:"),
            label: str = "") -> CriticalPathReport:
    """Build a critical-path report from one tracer's finished roots.

    Spans whose parent was dropped by the tracer's cap are unreachable
    from any stored root and are simply not attributed; run reports on
    un-truncated tracers for exact accounting.
    """
    children_of: Dict[int, List[Span]] = {}
    for span in tracer.spans:
        if span.parent_id is not None:
            children_of.setdefault(span.parent_id, []).append(span)
    for siblings in children_of.values():
        siblings.sort(key=lambda s: (s.start_us, s.span_id))

    requests: List[Dict[str, Any]] = []
    for root in tracer.roots():
        if not root.finished:
            continue
        if root_prefixes and not any(root.name.startswith(p)
                                     for p in root_prefixes):
            continue
        stages: Dict[str, float] = {}
        _attribute(root, _subtree(root, children_of), stages)
        requests.append({
            "trace_id": root.trace_id,
            "name": root.name,
            "total_us": root.duration_us,
            "stages": stages,
        })
    return CriticalPathReport(requests, label=label)


def dominant_shift(reports: "Dict[Any, CriticalPathReport]",
                   q: float = 0.99) -> List[Dict[str, Any]]:
    """Diff dominant stages across sweep points.

    ``reports`` maps sweep-point label -> report (insertion order is
    sweep order).  Each row carries the point's dominant stage at
    quantile ``q`` and whether it *shifted* from the previous point —
    the "the tail moved from the wire into the queue" signal.
    """
    rows: List[Dict[str, Any]] = []
    prev_stage: Optional[str] = None
    for point, report in reports.items():
        stage, share = report.dominant_stage(q)
        rows.append({
            "point": point,
            "dominant_stage": stage,
            "share": round(share, 4),
            "p99_total_us": round(
                (report.quantile_request(q) or {}).get("total_us", 0.0), 3),
            "shifted": prev_stage is not None and stage != prev_stage,
        })
        prev_stage = stage
    return rows
