"""Cycle accounting: where do the data plane's CPU cycles go?

The paper's Fig. 4/5 argument is a *breakdown*: SPRIGHT-style gateways
burn most of their cycles on data copies and kernel TCP protocol
processing, while Palladium's DNE spends them on descriptor handling
and useful work.  :class:`CycleLedger` reproduces that attribution for
the simulated cores in ``hw/cpu.py``: every instrumented charge site
reports the core-microseconds it consumed under one of five
categories:

``app``
    handler compute (``FunctionContext.compute``) — useful work.
``copy``
    data copies (cross-domain rule, kernel socket copies).
``descriptor``
    descriptor-passing machinery: DNE tx/rx processing, Comch channel
    CPU, sk_msg redirects, mempool ops.
``protocol``
    transport/protocol stacks: kernel TCP + IRQs, F-Stack, HTTP
    parse/serialize, sidecar interception, interrupt handling.
``scheduling``
    DWRR/tenant scheduling decisions.

Charges are core-local microseconds (already scaled by the core's
speed factor, i.e. matching ``busy_us`` accounting); ``cycles()``
converts to cycles with the host clock.  The ledger is passive
arithmetic — charging never touches the event loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["CYCLE_CATEGORIES", "CycleLedger"]

CYCLE_CATEGORIES: Tuple[str, ...] = (
    "app", "copy", "descriptor", "protocol", "scheduling",
)

#: categories that are pure overhead (everything except useful app work
#: and the descriptor passing that replaces it in a shared-memory DPU
#: design — the paper counts descriptor work as the "useful" cost of
#: doing business, copies/protocol as waste)
OVERHEAD_CATEGORIES: Tuple[str, ...] = ("copy", "protocol", "scheduling")


class CycleLedger:
    """Accumulates core-microseconds per category (and per site)."""

    def __init__(self, host_ghz: float = 3.7):
        self.host_ghz = host_ghz
        self._by_category: Dict[str, float] = {c: 0.0 for c in CYCLE_CATEGORIES}
        #: (category, where) -> us, for drill-down
        self._by_site: Dict[Tuple[str, str], float] = {}

    def charge(self, category: str, core_us: float, where: str = "") -> None:
        """Attribute ``core_us`` core-microseconds to ``category``."""
        if category not in self._by_category:
            raise ValueError(f"unknown cycle category {category!r}; "
                             f"expected one of {CYCLE_CATEGORIES}")
        if core_us <= 0.0:
            return
        self._by_category[category] += core_us
        if where:
            key = (category, where)
            self._by_site[key] = self._by_site.get(key, 0.0) + core_us

    # -- queries -------------------------------------------------------------
    def us(self, category: str) -> float:
        return self._by_category[category]

    def cycles(self, category: str) -> float:
        """Core-us converted to cycles at the host clock."""
        return self._by_category[category] * self.host_ghz * 1e3

    def total_us(self, categories: Optional[Iterable[str]] = None) -> float:
        cats = CYCLE_CATEGORIES if categories is None else tuple(categories)
        return sum(self._by_category[c] for c in cats)

    def fractions(self) -> Dict[str, float]:
        """Per-category share of all attributed cycles (sums to 1)."""
        total = self.total_us()
        if total <= 0:
            return {c: 0.0 for c in CYCLE_CATEGORIES}
        return {c: self._by_category[c] / total for c in CYCLE_CATEGORIES}

    def overhead_fraction(self) -> float:
        """Copy+protocol+scheduling share — the Fig. 4/5 headline."""
        total = self.total_us()
        if total <= 0:
            return 0.0
        return self.total_us(OVERHEAD_CATEGORIES) / total

    def sites(self, category: str) -> List[Tuple[str, float]]:
        """Charge sites of one category, heaviest first."""
        rows = [(where, us) for (cat, where), us in self._by_site.items()
                if cat == category]
        return sorted(rows, key=lambda r: (-r[1], r[0]))

    def snapshot(self) -> Dict[str, object]:
        return {
            "host_ghz": self.host_ghz,
            "us": {c: self._by_category[c] for c in CYCLE_CATEGORIES},
            "fractions": self.fractions(),
            "overhead_fraction": self.overhead_fraction(),
        }

    def reset(self) -> None:
        """Zero all counters (e.g. after warmup)."""
        for c in CYCLE_CATEGORIES:
            self._by_category[c] = 0.0
        self._by_site.clear()
