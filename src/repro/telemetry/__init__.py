"""First-class observability for the simulated stack.

Three pillars (ISSUE 2 / the paper's Fig. 4-5 methodology):

``spans``
    Per-invocation trace contexts that ride the typed dataplane
    message through ingress -> DNE -> RDMA/Comch -> function ->
    response, exportable as Chrome trace-event JSON (load in Perfetto).
``metrics``
    Labeled counters/gauges and bounded log-linear histograms with a
    Prometheus-text and JSON snapshot exporter.
``profiler``
    A cycle ledger attributing consumed core-microseconds to the
    paper's breakdown categories (app / copy / descriptor / protocol /
    scheduling).

Two derived layers build on the pillars (ISSUE 7):

``monitor``
    Declarative recording rules + per-tenant SLOs with multi-window
    burn-rate alerts, evaluated in simulated time by piggybacking on
    metric observations (attach with ``tel.attach_monitor()``).
``critpath``
    Post-hoc critical-path analysis over the span forest: per-request
    stage attribution (queueing / engine.tx / rdma.send / fn.exec /
    iolib ...) aggregated into p50/p99 tables and sweep-point diffs.

Everything hangs off :class:`Telemetry`, installed on an
``Environment`` via ``Telemetry.install(env)``.  When not installed
(``env.telemetry is None``, the default) every instrumentation site in
the stack reduces to one attribute read — zero simulation overhead.
Telemetry never creates simulation events, never yields, and never
draws random numbers, so even *enabled* telemetry cannot perturb
results (tested in ``tests/test_telemetry.py``).
"""

from .critpath import CriticalPathReport, analyze, dominant_shift
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .monitor import (BurnWindow, Monitor, QuantileRule, RateRule, RatioRule,
                      Selector, Slo)
from .profiler import CYCLE_CATEGORIES, CycleLedger
from .runtime import Telemetry
from .spans import Span, SpanTracer, validate_chrome_trace

__all__ = [
    "CYCLE_CATEGORIES",
    "BurnWindow",
    "Counter",
    "CriticalPathReport",
    "CycleLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Monitor",
    "QuantileRule",
    "RateRule",
    "RatioRule",
    "Selector",
    "Slo",
    "Span",
    "SpanTracer",
    "Telemetry",
    "analyze",
    "dominant_shift",
    "validate_chrome_trace",
]
