"""First-class observability for the simulated stack.

Three pillars (ISSUE 2 / the paper's Fig. 4-5 methodology):

``spans``
    Per-invocation trace contexts that ride the typed dataplane
    message through ingress -> DNE -> RDMA/Comch -> function ->
    response, exportable as Chrome trace-event JSON (load in Perfetto).
``metrics``
    Labeled counters/gauges and bounded log-linear histograms with a
    Prometheus-text and JSON snapshot exporter.
``profiler``
    A cycle ledger attributing consumed core-microseconds to the
    paper's breakdown categories (app / copy / descriptor / protocol /
    scheduling).

Everything hangs off :class:`Telemetry`, installed on an
``Environment`` via ``Telemetry.install(env)``.  When not installed
(``env.telemetry is None``, the default) every instrumentation site in
the stack reduces to one attribute read — zero simulation overhead.
Telemetry never creates simulation events, never yields, and never
draws random numbers, so even *enabled* telemetry cannot perturb
results (tested in ``tests/test_telemetry.py``).
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import CYCLE_CATEGORIES, CycleLedger
from .runtime import Telemetry
from .spans import Span, SpanTracer, validate_chrome_trace

__all__ = [
    "CYCLE_CATEGORIES",
    "Counter",
    "CycleLedger",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "Telemetry",
    "validate_chrome_trace",
]
