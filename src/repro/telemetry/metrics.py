"""Labeled metrics: counters, gauges, bounded log-linear histograms.

The registry follows the Prometheus data model: a *family* has a name,
help text, and a fixed tuple of label names; each distinct label-value
combination is a *child* carrying the actual state.  Families are
created on first use and are idempotent — asking the registry for an
existing name returns the existing family (type mismatches raise).

Naming conventions (see docs/OBSERVABILITY.md):

* ``snake_case`` metric names, ``_total`` suffix on counters,
  ``_us`` suffix for microsecond quantities;
* label names are drawn from the small shared vocabulary
  ``tenant``, ``node``, ``engine``, ``fn``, ``via``, ``kind``,
  ``opcode``, ``config`` so metrics join across subsystems.

Histograms are log-linear (HdrHistogram-style): each power-of-two
octave is divided into a fixed number of linear sub-buckets, giving
bounded memory and bounded relative error regardless of sample count —
this is what replaces unbounded per-sample lists on hot paths.

Exporters are deterministic: children and labels are emitted in sorted
order, so two identical runs produce byte-identical text/JSON.

Two safety valves guard the registry itself:

* a **label-cardinality cap** (:class:`MetricsRegistry`'s
  ``max_series_per_family``): once a family holds that many distinct
  label-value tuples, further tuples are routed to a detached overflow
  child and counted in the ``telemetry_dropped_series_total{family}``
  self-metric instead of growing the registry without bound;
* **exemplars** (:meth:`Histogram.observe` with a ``trace_id``): each
  bucket keeps a tiny deterministic reservoir of ``(value, trace_id)``
  pairs so a slow bucket links back to a concrete trace — no RNG, the
  reservoir rotates by observation count.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: per-bucket exemplar reservoir size (deterministic rotation, no RNG)
EXEMPLAR_RESERVOIR = 2


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (ints without trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Exposition-format label-value escaping: backslash, quote, LF."""
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and line feed (quotes stay)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depths, free buffers)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Bounded log-linear histogram with Prometheus ``le`` semantics.

    Bucket upper bounds start at ``low`` and within each octave
    ``[b, 2b)`` there are ``sub_buckets`` linearly spaced bounds, up to
    ``high``; one final ``+Inf`` bucket catches the rest.  ``observe``
    is O(log buckets); memory is fixed at construction.
    """

    kind = "histogram"

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max",
                 "_exemplars", "_exemplar_seen")

    def __init__(self, low: float = 1.0, high: float = 10_000_000.0,
                 sub_buckets: int = 4):
        if low <= 0 or high <= low or sub_buckets < 1:
            raise ValueError("need 0 < low < high and sub_buckets >= 1")
        bounds: List[float] = [low]
        octave = low
        while bounds[-1] < high:
            for i in range(1, sub_buckets + 1):
                bound = octave * (1.0 + i / sub_buckets)
                if bound > bounds[-1]:
                    bounds.append(bound)
                if bounds[-1] >= high:
                    break
            octave *= 2.0
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: counts[i] pairs with bounds[i] (value <= bound); the final
        #: slot is the +Inf bucket
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: bucket index -> list of (value, trace_id); lazily populated
        self._exemplars: Dict[int, List[Tuple[float, int]]] = {}
        #: bucket index -> exemplar observations ever (drives rotation)
        self._exemplar_seen: Dict[int, int] = {}

    def observe(self, value: float, trace_id: Optional[int] = None) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = bisect_left(self.bounds, value)
        self.counts[idx] += 1
        if trace_id is not None:
            seen = self._exemplar_seen.get(idx, 0)
            self._exemplar_seen[idx] = seen + 1
            slot = self._exemplars.setdefault(idx, [])
            if len(slot) < EXEMPLAR_RESERVOIR:
                slot.append((value, trace_id))
            else:
                # Deterministic reservoir: rotate by observation count,
                # so two identical runs keep identical exemplars.
                slot[seen % EXEMPLAR_RESERVOIR] = (value, trace_id)

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``observe(value)`` lands in."""
        return bisect_left(self.bounds, value)

    def quantile(self, q: float) -> float:
        """Approximate quantile ``q`` in [0, 1] from bucket bounds.

        Edge behaviour: an empty histogram returns 0.0; ``q == 0``
        returns the observed minimum, ``q == 1`` the observed maximum;
        every answer is clamped into ``[min, max]`` so a sparse bucket
        layout can never report a value outside what was observed.
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        if q == 0:
            return self.min
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i == len(self.bounds):  # +Inf bucket
                    return self.max
                return min(max(self.bounds[i], self.min), self.max)
        return self.max

    def exemplars(self) -> List[Tuple[float, float, int]]:
        """All exemplars as ``(bucket_bound, value, trace_id)`` rows,
        sorted by bucket (the +Inf bucket reports ``inf``)."""
        rows: List[Tuple[float, float, int]] = []
        for idx in sorted(self._exemplars):
            bound = (self.bounds[idx] if idx < len(self.bounds)
                     else float("inf"))
            for value, trace_id in self._exemplars[idx]:
                rows.append((bound, value, trace_id))
        return rows

    def snapshot(self):
        snap = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": [
                [bound, c]
                for bound, c in zip(self.bounds, self.counts)
                if c
            ],
            "overflow": self.counts[-1],
        }
        if self._exemplars:
            snap["exemplars"] = [
                [bound if bound != float("inf") else "+Inf", value, trace_id]
                for bound, value, trace_id in self.exemplars()
            ]
        return snap


class MetricFamily:
    """All children of one metric name (one per label-value tuple).

    ``max_series`` caps the distinct label-value tuples this family may
    hold; past the cap, new tuples share one *detached* overflow child
    (kept out of every exporter) and the registry's
    ``telemetry_dropped_series_total{family}`` self-metric counts the
    lost observations' series so the overflow is visible.
    """

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 factory, registry=None, max_series: int = 0,
                 **factory_kwargs):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._factory_kwargs = factory_kwargs
        self._children: Dict[Tuple[str, ...], object] = {}
        self._registry = registry
        self._max_series = max_series
        self._overflow = None

    @property
    def kind(self) -> str:
        return self._factory.kind

    def labels(self, *values) -> object:
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            if self._max_series and len(self._children) >= self._max_series:
                return self._dropped_series()
            child = self._children[key] = self._factory(**self._factory_kwargs)
        return child

    def _dropped_series(self):
        """The shared sink for over-cap label tuples (never exported)."""
        if self._registry is not None:
            self._registry._count_dropped_series(self.name)
        if self._overflow is None:
            self._overflow = self._factory(**self._factory_kwargs)
        return self._overflow

    # -- unlabeled convenience: family acts as its own single child ----------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """Children in deterministic (sorted label values) order."""
        return iter(sorted(self._children.items()))

    def value(self, *values) -> float:
        """Scalar value of one child (counters/gauges)."""
        return self.labels(*values).value


class MetricsRegistry:
    """The process-wide (per-``Telemetry``) collection of families.

    ``max_series_per_family`` is the label-cardinality guard (see
    :class:`MetricFamily`); the default is generous — real label
    vocabularies here are tenants/nodes/engines, tens at most.

    ``observer`` is the piggyback hook for the SLO monitor
    (:mod:`repro.telemetry.monitor`): when set, it is invoked (with no
    arguments) on every family lookup — i.e. on every instrumentation
    site that fires — which is what lets the monitor evaluate rules in
    *simulated* time without ever creating a simulation event.
    """

    #: the self-metric family counting series lost to the cap
    DROPPED_SERIES = "telemetry_dropped_series_total"

    def __init__(self, max_series_per_family: int = 1024):
        self._families: Dict[str, MetricFamily] = {}
        self.max_series_per_family = max_series_per_family
        self.observer = None
        self._counting_drops = False

    def _count_dropped_series(self, family_name: str) -> None:
        if self._counting_drops:  # self-metric overflow: never recurse
            return
        self._counting_drops = True
        try:
            self._family(
                self.DROPPED_SERIES,
                "Observations lost to the per-family label-cardinality "
                "cap.", ("family",), Counter).labels(family_name).inc()
        finally:
            self._counting_drops = False

    def _family(self, name: str, help: str, labels: Sequence[str],
                factory, **kwargs) -> MetricFamily:
        observer = self.observer
        if observer is not None:
            observer()
        family = self._families.get(name)
        if family is not None:
            if family.kind != factory.kind:
                raise TypeError(
                    f"metric {name!r} already registered as {family.kind}")
            return family
        family = MetricFamily(name, help, labels, factory, registry=self,
                              max_series=self.max_series_per_family,
                              **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (), low: float = 1.0,
                  high: float = 10_000_000.0,
                  sub_buckets: int = 4) -> MetricFamily:
        return self._family(name, help, labels, Histogram,
                            low=low, high=high, sub_buckets=sub_buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    # -- exporters -----------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe snapshot of every family (deterministic order)."""
        out: Dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "values": [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        "value": child.snapshot(),
                    }
                    for key, child in family.children()
                ],
            }
        return out

    def prometheus_text(self) -> str:
        """Prometheus exposition-format dump (sorted, deterministic)."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                label_str = ",".join(
                    f'{n}="{_escape_label_value(v)}"'
                    for n, v in zip(family.labelnames, key))
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.counts):
                        cumulative += count
                        le = ([label_str] if label_str else []) + \
                            [f'le="{_format_value(bound)}"']
                        lines.append(
                            f"{family.name}_bucket{{{','.join(le)}}} "
                            f"{cumulative}")
                    cumulative += child.counts[-1]
                    le = ([label_str] if label_str else []) + ['le="+Inf"']
                    lines.append(
                        f"{family.name}_bucket{{{','.join(le)}}} {cumulative}")
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{family.name}_sum{suffix} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{family.name}{suffix} "
                                 f"{_format_value(child.snapshot())}")
        return "\n".join(lines) + ("\n" if lines else "")
