"""Labeled metrics: counters, gauges, bounded log-linear histograms.

The registry follows the Prometheus data model: a *family* has a name,
help text, and a fixed tuple of label names; each distinct label-value
combination is a *child* carrying the actual state.  Families are
created on first use and are idempotent — asking the registry for an
existing name returns the existing family (type mismatches raise).

Naming conventions (see docs/OBSERVABILITY.md):

* ``snake_case`` metric names, ``_total`` suffix on counters,
  ``_us`` suffix for microsecond quantities;
* label names are drawn from the small shared vocabulary
  ``tenant``, ``node``, ``engine``, ``fn``, ``via``, ``kind``,
  ``opcode``, ``config`` so metrics join across subsystems.

Histograms are log-linear (HdrHistogram-style): each power-of-two
octave is divided into a fixed number of linear sub-buckets, giving
bounded memory and bounded relative error regardless of sample count —
this is what replaces unbounded per-sample lists on hot paths.

Exporters are deterministic: children and labels are emitted in sorted
order, so two identical runs produce byte-identical text/JSON.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _format_value(value: float) -> str:
    """Prometheus-style number formatting (ints without trailing .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depths, free buffers)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self):
        return self.value


class Histogram:
    """Bounded log-linear histogram with Prometheus ``le`` semantics.

    Bucket upper bounds start at ``low`` and within each octave
    ``[b, 2b)`` there are ``sub_buckets`` linearly spaced bounds, up to
    ``high``; one final ``+Inf`` bucket catches the rest.  ``observe``
    is O(log buckets); memory is fixed at construction.
    """

    kind = "histogram"

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, low: float = 1.0, high: float = 10_000_000.0,
                 sub_buckets: int = 4):
        if low <= 0 or high <= low or sub_buckets < 1:
            raise ValueError("need 0 < low < high and sub_buckets >= 1")
        bounds: List[float] = [low]
        octave = low
        while bounds[-1] < high:
            for i in range(1, sub_buckets + 1):
                bound = octave * (1.0 + i / sub_buckets)
                if bound > bounds[-1]:
                    bounds.append(bound)
                if bounds[-1] >= high:
                    break
            octave *= 2.0
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: counts[i] pairs with bounds[i] (value <= bound); the final
        #: slot is the +Inf bucket
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[bisect_left(self.bounds, value)] += 1

    def bucket_index(self, value: float) -> int:
        """Index of the bucket ``observe(value)`` lands in."""
        return bisect_left(self.bounds, value)

    def quantile(self, q: float) -> float:
        """Approximate quantile ``q`` in [0, 1] from bucket bounds."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i == len(self.bounds):  # +Inf bucket
                    return self.max
                return min(self.bounds[i], self.max)
        return self.max

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": [
                [bound, c]
                for bound, c in zip(self.bounds, self.counts)
                if c
            ],
            "overflow": self.counts[-1],
        }


class MetricFamily:
    """All children of one metric name (one per label-value tuple)."""

    def __init__(self, name: str, help: str, labelnames: Sequence[str],
                 factory, **factory_kwargs):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._factory_kwargs = factory_kwargs
        self._children: Dict[Tuple[str, ...], object] = {}

    @property
    def kind(self) -> str:
        return self._factory.kind

    def labels(self, *values) -> object:
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._factory(**self._factory_kwargs)
        return child

    # -- unlabeled convenience: family acts as its own single child ----------
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """Children in deterministic (sorted label values) order."""
        return iter(sorted(self._children.items()))

    def value(self, *values) -> float:
        """Scalar value of one child (counters/gauges)."""
        return self.labels(*values).value


class MetricsRegistry:
    """The process-wide (per-``Telemetry``) collection of families."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, help: str, labels: Sequence[str],
                factory, **kwargs) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != factory.kind:
                raise TypeError(
                    f"metric {name!r} already registered as {family.kind}")
            return family
        family = MetricFamily(name, help, labels, factory, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (), low: float = 1.0,
                  high: float = 10_000_000.0,
                  sub_buckets: int = 4) -> MetricFamily:
        return self._family(name, help, labels, Histogram,
                            low=low, high=high, sub_buckets=sub_buckets)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> Iterator[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    # -- exporters -----------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe snapshot of every family (deterministic order)."""
        out: Dict[str, dict] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "values": [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        "value": child.snapshot(),
                    }
                    for key, child in family.children()
                ],
            }
        return out

    def prometheus_text(self) -> str:
        """Prometheus exposition-format dump (sorted, deterministic)."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                label_str = ",".join(
                    f'{n}="{v}"' for n, v in zip(family.labelnames, key))
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.counts):
                        cumulative += count
                        le = ([label_str] if label_str else []) + \
                            [f'le="{_format_value(bound)}"']
                        lines.append(
                            f"{family.name}_bucket{{{','.join(le)}}} "
                            f"{cumulative}")
                    cumulative += child.counts[-1]
                    le = ([label_str] if label_str else []) + ['le="+Inf"']
                    lines.append(
                        f"{family.name}_bucket{{{','.join(le)}}} {cumulative}")
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{family.name}_sum{suffix} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{label_str}}}" if label_str else ""
                    lines.append(f"{family.name}{suffix} "
                                 f"{_format_value(child.snapshot())}")
        return "\n".join(lines) + ("\n" if lines else "")
