"""The ``Telemetry`` facade and its on/off switch.

Instrumentation sites all follow the same pattern::

    tel = self.env.telemetry
    if tel is not None:
        tel.metrics.counter(...).labels(...).inc()

``env.telemetry`` defaults to ``None`` (set in ``Environment``), so
the disabled cost is one attribute read per site.  Installing a
:class:`Telemetry` flips every site on at once.

Invariant (enforced by the determinism test): nothing reachable from
``Telemetry`` ever creates simulation events, yields, schedules, or
draws random numbers.  Telemetry observes the simulation; it is never
part of it.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry
from .profiler import CycleLedger
from .spans import SpanTracer

__all__ = ["Telemetry"]


class Telemetry:
    """Bundles the three pillars behind one switch.

    A fourth, optional consumer — the SLO :class:`Monitor` — attaches
    with :meth:`attach_monitor` and hangs off ``self.monitor``.
    """

    def __init__(self, env, host_ghz: float = 3.7, max_spans: int = 250_000):
        self.env = env
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(env, max_spans=max_spans)
        self.cycles = CycleLedger(host_ghz=host_ghz)
        self.monitor = None

    @classmethod
    def install(cls, env, **kwargs) -> "Telemetry":
        """Create a Telemetry and enable it on ``env``."""
        tel = cls(env, **kwargs)
        env.telemetry = tel
        return tel

    def attach_monitor(self, **kwargs):
        """Attach an SLO monitor (idempotent; returns it)."""
        if self.monitor is None:
            from .monitor import Monitor
            Monitor.install(self, **kwargs)
        return self.monitor

    @staticmethod
    def of(env) -> Optional["Telemetry"]:
        """The telemetry installed on ``env``, or None."""
        return getattr(env, "telemetry", None)

    def uninstall(self) -> None:
        """Disable this telemetry (data stays readable)."""
        if getattr(self.env, "telemetry", None) is self:
            self.env.telemetry = None
