"""Global configuration and the calibrated cost model.

The simulated clock runs in **microseconds**.  Every timing constant in
:class:`CostModel` is either taken directly from a number the paper
reports, or fit so that the microbenchmarks of §4.1 reproduce (the
comment on each field cites its anchor).  Experiments must not hard-code
timings — they read them from here, so the calibration is auditable and
an ablation can perturb a single constant.

Hardware defaults mirror the paper's testbed (§4): four nodes, two
40-core CPUs per node, Bluefield-2 DPUs (8 ARM A72 cores @ 2.0 GHz) on
the two worker nodes, ConnectX-6 RNICs, 200 Gbps switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = [
    "CostModel",
    "NodeSpec",
    "ClusterSpec",
    "SimConfig",
    "DEFAULT_COST_MODEL",
    "USEC",
    "MSEC",
    "SEC",
]

#: Unit helpers (the base unit of simulated time is 1 microsecond).
USEC = 1.0
MSEC = 1_000.0
SEC = 1_000_000.0


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-operation costs, in microseconds unless noted."""

    # ----- processors ------------------------------------------------------
    #: Relative cost of executing one unit of work on a DPU ARM core vs a
    #: host x86 core.  The A72 runs at 2.0 GHz vs 3.7 GHz for the host
    #: (§4.3.1); the paper notes the streamlined ISA "compensates
    #: somewhat", so we use less than the raw 1.85 clock ratio.
    dpu_cost_factor: float = 1.6

    # ----- RDMA fabric ------------------------------------------------------
    #: One-way NIC-to-NIC base latency (RNIC pipeline + switch + wire).
    #: Fit so a two-sided DNE-to-DNE echo RTT is 8.4 us at 64 B (Fig. 12).
    rdma_base_latency_us: float = 1.65
    #: RNIC work-request processing (doorbell, WQE fetch, CQE write).
    rnic_op_us: float = 0.3
    #: Switch fabric line rate: 200 Gbps = 25 000 bytes/us (testbed, §4).
    fabric_bytes_per_us: float = 25_000.0
    #: End-host per-byte cost (PCIe DMA in/out, descriptor touch) applied
    #: once per endpoint.  Fit so a 4 KB two-sided echo RTT is 11.6 us
    #: (Fig. 12: +3.2 us RTT over 64 B).
    endhost_per_byte_us: float = 0.00018
    #: RC connection (QP) establishment, "of the order of tens of
    #: milliseconds" (§3.3); we use 20 ms.
    rc_setup_us: float = 20_000.0
    #: Activating a pooled shadow QP (no cross-node sync, §3.3).
    qp_activate_us: float = 1.0
    #: Max active RCQPs per node before RNIC cache thrashing (§3.3);
    #: beyond this, per-op cost inflates by `qp_thrash_penalty`.
    max_active_qps: int = 64
    qp_thrash_penalty: float = 2.0
    #: One-sided RDMA CAS (lock acquire/release primitive) round trip
    #: carries no payload: 2 * (rnic + base).
    #: Extra receiver-side polling interval for one-sided completions
    #: (FaRM-style poll loop, §4.1.2).
    onesided_poll_interval_us: float = 0.5
    #: Per-message overhead of the distributed-lock protocol beyond the
    #: two CAS round trips (queueing on contended lock word, backoff).
    dist_lock_overhead_us: float = 3.5

    # ----- memory / copies ---------------------------------------------------
    #: memcpy throughput with hot caches (OWRC-Best, Fig. 12).
    copy_bytes_per_us_cached: float = 11_000.0
    #: memcpy throughput forced to main memory with TLB flush
    #: (OWRC-Worst, Fig. 12).
    copy_bytes_per_us_cold: float = 7_000.0
    #: Fixed per-copy setup (descriptor bookkeeping, cache line fills).
    copy_base_us: float = 0.25
    copy_base_cold_extra_us: float = 0.3
    #: Pool allocator get/put (rte_mempool-style, §3.4).
    mempool_op_us: float = 0.05
    #: malloc/free pair for the ablation baseline (glibc-style).
    malloc_op_us: float = 0.6

    # ----- DPU data movement (Fig. 3 / Fig. 11) ------------------------------
    #: SoC DMA engine: fixed cost per transfer.  The paper cites 2.6 us
    #: for a 64 B DMA read (§4.1.1, citing [90]).
    soc_dma_base_us: float = 2.2
    #: SoC DMA engine throughput; "unfortunately very slow" (§2.1): the
    #: on-path mode collapses under concurrency (Fig. 11(2)).
    soc_dma_bytes_per_us: float = 3_500.0
    #: RNIC DMA ("runs at line rate", §2.1) needs no extra serialization
    #: beyond `endhost_per_byte_us`.

    # ----- DNE engine (§3.2) --------------------------------------------------
    #: Per-message run-to-completion TX stage on the DNE (routing lookup,
    #: WR build, post) measured in *host-core* microseconds; multiply by
    #: `dpu_cost_factor` when running on DPU cores.
    dne_tx_proc_us: float = 0.55
    #: Per-message RX stage (CQE poll, RBR lookup, descriptor forward).
    dne_rx_proc_us: float = 0.55
    #: DWRR scheduling decision per dequeue (§3.3).
    dwrr_decision_us: float = 0.05

    # ----- cross-processor channels (Fig. 9) -----------------------------------
    #: Kernel TCP descriptor round trip between host function and DPU
    #: (baseline in Fig. 9): ~40 us RTT.
    comch_tcp_rtt_us: float = 40.0
    comch_tcp_cpu_us: float = 8.0
    #: Comch-P (producer/consumer ring, busy polling): >8x lower latency
    #: than TCP (Fig. 9) but one dedicated core per function.
    comch_p_oneway_us: float = 2.2
    comch_p_cpu_us: float = 0.4
    #: Comch-E (event-driven epoll): 2.7-3.8x better than TCP, no
    #: dedicated cores (Fig. 9); chosen by Palladium (§3.5.4).
    comch_e_oneway_us: float = 4.0
    comch_e_cpu_us: float = 0.6
    #: Host-side (function) cost per Comch-E descriptor: a blocking
    #: epoll_wait wakeup + DOCA progress-engine turn.  Fit so the
    #: Comch-E vs TCP RTT ratio lands in the paper's 2.7-3.8x band.
    comch_e_fn_cpu_us: float = 3.0
    #: DPU cores available to Comch-P producer rings (8 ARM cores minus
    #: DNE core(s)); beyond this Comch-P overloads (Fig. 9: ">6").
    comch_p_core_budget: int = 6

    # ----- FUYAO baseline engine (§4.3) -------------------------------------
    #: Per-message TX cost of FUYAO's engine beyond SK_MSG ingest: ring
    #: slot acquisition, one-sided WR construction, doorbell, source
    #: bookkeeping.  Calibrated against Table 2 (FUYAO-F Home Query
    #: 3.53/7.53 ms @ 20/80 clients => ~6-11 K RPS).
    fuyao_tx_us: float = 6.0
    #: Per-message RX cost: amortized ring polling scan, descriptor
    #: construction, credit return (the payload copy is charged
    #: separately via `copy_time`).
    fuyao_rx_us: float = 7.0

    # ----- host IPC (§3.5.3) ----------------------------------------------------
    #: SK_MSG descriptor delivery (sockmap lookup + redirect), kernel
    #: protocol stack bypassed.
    sk_msg_us: float = 1.0
    #: Interrupt-driven delivery overhead per event on the *receiving*
    #: engine core; under high concurrency this throttles the CNE
    #: (§4.3: interrupt processing load, receive livelock effect).
    sk_msg_interrupt_us: float = 2.2
    #: Additional per-message CNE penalty per concurrently active client
    #: connection (interrupt coalescing loss + cache thrash, §4.3).
    cne_concurrency_penalty_us: float = 0.02

    # ----- software network stacks (§3.6, §4.1.3) --------------------------------
    #: Kernel TCP/IP per message processing (syscall, protocol, copy).
    kernel_tcp_us: float = 14.0
    #: Kernel interrupt + softirq overhead per message.
    kernel_irq_us: float = 4.0
    #: F-stack (DPDK userspace) per message processing.
    fstack_us: float = 2.0
    #: HTTP request parse / response serialize (NGINX-grade, per message).
    http_parse_us: float = 1.3
    #: NGINX reverse-proxy bookkeeping per proxied message (upstream
    #: module, connection reuse, buffer juggling) — paid by the
    #: deferred-conversion ingresses but not by Palladium's gateway.
    proxy_overhead_us: float = 4.5
    #: TCP connection establishment (3-way handshake processing).
    tcp_handshake_us: float = 30.0
    #: Client <-> ingress Ethernet one-way wire latency.
    ether_base_latency_us: float = 6.0
    ether_bytes_per_us: float = 25_000.0

    # ----- ingress autoscaler (§3.6) -----------------------------------------------
    ingress_scale_up_threshold: float = 0.60
    ingress_scale_down_threshold: float = 0.30
    #: Worker-process restart causes a brief interruption (Fig. 14 (2)).
    ingress_scale_event_pause_us: float = 300_000.0
    ingress_autoscale_period_us: float = 1_000_000.0

    # ----- multi-gateway ingress tier (repro.ingress.tier, extension) -----------
    #: Per-request cost of a pinned (hot) flow on the DPU fast path:
    #: match-table hit + header rewrite, no gateway core touched.
    tier_fastpath_us: float = 2.0
    #: Per-request cost of a cold/new flow punted to the gateway slow
    #: path: full parse + flow-table entry install.
    tier_slowpath_us: float = 18.0
    #: Failover flow-table state-sync window: entries inherited from a
    #: failed gateway install on the successor only after this long;
    #: lookups inside the window pay the cold-punt cost.
    tier_flow_sync_us: float = 2_000.0

    # ----- live migration (repro.migration) -----------------------------------
    #: Fixed cost of freezing a warm instance and walking its pages into
    #: a checkpoint image (CRIU-style dump, before the DMA of the image
    #: itself, which is charged through `soc_dma_time`).
    checkpoint_base_us: float = 800.0
    #: Fixed cost of rebuilding the address space / runtime state from a
    #: checkpoint image on the target node (CRIU restore, before MR
    #: re-registration and QP activation).
    restore_base_us: float = 1_200.0
    #: Image framing / metadata shipped alongside the checkpointed state.
    migration_frame_bytes: int = 4_096
    #: MR registration: ibv_reg_mr base cost plus per-MTT-entry pinning
    #: and translation upload (Swift, arXiv 2501.19051: registration
    #: cost grows with region size; hugepages keep the entry count low).
    mr_register_base_us: float = 30.0
    mr_register_per_entry_us: float = 1.2
    #: Container cold start (image pull amortized away; process spawn,
    #: runtime init, language warm-up).  What kill-and-cold-start pays
    #: and a live migration avoids.
    cold_start_us: float = 120_000.0

    # ----- serverless platform -------------------------------------------------------
    #: Sidecar cost models (§3.1): classic container sidecar vs
    #: Palladium's consolidated/eBPF sidecars ("as high as 30%" overhead
    #: for the kernel-stack sidecar).
    container_sidecar_us: float = 9.0
    ebpf_sidecar_us: float = 0.7
    shared_sidecar_us: float = 0.5
    #: Cross-security-domain explicit data copy (§3.1) uses
    #: `copy_bytes_per_us_cached`.

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with all per-op CPU costs scaled (for ablations)."""
        return replace(
            self,
            dne_tx_proc_us=self.dne_tx_proc_us * factor,
            dne_rx_proc_us=self.dne_rx_proc_us * factor,
            kernel_tcp_us=self.kernel_tcp_us * factor,
            fstack_us=self.fstack_us * factor,
            http_parse_us=self.http_parse_us * factor,
        )

    # -- derived helpers -------------------------------------------------------
    def wire_time(self, nbytes: int) -> float:
        """Serialization delay of ``nbytes`` on the RDMA fabric."""
        return nbytes / self.fabric_bytes_per_us

    def endhost_time(self, nbytes: int) -> float:
        """Per-endpoint DMA/processing time proportional to size."""
        return nbytes * self.endhost_per_byte_us

    def copy_time(self, nbytes: int, cached: bool = True) -> float:
        """CPU time to memcpy ``nbytes``."""
        if cached:
            return self.copy_base_us + nbytes / self.copy_bytes_per_us_cached
        return (
            self.copy_base_us
            + self.copy_base_cold_extra_us
            + nbytes / self.copy_bytes_per_us_cold
        )

    def soc_dma_time(self, nbytes: int) -> float:
        """SoC DMA engine service time for one transfer."""
        return self.soc_dma_base_us + nbytes / self.soc_dma_bytes_per_us

    def mr_register_time(self, mtt_entries: int) -> float:
        """Control-plane cost of registering a memory region."""
        return (self.mr_register_base_us
                + mtt_entries * self.mr_register_per_entry_us)


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one server node (testbed defaults, §4)."""

    name: str = "node"
    cpu_cores: int = 80  # two 40-core CPUs
    cpu_ghz: float = 3.7
    has_dpu: bool = False
    dpu_cores: int = 8  # Bluefield-2: 8x ARM A72
    dpu_ghz: float = 2.0
    dram_gb: int = 500
    hugepage_bytes: int = 2 * 1024 * 1024  # 2 MB hugepages (§3.4)


@dataclass(frozen=True)
class ClusterSpec:
    """The four-node testbed: two workers (DPU), ingress, client."""

    workers: int = 2
    cost: CostModel = field(default_factory=CostModel)

    def worker_spec(self, index: int) -> NodeSpec:
        return NodeSpec(name=f"worker{index}", has_dpu=True)

    def ingress_spec(self) -> NodeSpec:
        return NodeSpec(name="ingress", has_dpu=False)

    def client_spec(self) -> NodeSpec:
        return NodeSpec(name="client", has_dpu=False)


@dataclass(frozen=True)
class SimConfig:
    """Kernel-level knobs, applied process-wide via :meth:`apply`.

    ``scheduler`` selects the event queue implementation every
    subsequently built :class:`~repro.sim.Environment` uses:

    * ``"heap"`` (default) — the flat binary heap; exact and fastest
      for the reference mixes.
    * ``"calendar"`` — the bucketed calendar queue
      (:class:`~repro.sim.CalendarQueue`); same event order bit-for-bit
      (monotone bucketing preserves the FIFO tie-break), cheaper pops
      under very wide pending-timer windows.

    ``bucket_us`` is the calendar bucket width; irrelevant under
    ``"heap"``.  Environment variables ``REPRO_SIM_SCHEDULER`` /
    ``REPRO_SIM_BUCKET_US`` provide the same control without code
    changes (CI uses them to run whole experiment gates under the
    calendar scheduler).
    """

    scheduler: str = "heap"
    bucket_us: float = 32.0

    def apply(self) -> "SimConfig":
        """Install these knobs as the process-wide defaults."""
        from .sim import set_default_scheduler

        set_default_scheduler(self.scheduler, bucket_us=self.bucket_us)
        return self


#: Shared default instance used when an experiment does not override it.
DEFAULT_COST_MODEL = CostModel()


def cost_model_overrides(**kwargs: float) -> CostModel:
    """Convenience: default cost model with selected fields replaced."""
    return replace(DEFAULT_COST_MODEL, **kwargs)


def describe(cost: CostModel) -> Dict[str, float]:
    """Flat dict of the cost model's fields (for experiment reports)."""
    return {name: getattr(cost, name) for name in cost.__dataclass_fields__}
