"""Declarative fault schedules.

A plan is built fluently and stays inert data until handed to a
:class:`repro.faults.FaultInjector`::

    plan = (FaultPlan()
            .node_crash(at_us=140_000, node="worker1", down_us=80_000)
            .link_flap(at_us=60_000, src="worker0", dst="worker1",
                       down_us=5_000))

Every ``*_us`` is absolute simulation time; faults with a duration
expand into an apply event and a recovery event so the injector never
needs timers of its own beyond plain timeouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["FaultEvent", "FaultPlan"]

#: every event kind an injector knows how to apply
KINDS = frozenset({
    "node-crash", "node-restart",
    "engine-crash", "engine-restart",
    "link-down", "link-up",
    "link-degrade", "link-restore",
    "qp-error",
    "cp-throttle", "cp-restore",
    "pool-exhaust", "pool-release",
    "node-drain",
    "gateway-crash", "gateway-restart",
})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault (or recovery) action."""

    at_us: float
    kind: str
    target: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_us < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_us}")


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`."""

    def __init__(self, events: Optional[List[FaultEvent]] = None):
        self._events: List[FaultEvent] = list(events or [])

    # -- builders ---------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def node_crash(self, at_us: float, node: str,
                   down_us: Optional[float] = None) -> "FaultPlan":
        """Fail-stop node crash; restarts after ``down_us`` if given."""
        self.add(FaultEvent(at_us, "node-crash", node))
        if down_us is not None:
            self.add(FaultEvent(at_us + down_us, "node-restart", node))
        return self

    def engine_crash(self, at_us: float, node: str,
                     down_us: Optional[float] = None) -> "FaultPlan":
        """Crash just the node's network engine (node stays up)."""
        self.add(FaultEvent(at_us, "engine-crash", node))
        if down_us is not None:
            self.add(FaultEvent(at_us + down_us, "engine-restart", node))
        return self

    def gateway_crash(self, at_us: float, gateway: str,
                      down_us: Optional[float] = None) -> "FaultPlan":
        """Fail-stop an ingress gateway registered with the injector.

        The ingress tier's health machinery notices the unhealthy
        instance and re-sprays its flows across the surviving ring;
        with ``down_us`` the gateway recovers (empty flow table) and
        rejoins the ring.
        """
        self.add(FaultEvent(at_us, "gateway-crash", gateway))
        if down_us is not None:
            self.add(FaultEvent(at_us + down_us, "gateway-restart", gateway))
        return self

    def link_flap(self, at_us: float, src: str, dst: str, down_us: float,
                  bidirectional: bool = True) -> "FaultPlan":
        """Take a fabric link down for ``down_us`` then bring it back."""
        target = f"{src}->{dst}"
        self.add(FaultEvent(at_us, "link-down", target))
        self.add(FaultEvent(at_us + down_us, "link-up", target))
        if bidirectional:
            back = f"{dst}->{src}"
            self.add(FaultEvent(at_us, "link-down", back))
            self.add(FaultEvent(at_us + down_us, "link-up", back))
        return self

    def link_degrade(self, at_us: float, src: str, dst: str, factor: float,
                     duration_us: Optional[float] = None) -> "FaultPlan":
        """Stretch a link's serialization by ``factor`` (>= 1)."""
        target = f"{src}->{dst}"
        self.add(FaultEvent(at_us, "link-degrade", target,
                            {"factor": factor}))
        if duration_us is not None:
            self.add(FaultEvent(at_us + duration_us, "link-restore", target))
        return self

    def qp_error(self, at_us: float, node: str, remote: Optional[str] = None,
                 tenant: Optional[str] = None,
                 count: Optional[int] = None) -> "FaultPlan":
        """Force QPs on ``node``'s engine into the ERROR state."""
        self.add(FaultEvent(at_us, "qp-error", node,
                            {"remote": remote, "tenant": tenant,
                             "count": count}))
        return self

    def cp_throttle(self, at_us: float, node: str, ops_per_sec: float,
                    duration_us: Optional[float] = None) -> "FaultPlan":
        """Clamp a node's RDMA control-plane verbs ceiling.

        Models degraded RNIC firmware / a management-path brownout:
        QP setup and MR registration commands on ``node`` queue behind
        an ``ops_per_sec`` FIFO until ``cp-restore`` lifts the clamp.
        The data plane is untouched — established QPs keep flowing.
        """
        self.add(FaultEvent(at_us, "cp-throttle", node,
                            {"ops_per_sec": ops_per_sec}))
        if duration_us is not None:
            self.add(FaultEvent(at_us + duration_us, "cp-restore", node))
        return self

    def node_drain(self, at_us: float, node: str,
                   deadline_us: Optional[float] = None,
                   state_bytes: Optional[int] = None) -> "FaultPlan":
        """Planned maintenance: gracefully drain then withdraw a node.

        Every function on the node is live-migrated off before the
        node withdraws.  With ``deadline_us`` the drain must finish
        within the maintenance window; expiry falls back to crash
        semantics for whatever is left (the injector's platform hook
        handles the fallback).
        """
        params = {"deadline_us": deadline_us, "state_bytes": state_bytes}
        self.add(FaultEvent(at_us, "node-drain", node, params))
        return self

    def mempool_exhaust(self, at_us: float, node: str, tenant: str,
                        duration_us: float) -> "FaultPlan":
        """Drain a tenant's pool on one node, holding the buffers."""
        target = f"{node}:{tenant}"
        self.add(FaultEvent(at_us, "pool-exhaust", target))
        self.add(FaultEvent(at_us + duration_us, "pool-release", target))
        return self

    # -- access -----------------------------------------------------------------
    @property
    def events(self) -> List[FaultEvent]:
        """The schedule, sorted by time (stable for ties)."""
        return sorted(self._events, key=lambda e: e.at_us)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self):
        return iter(self.events)
