"""Deterministic fault injection for the Palladium reproduction.

A :class:`FaultPlan` is a declarative, time-ordered schedule of fault
events (node crashes, engine crashes, link flaps, QP errors, memory
pool exhaustion); a :class:`FaultInjector` walks the plan against a
running platform, applying each fault and its recovery at the
scheduled simulation times.  Injection draws randomness (when any is
requested) only from the dedicated ``faults`` rng stream, so a plan
never perturbs workload draws and a seeded run replays byte-identical
— with or without faults.

An empty plan is free: the injector spawns no processes and the fault
hooks in the data plane reduce to attribute checks on default values.
"""

from .plan import FaultEvent, FaultPlan
from .injector import FaultInjector

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector"]
