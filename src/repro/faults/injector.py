"""Applies a :class:`FaultPlan` against a running platform.

The injector is one simulation process that sleeps until each
scheduled event and applies it through the platform's public fault
hooks (``crash_node``, ``Link.fail``, ``ConnectionManager.
fail_connections``, ...).  Everything it does is recorded on
``timeline`` — ``(time, kind, target, detail)`` tuples — which is what
the determinism property test compares across replays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..memory import PoolExhausted
from ..sim import Environment, RngRegistry

from .plan import FaultEvent, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Walks a fault plan against a :class:`ServerlessPlatform`."""

    AGENT = "fault-injector"

    def __init__(
        self,
        env: Environment,
        platform,
        plan: FaultPlan,
        rng: Optional[RngRegistry] = None,
        recovery: bool = True,
        jitter_us: float = 0.0,
    ):
        self.env = env
        self.platform = platform
        self.plan = plan
        self.recovery = recovery
        #: uniform jitter added to each event time, drawn from the
        #: dedicated ``faults`` stream (0 = exact schedule)
        self.jitter_us = jitter_us
        self._rng = rng.faults() if (rng is not None and jitter_us > 0) else None
        #: what actually happened: (time, kind, target, detail)
        self.timeline: List[Tuple[float, str, str, Any]] = []
        #: buffers held hostage by pool-exhaust faults
        self._hostages: Dict[str, list] = {}
        #: ingress gateways addressable by gateway-crash/-restart
        self._gateways: Dict[str, Any] = {}
        self.started = False

    def register_gateway(self, name: str, ingress) -> None:
        """Make an ingress instance a target for ``gateway-crash``.

        ``ingress`` needs ``fail()``/``recover()`` and a ``healthy``
        flag (:class:`~repro.ingress.PalladiumIngress` has them); the
        ingress tier's health checks observe the ``healthy`` flip and
        run the ring re-spray + flow-table sync.
        """
        self._gateways[name] = ingress

    def start(self):
        """Spawn the injector process; a no-op for an empty plan."""
        if self.started:
            raise RuntimeError("fault injector already started")
        self.started = True
        if not self.plan:
            return None
        return self.env.process(self._run(), name="fault-injector")

    def _run(self):
        for event in self.plan.events:
            at = event.at_us
            if self._rng is not None:
                at += self._rng.uniform(0.0, self.jitter_us)
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            detail = yield from self._apply(event)
            self.timeline.append((self.env.now, event.kind, event.target, detail))
            tel = self.env.telemetry
            if tel is not None:
                tel.tracer.incident(event.kind, event.target, detail=detail)
                tel.metrics.counter(
                    "fault_events_total", "Fault-plan events applied.",
                    labels=("kind",)).labels(event.kind).inc()

    # -- appliers ---------------------------------------------------------------
    def _apply(self, event: FaultEvent):
        kind = event.kind
        if kind == "node-crash":
            self.platform.crash_node(event.target, recovery=self.recovery)
            return None
        if kind == "node-restart":
            self.platform.restart_node(event.target, recovery=self.recovery)
            return None
        if kind == "engine-crash":
            self.platform.engines[event.target].crash()
            return None
        if kind == "engine-restart":
            self.platform.engines[event.target].restart()
            return None
        if kind in ("link-down", "link-up", "link-degrade", "link-restore"):
            src, dst = event.target.split("->", 1)
            link = self.platform.cluster.fabric_link(src, dst)
            if kind == "link-down":
                link.fail()
            elif kind == "link-up":
                link.recover()
            elif kind == "link-degrade":
                link.degrade(event.params["factor"])
            else:
                link.restore()
            return None
        if kind == "qp-error":
            engine = self.platform.engines[event.target]
            failed = engine.conn_mgr.fail_connections(
                remote=event.params.get("remote"),
                tenant=event.params.get("tenant"),
                count=event.params.get("count"),
                cause="injected qp error",
            )
            return failed
        if kind in ("cp-throttle", "cp-restore"):
            cp = self.platform.fabric.control_plane(event.target)
            if kind == "cp-throttle":
                cp.set_ceiling(event.params["ops_per_sec"])
                return cp.ops_per_sec
            cp.set_ceiling(cp.config.ops_per_sec)
            return cp.ops_per_sec
        if kind == "pool-exhaust":
            node, tenant = event.target.split(":", 1)
            pool = self.platform.pool_for(tenant, node)
            held = self._hostages.setdefault(event.target, [])
            while True:
                try:
                    held.append(pool.get(self.AGENT))
                except PoolExhausted:
                    break
            return len(held)
        if kind == "node-drain":
            # Graceful maintenance drain runs as its own process so the
            # injector can keep walking the schedule while migrations
            # are in flight; deadline expiry inside drain_node falls
            # back to crash semantics on its own.
            params = {k: v for k, v in event.params.items() if v is not None}
            self.env.process(
                self.platform.drain_node(event.target, **params),
                name=f"drain:{event.target}")
            return "scheduled"
        if kind in ("gateway-crash", "gateway-restart"):
            try:
                gateway = self._gateways[event.target]
            except KeyError:
                raise ValueError(
                    f"gateway {event.target!r} not registered; call "
                    "register_gateway() before start()") from None
            if kind == "gateway-crash":
                gateway.fail()
            else:
                gateway.recover()
            return gateway.healthy
        if kind == "pool-release":
            held = self._hostages.pop(event.target, [])
            node, tenant = event.target.split(":", 1)
            pool = self.platform.pool_for(tenant, node)
            for buffer in held:
                pool.put(buffer, self.AGENT)
            return len(held)
        raise ValueError(f"unknown fault kind {kind!r}")  # pragma: no cover
        yield  # pragma: no cover - makes this a generator
