"""SPRIGHT baseline data plane (Qi et al., SIGCOMM'22).

SPRIGHT pioneered eBPF/SK_MSG shared-memory processing *within* a node,
but its inter-node data path "relies on the kernel protocol stack"
(§4.3).  We reproduce exactly that wiring:

* intra-node: identical descriptor-over-SK_MSG path as Palladium
  (SPRIGHT is where Palladium's intra-node design comes from);
* inter-node: the node-wide engine serializes the payload out of the
  shared-memory pool into a kernel TCP socket (a real data copy), the
  kernel stack processes it on both ends, and the receiving engine
  copies it back into its local pool;
* the engine itself is event-driven on the shared CPU cores
  (interrupt-based, not a pinned poller).
"""

from __future__ import annotations

from typing import Any

from ..dataplane import Message
from ..dne.engine import NetworkEngine
from ..dne.routing import RouteError
from ..memory import BufferDescriptor, PoolExhausted
from ..rdma import Completion

__all__ = ["SprightEngine"]

#: TCP/IP framing on the inter-node hop
TCP_FRAME_OVERHEAD = 66


class _TcpFrame:
    """One serialized message in flight on the kernel TCP hop."""

    __slots__ = ("message", "payload", "length", "tenant")

    def __init__(self, message: Message, payload: Any, length: int,
                 tenant: str):
        self.message = message
        self.payload = payload
        self.length = length
        self.tenant = tenant


class SprightEngine(NetworkEngine):
    """SPRIGHT's node-wide forwarder: shared memory in, kernel TCP out."""

    def _allocate_core(self):
        # Event-driven on the shared host cores: no pinned poller.
        return self.node.cpu

    def _control_pool(self):
        return self.node.cpu

    def _ingest_cost_us(self) -> float:
        # SK_MSG delivery into the engine is interrupt-driven.
        return self.cost.sk_msg_interrupt_us + self.channel.ingest_cost_us()

    def _egress_cost_us(self) -> float:
        return self.cost.sk_msg_us

    def _core_thread(self, epoch):
        """No RC connections or receive buffers to manage; idle."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- TX: copy out of shared memory into the kernel socket -------------------
    def _handle_tx(self, tenant: str, src_fn: str, descriptor: BufferDescriptor):
        cost = self.cost
        buffer = descriptor.buffer
        buffer.check_owner(self.agent)
        message = descriptor.message
        if message.owner is not None:
            message.check_owner(self.agent)
        dst_fn = message.dst
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start_span(
                "engine.tx", parent=message.trace,
                category="engine", node=self.node.name, actor=self.name,
                tenant=tenant, src=src_fn, dst=dst_fn,
                bytes=descriptor.length)
            message.trace = span.context
            self._charge_cycles(tel, (
                ("protocol",
                 cost.sk_msg_interrupt_us + cost.kernel_tcp_us),
                ("descriptor", self.channel.ingest_cost_us()),
                ("copy", cost.copy_time(descriptor.length)),
            ))
        try:
            dst_node = self.routes.node_for(dst_fn)
        except RouteError:
            # Destination withdrawn (failover/scale-down): drop safely.
            self.stats.dropped += 1
            message.settle(False)
            message.retire(self.agent)
            self._recycle(buffer, tenant)
            if tel is not None:
                tel.metrics.counter(
                    "engine_dropped_total", "Messages dropped by an engine.",
                    labels=("engine", "stage")).labels(self.name, "tx").inc()
                tel.tracer.end_span(span, status="drop")
            return
        peer = self.peers.get(dst_node)
        if peer is None:
            raise RuntimeError(f"{self.name}: no peer engine on {dst_node}")
        # Ingest + socket serialization: one real copy plus kernel
        # protocol processing, all scheduled on shared cores.
        yield from self._run(
            self._ingest_cost_us()
            + cost.copy_time(descriptor.length)
            + cost.kernel_tcp_us
        )
        frame = _TcpFrame(message, buffer.payload, descriptor.length, tenant)
        # Source buffer is free as soon as it is serialized to the socket.
        buffer.pool.put(buffer, self.agent)
        self.stats.recycled += 1
        message.settle(True)  # handed to the kernel: fire-and-forget
        link = self.fabric.link(self.node.name, dst_node)
        self.stats.tx_messages += 1
        self.stats.tx_bytes += descriptor.length
        self.stats.tenant_meter(tenant).record(self.env.now)
        if tel is not None:
            tel.metrics.counter(
                "engine_tx_total", "TX descriptors processed by an engine.",
                labels=("engine", "tenant")).labels(self.name, tenant).inc()

        def _transit():
            yield from link.transmit(descriptor.length + TCP_FRAME_OVERHEAD)
            if not peer.available:
                # Peer engine is down: the kernel connection resets and
                # the message is lost (SPRIGHT has no failover).
                self.stats.dropped += 1
                message.retire(self.agent)
                if tel is not None:
                    tel.metrics.counter(
                        "engine_dropped_total",
                        "Messages dropped by an engine.",
                        labels=("engine", "stage")).labels(
                            self.name, "transit").inc()
                    tel.tracer.end_span(span, status="drop")
                return
            # Receive-side kernel TCP + softirq processing happens in
            # interrupt context on the peer's shared cores, before the
            # engine's event loop ever sees the message.
            if tel is not None:
                tel.cycles.charge(
                    "protocol",
                    (cost.kernel_tcp_us + cost.kernel_irq_us)
                    * peer.node.cpu.factor,
                    where=peer.name)
            yield from peer.node.cpu.execute(
                cost.kernel_tcp_us + cost.kernel_irq_us
            )
            if tel is not None:
                tel.tracer.end_span(span)
            message.transfer(self.agent, peer.agent)
            peer.inject_event("tcp", frame)

        self.env.process(_transit(), name=f"{self.name}-tcp-tx")

    # -- RX: kernel receive + copy back into the local pool ------------------------
    def _handle_event(self, event):
        kind, payload = event
        if kind == "tcp":
            yield from self._handle_tcp_rx(payload)
        else:
            yield from super()._handle_event(event)

    def _handle_tcp_rx(self, frame: _TcpFrame):
        cost = self.cost
        message = frame.message
        tel = self.env.telemetry
        span = None
        if tel is not None:
            span = tel.tracer.start_span(
                "engine.rx", parent=message.trace,
                category="engine", node=self.node.name, actor=self.name,
                tenant=frame.tenant, bytes=frame.length)
            self._charge_cycles(tel, (
                ("protocol", cost.sk_msg_interrupt_us),
                ("copy", cost.copy_time(frame.length)),
                ("descriptor", cost.dne_rx_proc_us),
            ))
        # Socket read + copy into the local pool (the kernel/softirq
        # cost was already paid in interrupt context).
        yield from self._run(
            cost.sk_msg_interrupt_us
            + cost.copy_time(frame.length)
            + cost.dne_rx_proc_us
        )
        tenant = frame.tenant
        state = self._tenants.get(tenant)
        if state is None:
            message.retire(self.agent)
            if tel is not None:
                tel.tracer.end_span(span, status="drop")
            return
        try:
            buffer = state.pool.get(self.agent)
        except PoolExhausted:
            buffer = yield from state.pool.get_wait(self.agent)
        buffer.write(self.agent, frame.payload, frame.length)
        dst_fn = message.dst or None
        self.stats.rx_messages += 1
        self.stats.rx_bytes += frame.length
        if tel is not None:
            tel.metrics.counter(
                "engine_rx_total", "RX completions delivered by an engine.",
                labels=("engine", "tenant")).labels(self.name, tenant).inc()
        if dst_fn is None or dst_fn not in self.channel.endpoints:
            message.retire(self.agent)
            buffer.pool.put(buffer, self.agent)
            if tel is not None:
                tel.metrics.counter(
                    "engine_dropped_total", "Messages dropped by an engine.",
                    labels=("engine", "stage")).labels(self.name, "rx").inc()
                tel.tracer.end_span(span, status="drop")
            return
        buffer.transfer(self.agent, f"fn:{dst_fn}")
        descriptor = BufferDescriptor(
            buffer=buffer, length=frame.length, message=message
        )
        if tel is not None:
            message.trace = span.context
            tel.tracer.end_span(span)
        message.transfer(self.agent, f"fn:{dst_fn}")
        self.channel.dne_send(dst_fn, descriptor)
