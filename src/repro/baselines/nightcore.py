"""NightCore baseline data plane (Jia & Witchel, ASPLOS'21).

NightCore accelerates intra-node function interaction with low-latency
shared-memory message queues, but "lacks support for inter-function
communication across nodes within a function chain" (§4.3) — the paper
therefore runs all of its functions on a single node, fronted by
NightCore's built-in kernel-based gateway.

In this reproduction NightCore is a platform configuration, not an
engine: no inter-node engine is installed (deploying across nodes
raises), the intra-node IPC uses NightCore's message-queue cost, and
the experiment wires a kernel ingress plus kernel worker-side adapter.
"""

from __future__ import annotations

from ..config import CostModel

__all__ = ["NIGHTCORE_IPC_US", "nightcore_engine_builder", "nightcore_ipc_us"]

#: NightCore's shared-memory message queue + its engine's dispatch cost
#: per descriptor: cheap, but above raw SK_MSG redirection because each
#: message passes through the NightCore runtime's dispatcher thread.
NIGHTCORE_IPC_US = 1.8


def nightcore_engine_builder(env, node, fabric, cost: CostModel):
    """NightCore installs no inter-node engine."""
    return None


def nightcore_ipc_us(cost: CostModel) -> float:
    """Intra-node IPC cost override for the NightCore configuration."""
    return NIGHTCORE_IPC_US
