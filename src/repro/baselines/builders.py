"""Engine builders: one per evaluated data-plane configuration (§4.3).

Each builder has the :data:`~repro.platform.cluster.EngineBuilder`
signature and is handed to :class:`~repro.platform.ServerlessPlatform`.
The six configurations of Fig. 16 / Table 2:

====================  ============================================
Palladium (DNE)       ``build_dne`` — DPU engine, Comch-E, DWRR
Palladium (CNE)       ``build_cne`` — host engine, SK_MSG, DWRR
SPRIGHT               ``build_spright`` — kernel TCP inter-node
FUYAO (-K / -F)       ``build_fuyao`` — one-sided RDMA + copy
NightCore             ``nightcore_engine_builder`` — single node
====================  ============================================

``build_dne_onpath`` is the Fig. 11 ablation (payloads staged through
the SoC DMA engine instead of cross-processor shared memory).
"""

from __future__ import annotations

from ..config import CostModel
from ..dne import (
    ComchE,
    CpuNetworkEngine,
    DpuNetworkEngine,
    DwrrScheduler,
    FcfsScheduler,
    NetworkEngine,
    SkMsgChannel,
)
from ..hw import Node
from ..rdma import RdmaFabric
from ..sim import Environment

from .fuyao import FuyaoEngine
from .spright import SprightEngine

__all__ = [
    "build_dne",
    "build_dne_fcfs",
    "build_dne_onpath",
    "build_cne",
    "build_spright",
    "build_fuyao",
]


def build_dne(env: Environment, node: Node, fabric: RdmaFabric,
              cost: CostModel) -> NetworkEngine:
    """Palladium (DNE): off-path DPU engine, Comch-E, DWRR."""
    channel = ComchE(env, cost, name=f"comch:{node.name}")
    return DpuNetworkEngine(env, node, fabric, cost, channel,
                            scheduler=DwrrScheduler(), name=f"dne:{node.name}")


def build_dne_fcfs(env: Environment, node: Node, fabric: RdmaFabric,
                   cost: CostModel) -> NetworkEngine:
    """The Fig. 15 baseline: identical DNE with an FCFS scheduler."""
    channel = ComchE(env, cost, name=f"comch:{node.name}")
    return DpuNetworkEngine(env, node, fabric, cost, channel,
                            scheduler=FcfsScheduler(), name=f"dne:{node.name}")


def build_dne_onpath(env: Environment, node: Node, fabric: RdmaFabric,
                     cost: CostModel) -> NetworkEngine:
    """The Fig. 11 ablation: on-path DNE staging data via SoC DMA."""
    channel = ComchE(env, cost, name=f"comch:{node.name}")
    return DpuNetworkEngine(env, node, fabric, cost, channel,
                            scheduler=DwrrScheduler(),
                            mode=NetworkEngine.MODE_ON_PATH,
                            name=f"dne-onpath:{node.name}")


def build_cne(env: Environment, node: Node, fabric: RdmaFabric,
              cost: CostModel) -> NetworkEngine:
    """Palladium (CNE): the engine on a host core, SK_MSG IPC."""
    channel = SkMsgChannel(env, cost, name=f"skmsg-chan:{node.name}")
    return CpuNetworkEngine(env, node, fabric, cost, channel,
                            scheduler=DwrrScheduler(), name=f"cne:{node.name}")


def build_spright(env: Environment, node: Node, fabric: RdmaFabric,
                  cost: CostModel) -> NetworkEngine:
    """SPRIGHT: shared memory intra-node, kernel TCP inter-node."""
    channel = SkMsgChannel(env, cost, name=f"skmsg-chan:{node.name}")
    return SprightEngine(env, node, fabric, cost, channel,
                         name=f"spright:{node.name}")


def build_fuyao(env: Environment, node: Node, fabric: RdmaFabric,
                cost: CostModel) -> NetworkEngine:
    """FUYAO: one-sided RDMA writes with receiver-side copy + polling."""
    channel = SkMsgChannel(env, cost, name=f"skmsg-chan:{node.name}")
    return FuyaoEngine(env, node, fabric, cost, channel,
                       name=f"fuyao:{node.name}")
