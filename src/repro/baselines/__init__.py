"""Baseline data planes: SPRIGHT, NightCore, FUYAO, and Palladium variants."""

from .builders import (
    build_cne,
    build_dne,
    build_dne_fcfs,
    build_dne_onpath,
    build_fuyao,
    build_spright,
)
from .fuyao import FuyaoEngine
from .nightcore import NIGHTCORE_IPC_US, nightcore_engine_builder, nightcore_ipc_us
from .spright import SprightEngine

__all__ = [
    "FuyaoEngine",
    "NIGHTCORE_IPC_US",
    "SprightEngine",
    "build_cne",
    "build_dne",
    "build_dne_fcfs",
    "build_dne_onpath",
    "build_fuyao",
    "build_spright",
    "nightcore_engine_builder",
    "nightcore_ipc_us",
]
